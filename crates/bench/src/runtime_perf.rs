//! Perf-trajectory harness for the runtime's cross-job optimizations:
//! a shards × cache × batch grid over a bank-blocked bitmap-query
//! stream, plus a repeated-query campaign isolating the compile-time
//! saving of the compiled-program cache.
//!
//! The `bench_runtime` binary serializes the result to
//! `BENCH_runtime.json` so successive PRs leave a comparable perf
//! trajectory in the repository history.

use coruscant_mem::{MemoryConfig, MemoryController};
use coruscant_runtime::{
    BatchOptions, CacheOptions, Placement, Runtime, RuntimeOptions, RuntimeReport,
};
use coruscant_workloads::bitmap::BitmapDataset;
use coruscant_workloads::compile::PimProgram;
use coruscant_workloads::serve::{compile_bitmap_query_with, QueryPlan};
use serde::Serialize;
use std::time::Instant;

/// One cell of the shards × cache × batch grid.
#[derive(Debug, Clone, Serialize)]
pub struct GridPoint {
    /// Worker shards the session ran with.
    pub shards: usize,
    /// Whether the compiled-program cache was enabled.
    pub cache: bool,
    /// Whether same-bank batch fusion was enabled.
    pub batch: bool,
    /// Jobs served.
    pub jobs: u64,
    /// Host wall time, milliseconds, submit through finish.
    pub wall_ms: f64,
    /// Host throughput.
    pub jobs_per_sec: f64,
    /// Total modeled device cycles across all jobs.
    pub device_cycles: u64,
    /// Modeled end-to-end makespan (memory cycles, all banks drained).
    pub makespan_cycles: u64,
    /// Cache hits the session recorded.
    pub cache_hits: u64,
    /// Batched dispatches (≥2 jobs spliced) the session recorded.
    pub batches: u64,
}

/// The repeated-query campaign: the same compiled query submitted many
/// times, cold (cache off) vs warm (cache on).
#[derive(Debug, Clone, Serialize)]
pub struct RepeatedQueryCampaign {
    /// Submissions per arm.
    pub jobs: u64,
    /// Submit-side wall time with the cache disabled (every submission
    /// runs the full pass pipeline), milliseconds.
    pub cold_submit_ms: f64,
    /// Submit-side wall time with the cache enabled (one miss, then
    /// hash-lookup hits), milliseconds.
    pub warm_submit_ms: f64,
    /// `cold_submit_ms / warm_submit_ms` — the compile-time saving.
    pub speedup: f64,
    /// Cache hits the warm arm recorded (must be `jobs - 1`).
    pub warm_hits: u64,
}

/// The full `BENCH_runtime.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeBench {
    /// Banks in the benched geometry.
    pub banks: usize,
    /// PIM units in the benched geometry.
    pub pim_units: usize,
    /// The shards × cache × batch grid.
    pub grid: Vec<GridPoint>,
    /// The compile-time campaign.
    pub repeated_query: RepeatedQueryCampaign,
}

/// The job stream the grid serves: bitmap-query chunks placed in blocks
/// of `block` consecutive jobs per PIM unit, so same-unit runs exist for
/// batch fusion while the blocks still spread over every bank.
fn blocked_placements(n_jobs: usize, units: usize, block: usize) -> Vec<Placement> {
    (0..n_jobs)
        .map(|i| Placement::Unit((i / block) % units))
        .collect()
}

fn run_session(
    config: &MemoryConfig,
    programs: &[PimProgram],
    placements: &[Placement],
    options: RuntimeOptions,
) -> (RuntimeReport, f64) {
    let start = Instant::now();
    let rt = Runtime::new(config.clone(), options).expect("runtime options are valid");
    for (program, placement) in programs.iter().zip(placements) {
        rt.submit(program.clone(), *placement)
            .expect("submission succeeds");
    }
    let report = rt.finish().expect("session completes");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs one grid cell.
#[must_use]
pub fn grid_point(
    config: &MemoryConfig,
    programs: &[PimProgram],
    placements: &[Placement],
    shards: usize,
    cache: bool,
    batch: bool,
) -> GridPoint {
    let options = RuntimeOptions::default()
        .with_shards(shards)
        .with_cache(CacheOptions {
            enabled: cache,
            // Hold the whole distinct-program set even with skewed hash
            // partitioning across lock shards, so every repeat hits.
            capacity: programs.len().max(CacheOptions::default().capacity),
            ..CacheOptions::default()
        })
        .with_batch(if batch {
            BatchOptions::enabled()
        } else {
            BatchOptions::default()
        });
    let (report, wall_ms) = run_session(config, programs, placements, options);
    GridPoint {
        shards,
        cache,
        batch,
        jobs: report.stats.jobs,
        wall_ms,
        jobs_per_sec: report.stats.jobs as f64 / (wall_ms / 1e3),
        device_cycles: report.stats.device_cycles,
        makespan_cycles: report.stats.makespan_cycles,
        cache_hits: report.stats.cache.hits,
        batches: report.stats.batch.batches,
    }
}

/// Runs the full shards × cache × batch grid over a `rows`-row
/// bitmap-query stream submitted `rounds` times.
///
/// The repeats are what give the compiled-program cache something to do:
/// every chunk program is distinct, so a single pass can never hit — a
/// `cache: true` cell at `rounds` ≥ 2 must record exactly
/// `chunks × (rounds − 1)` hits.
#[must_use]
pub fn run_grid(
    config: &MemoryConfig,
    rows: usize,
    shards: &[usize],
    rounds: usize,
) -> Vec<GridPoint> {
    let ds = BitmapDataset::generate(rows, 3, 11);
    let chunk_programs = compile_bitmap_query_with(&ds, 3, config, QueryPlan::PairwiseChain)
        .expect("query compiles");
    let programs: Vec<PimProgram> = std::iter::repeat_with(|| chunk_programs.iter().cloned())
        .take(rounds.max(1))
        .flatten()
        .collect();
    let units = MemoryController::new(config.clone()).pim_unit_count();
    let placements = blocked_placements(programs.len(), units, 8);
    let mut grid = Vec::new();
    for &s in shards {
        for cache in [false, true] {
            for batch in [false, true] {
                grid.push(grid_point(config, &programs, &placements, s, cache, batch));
            }
        }
    }
    grid
}

/// Submits the same query program `jobs` times and measures the
/// submit-side (compile) wall time, cache off vs cache on.
#[must_use]
pub fn repeated_query_campaign(config: &MemoryConfig, jobs: u64) -> RepeatedQueryCampaign {
    let ds = BitmapDataset::generate(64, 4, 7);
    let program = compile_bitmap_query_with(&ds, 4, config, QueryPlan::PairwiseChain)
        .expect("query compiles")
        .remove(0);

    let arm = |cache: bool| -> (f64, u64) {
        let options = RuntimeOptions::default().with_cache(CacheOptions {
            enabled: cache,
            ..CacheOptions::default()
        });
        let rt = Runtime::new(config.clone(), options).expect("runtime options are valid");
        let start = Instant::now();
        for _ in 0..jobs {
            rt.submit(program.clone(), Placement::Auto)
                .expect("submission succeeds");
        }
        let submit_ms = start.elapsed().as_secs_f64() * 1e3;
        let report = rt.finish().expect("session completes");
        (submit_ms, report.stats.cache.hits)
    };

    let (cold_submit_ms, _) = arm(false);
    let (warm_submit_ms, warm_hits) = arm(true);
    RepeatedQueryCampaign {
        jobs,
        cold_submit_ms,
        warm_submit_ms,
        speedup: cold_submit_ms / warm_submit_ms,
        warm_hits,
    }
}

/// Runs the whole harness: the grid (each stream submitted `rounds`
/// times) plus the repeated-query campaign.
#[must_use]
pub fn run_full(
    config: &MemoryConfig,
    rows: usize,
    shards: &[usize],
    rounds: usize,
    jobs: u64,
) -> RuntimeBench {
    RuntimeBench {
        banks: config.banks,
        pim_units: MemoryController::new(config.clone()).pim_unit_count(),
        grid: run_grid(config, rows, shards, rounds),
        repeated_query: repeated_query_campaign(config, jobs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-geometry smoke: the whole harness runs, every grid cell
    /// serves the same job count with identical modeled device cycles at
    /// batch off, the warm arm hits `jobs - 1` times, and batching
    /// engages where enabled.
    #[test]
    fn harness_smoke_on_tiny_geometry() {
        let config = MemoryConfig::tiny();
        let rounds = 2;
        let bench = run_full(&config, 2_000, &[1, 2], rounds, 200);
        assert_eq!(bench.grid.len(), 8);
        let jobs = bench.grid[0].jobs;
        assert!(jobs > 0);
        // Distinct chunk programs per round; repeats are the hits.
        let expected_hits = jobs / rounds as u64 * (rounds as u64 - 1);
        for cell in &bench.grid {
            assert_eq!(cell.jobs, jobs, "every cell serves the whole stream");
            assert!(cell.wall_ms > 0.0);
            if cell.batch {
                assert!(cell.batches > 0, "batch cells must batch: {cell:?}");
            } else {
                assert_eq!(cell.batches, 0);
            }
            if cell.cache {
                assert_eq!(
                    cell.cache_hits, expected_hits,
                    "cache cells must hit on every repeated chunk: {cell:?}"
                );
            } else {
                assert_eq!(cell.cache_hits, 0);
            }
        }
        // Cross-boundary optimization may only ever *reduce* modeled
        // device work (grid order: batch-off cell then batch-on cell).
        assert!(bench.grid[1].device_cycles <= bench.grid[0].device_cycles);
        assert_eq!(bench.repeated_query.warm_hits, 200 - 1);
        assert!(
            bench.repeated_query.speedup > 1.0,
            "warm submits must be cheaper: {:?}",
            bench.repeated_query
        );
    }
}
