//! CNN serving throughput: frames per second for the LeNet-5/AlexNet
//! proxies at every precision, served end-to-end through the
//! compiler → runtime → server stack by `coruscant_pipeline`.
//!
//! Each point pins the model's weights resident once, then serves a
//! fixed frame count two ways: a **single** arm (submit one request,
//! wait, repeat — per-request latency) and a **batched** arm (submit
//! the whole batch, then drain — cross-request interleaving across
//! banks). FPS is reported against both host wall time and the modeled
//! device makespan. Every decoded logit vector is checked against the
//! standalone [`coruscant_nn::infer::run_pim`] engine, so the bench
//! doubles as an exactness smoke test.

use coruscant_mem::MemoryConfig;
use coruscant_nn::infer::{proxy_alexnet, proxy_lenet5, run_pim, synth_image, synth_weights};
use coruscant_nn::models::Network;
use coruscant_nn::quant::Precision;
use coruscant_nn::tensor::Tensor3;
use coruscant_pipeline::serve::ServingSession;
use coruscant_pipeline::Pipeline;
use coruscant_server::{Priority, Server, ServerOptions};
use serde::Serialize;
use std::time::Instant;

/// One model × precision × arm measurement.
#[derive(Debug, Clone, Serialize)]
pub struct NnPoint {
    /// Network name (`lenet5-proxy`, `alexnet-proxy`).
    pub model: String,
    /// Weight precision served.
    pub precision: Precision,
    /// `single` (submit→wait serially) or `batched` (submit all, drain).
    pub arm: String,
    /// Frames served.
    pub frames: usize,
    /// Per-layer jobs the runtime completed (pins included).
    pub jobs_completed: u64,
    /// Host wall time for the whole arm, milliseconds.
    pub wall_ms: f64,
    /// Frames per second of host wall time.
    pub fps_wall: f64,
    /// Modeled device makespan (all banks drained), milliseconds.
    pub modeled_ms: f64,
    /// Frames per second of modeled device time.
    pub fps_modeled: f64,
}

/// The full `BENCH_nn.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct NnBench {
    /// Banks in the benched geometry.
    pub banks: usize,
    /// Tiles (pipeline hosting units) in the benched geometry.
    pub tiles: usize,
    /// Frames served per point.
    pub frames: usize,
    /// Every model × precision × arm point.
    pub points: Vec<NnPoint>,
}

/// Serves `images` through a fresh pinned session, waiting according to
/// `batched`, and returns the measured point.
///
/// # Panics
///
/// Panics if the pipeline or server fails to come up, or if any served
/// logit vector differs from the standalone engine — the bench is also
/// an exactness gate.
#[must_use]
pub fn run_point(
    config: &MemoryConfig,
    net: &Network,
    precision: Precision,
    images: &[Tensor3],
    batched: bool,
) -> NnPoint {
    let weights = synth_weights(net, precision, 3);
    let expected: Vec<Vec<u64>> = images
        .iter()
        .map(|img| run_pim(config, net, &weights, img).expect("standalone engine runs"))
        .collect();
    let pipeline =
        Pipeline::new(config, net.clone(), weights, 0).expect("pipeline builds on this geometry");
    let server = Server::start(config.clone(), ServerOptions::default()).expect("server starts");
    let session = ServingSession::pin(server.client(), pipeline).expect("residencies pin");

    let started = Instant::now();
    let served: Vec<Vec<u64>> = if batched {
        let handles = session
            .submit_batch(images, Priority::Normal)
            .expect("batch admitted");
        handles
            .into_iter()
            .map(|h| h.wait().expect("request completes"))
            .collect()
    } else {
        images
            .iter()
            .map(|img| {
                session
                    .submit(img, Priority::Normal)
                    .expect("request admitted")
                    .wait()
                    .expect("request completes")
            })
            .collect()
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    assert_eq!(served, expected, "served logits must equal nn::pim_exec");
    let stats = server.shutdown().expect("server drains");
    assert!(stats.balanced(), "bench accounting must balance: {stats:?}");

    let modeled_ms = stats.runtime.makespan_cycles as f64 * config.memory_cycle_ns / 1e6;
    let frames = images.len();
    NnPoint {
        model: net.name.clone(),
        precision,
        arm: if batched { "batched" } else { "single" }.into(),
        frames,
        jobs_completed: stats.runtime.jobs,
        wall_ms,
        fps_wall: frames as f64 / (wall_ms / 1e3),
        modeled_ms,
        fps_modeled: if modeled_ms > 0.0 {
            frames as f64 / (modeled_ms / 1e3)
        } else {
            0.0
        },
    }
}

/// Runs the whole harness: {LeNet-5, AlexNet} × {Full, BWN, TWN} ×
/// {single, batched}.
///
/// # Panics
///
/// As [`run_point`].
#[must_use]
pub fn run_full(config: &MemoryConfig, frames: usize) -> NnBench {
    let models: [fn() -> Network; 2] = [proxy_lenet5, proxy_alexnet];
    let precisions = [Precision::Full, Precision::Bwn, Precision::Twn];
    let mut points = Vec::new();
    for model in models {
        let net = model();
        let images: Vec<Tensor3> = (0..frames)
            .map(|s| synth_image(&net, 7 + s as u64))
            .collect();
        for precision in precisions {
            for batched in [false, true] {
                points.push(run_point(config, &net, precision, &images, batched));
            }
        }
    }
    NnBench {
        banks: config.banks,
        tiles: config.banks * config.subarrays_per_bank * config.tiles_per_subarray,
        frames,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sixteen-tile geometry: every AlexNet-proxy layer gets a unit.
    fn serving_config() -> MemoryConfig {
        MemoryConfig {
            banks: 4,
            subarrays_per_bank: 2,
            tiles_per_subarray: 2,
            dbcs_per_tile: 4,
            pim_dbcs_per_tile: 1,
            nanowires_per_dbc: 64,
            rows_per_dbc: 32,
            trd: 7,
            bus_mhz: 1000,
            memory_cycle_ns: 1.25,
        }
    }

    /// One small point per arm: the harness measures, balances, and the
    /// batched arm completes the same frames as the single arm.
    #[test]
    fn harness_smoke() {
        let config = serving_config();
        let net = proxy_lenet5();
        let images: Vec<Tensor3> = (0..2).map(|s| synth_image(&net, 7 + s)).collect();
        for batched in [false, true] {
            let point = run_point(&config, &net, Precision::Twn, &images, batched);
            assert_eq!(point.frames, 2);
            assert!(point.fps_wall > 0.0);
            assert!(point.modeled_ms > 0.0);
            assert!(point.jobs_completed >= 2 * net.layers.len() as u64);
        }
    }
}
