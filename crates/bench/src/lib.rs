//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper: it computes the reproduced values from the simulators/models and
//! prints them next to the paper's reported numbers so deviations are
//! visible at a glance (EXPERIMENTS.md records the analysis).

pub mod cache_perf;
pub mod nn_perf;
pub mod runtime_perf;
pub mod server_perf;

/// Prints a table header with a title and a rule.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a ratio as `x.xx×`.
pub fn times(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a reproduced-vs-paper pair.
pub fn vs_paper(ours: f64, paper: f64) -> String {
    format!("{ours:>10.2} (paper {paper:>8.2})")
}

/// Relative deviation of a reproduced value from the paper's.
pub fn deviation(ours: f64, paper: f64) -> f64 {
    (ours - paper) / paper
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(times(1.6), "1.60x");
        assert!(vs_paper(25.0, 26.0).contains("paper"));
        assert!((deviation(110.0, 100.0) - 0.1).abs() < 1e-12);
    }
}
