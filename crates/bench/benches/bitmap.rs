//! Criterion benches of the bitmap-index query workload (Fig. 12).

use coruscant_mem::MemoryConfig;
use coruscant_workloads::bitmap::{cost_coruscant, cost_elp2im, run_coruscant, BitmapDataset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bitmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap");
    let config = MemoryConfig::tiny();
    let ds = BitmapDataset::generate(50_000, 4, 7);
    for w in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("functional_query", w), &w, |b, &w| {
            b.iter(|| black_box(run_coruscant(&ds, w, &config).unwrap()));
        });
    }
    g.bench_function("cost_models_16m", |b| {
        let paper = MemoryConfig::paper();
        b.iter(|| {
            for w in 2..=4 {
                black_box(cost_coruscant(16_000_000, w, &paper));
                black_box(cost_elp2im(16_000_000, w, 512));
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_bitmap);
criterion_main!(benches);
