//! Criterion benches of the memory-wall comparison (Figs. 10-11).

use coruscant_mem::MemoryConfig;
use coruscant_workloads::memwall::compare;
use coruscant_workloads::polybench::{reference, suite};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_polybench(c: &mut Criterion) {
    let mut g = c.benchmark_group("polybench");
    g.bench_function("memwall_suite_n48", |b| {
        let config = MemoryConfig::paper();
        let kernels = suite(48);
        b.iter(|| {
            for k in &kernels {
                black_box(compare(k, &config));
            }
        });
    });
    g.bench_function("reference_gemm_n24", |b| {
        b.iter(|| black_box(reference::run_gemm(24, 7)));
    });
    g.finish();
}

criterion_group!(benches, bench_polybench);
criterion_main!(benches);
