//! Criterion benches of the execution runtime: host throughput
//! (jobs/sec) at 1/2/4/8 shards, and circular vs single-bank dispatch
//! (paper §V-C high-throughput mode).
//!
//! Besides the wall-clock measurements, the bench prints each
//! configuration's *modeled* throughput (jobs per modeled microsecond)
//! so the §V-C overlap is visible next to the host-parallelism scaling.

use coruscant_mem::MemoryConfig;
use coruscant_runtime::{run_batch, DispatchMode, RuntimeOptions};
use coruscant_workloads::bitmap::BitmapDataset;
use coruscant_workloads::serve::{compile_bitmap_query, serve_bitmap_query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Eight banks so circular dispatch has room to spread the chunk burst.
fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn bench_runtime(c: &mut Criterion) {
    let config = eight_bank_config();
    let ds = BitmapDataset::generate(16_000, 3, 11);
    let jobs = compile_bitmap_query(&ds, 3, &config).unwrap().len() as u64;

    // Shard scaling: same circular job stream, 1/2/4/8 worker threads.
    let mut g = c.benchmark_group("runtime_shards");
    g.throughput(Throughput::Elements(jobs));
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("circular", shards), &shards, |b, &s| {
            b.iter(|| {
                let programs = compile_bitmap_query(&ds, 3, &config).unwrap();
                let options = RuntimeOptions::default().with_shards(s);
                black_box(run_batch(&config, programs, options).unwrap())
            });
        });
    }
    g.finish();

    // Dispatch modes: bank-parallel circular issue vs everything on one
    // bank, at a fixed shard count.
    let mut g = c.benchmark_group("runtime_dispatch");
    g.throughput(Throughput::Elements(jobs));
    for (name, mode) in [
        ("circular", DispatchMode::Circular),
        ("single_bank", DispatchMode::SingleBank),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 4), &mode, |b, &mode| {
            b.iter(|| {
                let programs = compile_bitmap_query(&ds, 3, &config).unwrap();
                let options = RuntimeOptions::default().with_shards(4).with_dispatch(mode);
                black_box(run_batch(&config, programs, options).unwrap())
            });
        });
    }
    g.finish();

    // Modeled throughput summary (not a wall-clock measurement): the
    // §V-C story in one table.
    println!("\nmodeled throughput (jobs per modeled microsecond):");
    for mode in [DispatchMode::Circular, DispatchMode::SingleBank] {
        for shards in [1usize, 2, 4, 8] {
            let options = RuntimeOptions::default()
                .with_shards(shards)
                .with_dispatch(mode);
            let (_, report) = serve_bitmap_query(&ds, 3, &config, options).unwrap();
            println!(
                "  {:?} shards={}: {:.2} jobs/us over {} modeled cycles",
                mode, shards, report.stats.jobs_per_us, report.stats.makespan_cycles
            );
        }
    }
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
