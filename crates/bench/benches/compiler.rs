//! Criterion benches of the optimizing compiler: pipeline wall time over
//! the bitmap pairwise-chain workload, plus a modeled-gains table showing
//! estimated device cycles saved per pass (the §III-B fusion win and the
//! shift-scheduling win, separately attributed).

use coruscant_compiler::{CompileOptions, Compiler};
use coruscant_mem::MemoryConfig;
use coruscant_workloads::bitmap::BitmapDataset;
use coruscant_workloads::serve::{compile_bitmap_query_with, QueryPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn config() -> MemoryConfig {
    MemoryConfig::tiny()
}

fn bench_compiler(c: &mut Criterion) {
    let config = config();
    let ds = BitmapDataset::generate(16_000, 4, 11);
    let w = 4;
    let chains = compile_bitmap_query_with(&ds, w, &config, QueryPlan::PairwiseChain).unwrap();

    // Pipeline wall time, with and without differential verification
    // (verify executes every program twice on the functional path).
    let mut g = c.benchmark_group("compiler_pipeline");
    g.throughput(Throughput::Elements(chains.len() as u64));
    for (name, options) in [
        ("optimize", CompileOptions::default()),
        (
            "optimize_verify",
            CompileOptions::default().with_verify(true),
        ),
    ] {
        g.bench_with_input(BenchmarkId::new(name, chains.len()), &options, |b, o| {
            let compiler = Compiler::new(config.clone(), o);
            b.iter(|| {
                for p in &chains {
                    black_box(compiler.optimize(p).unwrap());
                }
            });
        });
    }
    g.finish();

    // Modeled gains (not a wall-clock measurement): per-pass cycles and
    // shifts saved on one representative chain program.
    let compiler = Compiler::new(config.clone(), &CompileOptions::default());
    let (_, report) = compiler.optimize(&chains[0]).unwrap();
    println!("\nper-pass modeled gains (w={w} bitmap chain, one chunk):");
    for p in &report.passes {
        println!(
            "  {:<16} -{} est cycles, -{} est shifts, {} -> {} instrs",
            p.pass,
            p.cycles_saved(),
            p.shifts_saved(),
            p.before.instructions,
            p.after.instructions
        );
    }
    println!(
        "  total: {:.1}% est device-cycle reduction ({} -> {})",
        report.cycle_reduction() * 100.0,
        report.before.est_device_cycles,
        report.after.est_device_cycles
    );
    println!("{}", report.render_table());
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
