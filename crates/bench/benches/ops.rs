//! Criterion benches of the CORUSCANT PIM operations (Table III's
//! operation set) running on the functional simulator.

use coruscant_core::add::MultiOperandAdder;
use coruscant_core::bulk::{BulkExecutor, BulkOp};
use coruscant_core::maxpool::MaxExecutor;
use coruscant_core::mult::Multiplier;
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::CostMeter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("pim_ops");
    for trd in [3usize, 5, 7] {
        let config = MemoryConfig::tiny().with_trd(trd);
        let adder = MultiOperandAdder::new(&config);
        let k = config.max_add_operands();
        let ops: Vec<Row> = (1..=k as u64)
            .map(|v| Row::pack(64, 8, &[v * 31 % 256; 8]))
            .collect();
        g.bench_with_input(BenchmarkId::new("add", trd), &trd, |b, _| {
            b.iter(|| {
                let mut dbc = Dbc::pim_enabled(&config);
                let mut m = CostMeter::new();
                black_box(adder.add_rows(&mut dbc, &ops, 8, &mut m).unwrap())
            });
        });
        let mult = Multiplier::new(&config);
        g.bench_with_input(BenchmarkId::new("mult", trd), &trd, |b, _| {
            b.iter(|| {
                let mut dbc = Dbc::pim_enabled(&config);
                let mut m = CostMeter::new();
                black_box(
                    mult.multiply_values(
                        &mut dbc,
                        &[173, 250, 3, 99],
                        &[219, 2, 255, 44],
                        8,
                        &mut m,
                    )
                    .unwrap(),
                )
            });
        });
    }
    let config = MemoryConfig::tiny();
    let exec = BulkExecutor::new(&config);
    let operands: Vec<Row> = (0..7u64)
        .map(|v| Row::from_u64_words(64, &[v * 0x1234_5678]))
        .collect();
    g.bench_function("bulk_and_7op", |b| {
        b.iter(|| {
            let mut dbc = Dbc::pim_enabled(&config);
            let mut m = CostMeter::new();
            black_box(
                exec.execute(&mut dbc, BulkOp::And, &operands, &mut m)
                    .unwrap(),
            )
        });
    });
    let maxe = MaxExecutor::new(&config);
    let cands: Vec<Row> = (0..7u64)
        .map(|v| Row::pack(64, 8, &[v * 37 % 256; 8]))
        .collect();
    g.bench_function("max_7words", |b| {
        b.iter(|| {
            let mut dbc = Dbc::pim_enabled(&config);
            let mut m = CostMeter::new();
            black_box(maxe.max_rows(&mut dbc, &cands, 8, &mut m).unwrap())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
