//! Criterion benches of the cross-job optimizations: cold vs warm
//! enqueue through the compiled-program cache, and batched vs unbatched
//! same-bank throughput.

use coruscant_mem::MemoryConfig;
use coruscant_runtime::{BatchOptions, CacheOptions, Placement, Runtime, RuntimeOptions};
use coruscant_workloads::bitmap::BitmapDataset;
use coruscant_workloads::serve::{compile_bitmap_query_with, QueryPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn eight_bank_config() -> MemoryConfig {
    MemoryConfig {
        banks: 8,
        subarrays_per_bank: 2,
        tiles_per_subarray: 2,
        dbcs_per_tile: 4,
        pim_dbcs_per_tile: 1,
        nanowires_per_dbc: 64,
        rows_per_dbc: 32,
        trd: 7,
        bus_mhz: 1000,
        memory_cycle_ns: 1.25,
    }
}

fn bench_cache(c: &mut Criterion) {
    let config = eight_bank_config();
    let ds = BitmapDataset::generate(64, 4, 7);
    let program = compile_bitmap_query_with(&ds, 4, &config, QueryPlan::PairwiseChain)
        .unwrap()
        .remove(0);
    let jobs = 256u64;

    // Cold vs warm enqueue: the same program submitted `jobs` times;
    // cold pays the pass pipeline every time, warm hits the cache.
    let mut g = c.benchmark_group("cache_enqueue");
    g.throughput(Throughput::Elements(jobs));
    for (name, cache) in [("cold", false), ("warm", true)] {
        g.bench_with_input(BenchmarkId::new(name, jobs), &cache, |b, &cache| {
            b.iter(|| {
                let options = RuntimeOptions::default().with_cache(CacheOptions {
                    enabled: cache,
                    ..CacheOptions::default()
                });
                let rt = Runtime::new(config.clone(), options).unwrap();
                for _ in 0..jobs {
                    rt.submit(program.clone(), Placement::Auto).unwrap();
                }
                black_box(rt.finish().unwrap())
            });
        });
    }
    g.finish();

    // Batched vs unbatched same-bank throughput: everything queued onto
    // one PIM unit, dispatched one job at a time vs spliced 8 at a time.
    let mut g = c.benchmark_group("same_bank_batch");
    g.throughput(Throughput::Elements(jobs));
    for (name, batch) in [
        ("unbatched", BatchOptions::default()),
        ("batched", BatchOptions::enabled()),
    ] {
        g.bench_with_input(BenchmarkId::new(name, jobs), &batch, |b, &batch| {
            b.iter(|| {
                let options = RuntimeOptions::default().with_batch(batch);
                let rt = Runtime::new(config.clone(), options).unwrap();
                for _ in 0..jobs {
                    rt.submit(program.clone(), Placement::Unit(0)).unwrap();
                }
                black_box(rt.finish().unwrap())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
