//! Criterion benches of the device-level primitives: shift, point access,
//! transverse read/write on a single nanowire and on a full DBC.

use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::{CostMeter, Nanowire, NanowireSpec, PortId};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_nanowire(c: &mut Criterion) {
    let mut g = c.benchmark_group("nanowire");
    g.bench_function("shift_roundtrip", |b| {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let mut m = CostMeter::new();
        b.iter(|| {
            wire.shift(black_box(5), &mut m).unwrap();
            wire.shift(black_box(-5), &mut m).unwrap();
        });
    });
    g.bench_function("transverse_read", |b| {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        for i in 0..7 {
            wire.set_segment_bit(i, i % 2 == 0).unwrap();
        }
        b.iter(|| black_box(wire.transverse_read_full().unwrap()));
    });
    g.bench_function("transverse_write", |b| {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let mut m = CostMeter::new();
        b.iter(|| black_box(wire.transverse_write(true, &mut m).unwrap()));
    });
    g.bench_function("point_rw", |b| {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let mut m = CostMeter::new();
        b.iter(|| {
            wire.write(PortId::LEFT, true, &mut m).unwrap();
            black_box(wire.read(PortId::LEFT, &mut m).unwrap());
        });
    });
    g.finish();
}

fn bench_dbc(c: &mut Criterion) {
    let mut g = c.benchmark_group("dbc");
    let config = MemoryConfig::tiny();
    g.bench_function("row_write_read", |b| {
        let mut dbc = Dbc::pim_enabled(&config);
        let row = Row::from_u64_words(64, &[0xDEAD_BEEF]);
        let mut m = CostMeter::new();
        b.iter(|| {
            dbc.write_row(black_box(5), &row, &mut m).unwrap();
            black_box(dbc.read_row(5, &mut m).unwrap());
        });
    });
    g.bench_function("transverse_read_all", |b| {
        let mut dbc = Dbc::pim_enabled(&config);
        let mut m = CostMeter::new();
        b.iter(|| black_box(dbc.transverse_read_all(&mut m).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_nanowire, bench_dbc);
criterion_main!(benches);
