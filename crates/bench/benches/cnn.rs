//! Criterion benches of the CNN mapping model (Tables IV and VI).

use coruscant_nn::layers::{conv2d, maxpool};
use coruscant_nn::mapping::{model_fps, Scheme};
use coruscant_nn::models::{alexnet, lenet5};
use coruscant_nn::quant::Precision;
use coruscant_nn::tensor::Tensor3;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cnn(c: &mut Criterion) {
    let mut g = c.benchmark_group("cnn");
    g.bench_function("table4_full_sweep", |b| {
        let nets = [alexnet(), lenet5()];
        b.iter(|| {
            for net in &nets {
                for trd in [3usize, 5, 7] {
                    black_box(model_fps(Scheme::Coruscant(trd), net, Precision::Twn));
                }
                black_box(model_fps(Scheme::Elp2im, net, Precision::Twn));
            }
        });
    });
    g.bench_function("functional_conv_16x16", |b| {
        let mut input = Tensor3::zeros(3, 16, 16);
        input.fill_pattern(1, 8);
        let mut w = Tensor3::zeros(3, 3, 3);
        w.fill_pattern(2, 4);
        let weights = vec![w; 8];
        b.iter(|| {
            let out = conv2d(black_box(&input), &weights, 8, 3);
            black_box(maxpool(&out, 2))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cnn);
criterion_main!(benches);
