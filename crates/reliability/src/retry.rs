//! Analytic model of the runtime's re-execute-and-compare protection.
//!
//! The runtime's `Reexecute` policy runs a job **twice** and compares the
//! raw readout rows; a mismatch counts one detected fault and triggers
//! another pair, up to `max_retries` extra pairs. These closed forms
//! predict the counters the runtime reports, so fault campaigns can
//! cross-check the implementation against the model (the same way
//! [`montecarlo`](crate::montecarlo) cross-checks Table V).
//!
//! All formulas are parameterized on `p_pair` — the probability that one
//! compare-pair *mismatches* — which [`p_pair_mismatch`] derives from the
//! per-execution corruption probability.

/// Probability that a single program execution produces at least one
/// corrupted readout row, given a per-draw fault probability `p` and `d`
/// independent fault draws per execution (one draw per sensed nanowire
/// per faultable operation).
///
/// Assumes every fault lands in a readout-visible row — exact for
/// programs whose operations all feed the readouts, conservative
/// otherwise.
pub fn p_exec_corrupt(p: f64, d: u64) -> f64 {
    1.0 - (1.0 - p).powi(i32::try_from(d).unwrap_or(i32::MAX))
}

/// Probability that one compare-pair mismatches, given the
/// per-execution corruption probability `p_exec`.
///
/// A pair *matches* only when both runs are clean, or both corrupt the
/// exact same bits; the second event is negligible at realistic rates,
/// so `p_pair ≈ 1 − (1 − p_exec)²`.
pub fn p_pair_mismatch(p_exec: f64) -> f64 {
    1.0 - (1.0 - p_exec) * (1.0 - p_exec)
}

/// Expected number of *extra* compare-pairs (retries) a job runs under
/// `Reexecute { max_retries }`, given pair-mismatch probability `p_pair`:
/// `Σ_{j=1..R} p_pair^j` — retry `j` happens only if the first `j` pairs
/// all mismatched.
pub fn expected_retries(p_pair: f64, max_retries: u32) -> f64 {
    (1..=max_retries).map(|j| p_pair.powi(j as i32)).sum()
}

/// Expected number of detected faults (mismatching pairs) per job under
/// `Reexecute { max_retries }`: `Σ_{j=1..R+1} p_pair^j` — pair `j` runs
/// only if the previous `j − 1` mismatched, and itself mismatches with
/// probability `p_pair`.
pub fn expected_faults_detected(p_pair: f64, max_retries: u32) -> f64 {
    (1..=max_retries + 1).map(|j| p_pair.powi(j as i32)).sum()
}

/// Probability a job exhausts its retry budget and completes
/// *unverified*: all `max_retries + 1` pairs mismatched.
pub fn p_job_unverified(p_pair: f64, max_retries: u32) -> f64 {
    p_pair.powi(max_retries as i32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_corruption_compounds_over_draws() {
        assert!(p_exec_corrupt(0.0, 100).abs() < 1e-12);
        assert!((p_exec_corrupt(1.0, 1) - 1.0).abs() < 1e-12);
        // Small-p regime: ≈ p·d.
        let p = 1e-5;
        let d = 100;
        let exact = p_exec_corrupt(p, d);
        assert!((exact - p * d as f64).abs() / exact < 1e-2);
        // Monotone in d.
        assert!(p_exec_corrupt(p, 200) > exact);
    }

    #[test]
    fn pair_mismatch_doubles_small_rates() {
        let p = 1e-4;
        let pair = p_pair_mismatch(p);
        assert!((pair - 2.0 * p).abs() / pair < 1e-3);
        assert!((p_pair_mismatch(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retry_series_matches_geometric_expansion() {
        let p = 0.1;
        // R = 2: E[retries] = p + p².
        assert!((expected_retries(p, 2) - (p + p * p)).abs() < 1e-12);
        // E[faults] = p + p² + p³.
        assert!((expected_faults_detected(p, 2) - (p + p * p + p * p * p)).abs() < 1e-12);
        // Unverified = p³.
        assert!((p_job_unverified(p, 2) - p * p * p).abs() < 1e-12);
        // Consistency: faults = retries + unverified-tail… actually
        // faults − retries = p^(R+1) = unverified probability.
        assert!(
            (expected_faults_detected(p, 2) - expected_retries(p, 2) - p_job_unverified(p, 2))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn zero_rate_needs_no_retries() {
        assert_eq!(expected_retries(0.0, 5), 0.0);
        assert_eq!(expected_faults_detected(0.0, 5), 0.0);
        assert_eq!(p_job_unverified(0.0, 5), 0.0);
    }
}
