//! Monte-Carlo fault-injection campaigns cross-checking the analytic
//! model against the functional simulators.

use coruscant_core::add::MultiOperandAdder;
use coruscant_core::bulk::{BulkExecutor, BulkOp};
use coruscant_core::nmr::NmrVoter;
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::{CostMeter, FaultConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The outcome of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Campaign {
    /// Trials executed.
    pub trials: u64,
    /// Trials whose result differed from the fault-free oracle.
    pub errors: u64,
}

impl Campaign {
    /// Empirical error rate.
    pub fn rate(&self) -> f64 {
        self.errors as f64 / self.trials as f64
    }
}

/// Runs `trials` multi-operand additions with TR faults injected at rate
/// `p_tr`, counting result mismatches against the oracle.
pub fn add_campaign(trials: u64, p_tr: f64, seed: u64) -> Campaign {
    let config = MemoryConfig::tiny();
    let adder = MultiOperandAdder::new(&config);
    let fault = FaultConfig::NONE.with_tr_fault_rate(p_tr);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut errors = 0;
    for t in 0..trials {
        let ops: Vec<Row> = (0..5)
            .map(|_| {
                let vals: Vec<u64> = (0..8).map(|_| rng.random_range(0..256)).collect();
                Row::pack(64, 8, &vals)
            })
            .collect();
        let mut dbc = Dbc::pim_enabled(&config).with_faults(fault, seed ^ t);
        let mut m = CostMeter::new();
        let got = adder.add_rows(&mut dbc, &ops, 8, &mut m).expect("add");
        if got != MultiOperandAdder::reference(&ops, 8) {
            errors += 1;
        }
    }
    Campaign { trials, errors }
}

/// Runs `trials` bulk XOR operations under injected TR faults.
pub fn xor_campaign(trials: u64, p_tr: f64, seed: u64) -> Campaign {
    let config = MemoryConfig::tiny();
    let exec = BulkExecutor::new(&config);
    let fault = FaultConfig::NONE.with_tr_fault_rate(p_tr);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut errors = 0;
    for t in 0..trials {
        let ops: Vec<Row> = (0..7)
            .map(|_| Row::from_u64_words(64, &[rng.random::<u64>()]))
            .collect();
        let mut dbc = Dbc::pim_enabled(&config).with_faults(fault, seed ^ (t << 1));
        let mut m = CostMeter::new();
        let got = exec
            .execute(&mut dbc, BulkOp::Xor, &ops, &mut m)
            .expect("xor");
        if got != BulkExecutor::reference(BulkOp::Xor, &ops) {
            errors += 1;
        }
    }
    Campaign { trials, errors }
}

/// Runs `trials` TMR-protected bulk XORs: the operation executes three
/// times under faults, the voter (fault-free, as in the paper's per-step
/// voting) combines them.
pub fn tmr_xor_campaign(trials: u64, p_tr: f64, seed: u64) -> Campaign {
    let config = MemoryConfig::tiny();
    let exec = BulkExecutor::new(&config);
    let voter = NmrVoter::new(&config);
    let fault = FaultConfig::NONE.with_tr_fault_rate(p_tr);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut errors = 0;
    for t in 0..trials {
        let ops: Vec<Row> = (0..7)
            .map(|_| Row::from_u64_words(64, &[rng.random::<u64>()]))
            .collect();
        let mut replicas = Vec::with_capacity(3);
        for r in 0..3u64 {
            let mut dbc = Dbc::pim_enabled(&config).with_faults(fault, seed ^ (t * 31 + r));
            let mut m = CostMeter::new();
            replicas.push(
                exec.execute(&mut dbc, BulkOp::Xor, &ops, &mut m)
                    .expect("xor"),
            );
        }
        let mut vote_dbc = Dbc::pim_enabled(&config);
        let mut m = CostMeter::new();
        let voted = voter
            .vote_rows(&mut vote_dbc, &replicas, &mut m)
            .expect("vote");
        if voted != BulkExecutor::reference(BulkOp::Xor, &ops) {
            errors += 1;
        }
    }
    Campaign { trials, errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_no_errors() {
        let c = add_campaign(50, 0.0, 1);
        assert_eq!(c.errors, 0);
        let x = xor_campaign(50, 0.0, 2);
        assert_eq!(x.errors, 0);
    }

    #[test]
    fn add_error_rate_tracks_injection_rate() {
        // At an (accelerated) p = 2e-3 per TR, an 8-bit 5-operand add on
        // 8 lanes performs 64 TRs; expect roughly 1 - (1-p)^64 ~ 12%
        // failures. Accept a broad band.
        let c = add_campaign(400, 2e-3, 7);
        let rate = c.rate();
        assert!(rate > 0.03 && rate < 0.35, "rate {rate}");
    }

    #[test]
    fn xor_rate_near_one_per_tr_times_wires() {
        // One TR per wire, 64 wires: expected word rate ~ 1-(1-p)^64.
        let p = 5e-3;
        let c = xor_campaign(400, p, 9);
        let expect = 1.0 - (1.0 - p).powi(64);
        assert!(
            (c.rate() - expect).abs() < 0.08,
            "rate {} vs expect {expect}",
            c.rate()
        );
    }

    #[test]
    fn tmr_suppresses_errors() {
        let p = 2e-2; // heavy acceleration so the unprotected op fails often
        let unprotected = xor_campaign(300, p, 11).rate();
        let protected = tmr_xor_campaign(300, p, 11).rate();
        assert!(
            protected < unprotected / 2.0,
            "protected {protected} vs unprotected {unprotected}"
        );
    }
}
