//! Reliability analysis for transverse-read PIM (paper §V-F, Tables V–VI).
//!
//! A transverse-read fault moves the sensed ones-count one level up or
//! down (faults off by two or more levels are negligible). Whether that
//! flips an operation's output depends on which level *transitions* the
//! output is sensitive to:
//!
//! * `XOR`/`S` flips on **every** transition (parity) — error rate `p`;
//! * `AND`, `OR` and `C'` have a single decisive boundary — rate `p/TRD`
//!   under the uniform-level assumption;
//! * `C` (count bit 1) has 1 / 2 / 3 boundaries at TRD 3 / 5 / 7 —
//!   rate `p·boundaries/TRD`.
//!
//! Compound operations accumulate: an 8-bit addition performs 8 TRs, a
//! multiplication a few hundred. N-modular redundancy then suppresses the
//! per-bit rate `q` to `Σ_{k ≥ ⌈N/2⌉+…} C(N,k) q^k (1−q)^{N−k}`.
//!
//! [`montecarlo`] cross-checks the analytic rates by injecting faults
//! into the functional simulators at elevated probability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod montecarlo;
pub mod nmr;
pub mod retry;
pub mod variation;
