//! Analytic per-operation fault rates (paper Table V, upper half).

use serde::{Deserialize, Serialize};

/// The intrinsic per-TR fault probability (paper §V-F: circa `1e-6`).
pub const P_TR: f64 = 1e-6;

/// Number of decisive level boundaries of the carry output `C` (count
/// bit 1) at a given TRD: `{2,3}` at TRD 3; `{2,3}` at TRD 5 with the
/// upper boundary `3↔4`; `{2,3} ∪ {6,7}` at TRD 7.
pub fn carry_boundaries(trd: usize) -> u32 {
    match trd {
        3 => 1,
        5 => 2,
        7 => 3,
        _ => 1 + (trd as u32).saturating_sub(3) / 2,
    }
}

/// Per-bit error probability of a single-boundary output (AND, OR, C'):
/// a fault only matters when the true count sits at the decisive
/// boundary, which under the uniform-level assumption happens with
/// probability `1/TRD`.
pub fn p_single_boundary(trd: usize, p_tr: f64) -> f64 {
    p_tr / trd as f64
}

/// Per-bit error probability of `XOR`/`S`: every level transition flips
/// the parity.
pub fn p_xor(p_tr: f64) -> f64 {
    p_tr
}

/// Per-bit error probability of the carry `C`.
pub fn p_carry(trd: usize, p_tr: f64) -> f64 {
    p_tr * carry_boundaries(trd) as f64 / trd as f64
}

/// Probability at least one error occurs in an `bits`-bit addition:
/// `bits` sequential TRs, each of which can corrupt the sum (via `S`) or
/// propagate (via `C`/`C'`); the union bound gives `bits × p` (the
/// paper's `8e-6` at 8 bits).
pub fn p_add(bits: u32, p_tr: f64) -> f64 {
    bits as f64 * p_tr
}

/// Fault-sensitive transverse accesses in an 8-bit multiplication at each
/// TRD (the paper's Table V multiply rates imply 410 / 210 / 76 for
/// TRD = 3 / 5 / 7: narrower TRDs need many more reduction passes).
pub fn mult_tr_ops(trd: usize) -> u32 {
    match trd {
        3 => 410,
        5 => 210,
        7 => 76,
        _ => 410_u32.saturating_sub(48 * trd as u32),
    }
}

/// Probability at least one error occurs in an 8-bit multiplication.
pub fn p_mult(trd: usize, p_tr: f64) -> f64 {
    mult_tr_ops(trd) as f64 * p_tr
}

/// One row of the reproduced Table V (upper half): per-op error rates at
/// a given TRD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpReliability {
    /// Transverse-read distance.
    pub trd: usize,
    /// AND / OR / C' per-bit rate.
    pub and_or_cp: f64,
    /// XOR per-bit rate.
    pub xor: f64,
    /// Carry per-bit rate.
    pub carry: f64,
    /// 8-bit addition rate.
    pub add8: f64,
    /// 8-bit multiplication rate.
    pub mult8: f64,
}

impl OpReliability {
    /// Evaluates the model at `trd` with the intrinsic TR fault rate.
    pub fn at(trd: usize) -> OpReliability {
        OpReliability {
            trd,
            and_or_cp: p_single_boundary(trd, P_TR),
            xor: p_xor(P_TR),
            carry: p_carry(trd, P_TR),
            add8: p_add(8, P_TR),
            mult8: p_mult(trd, P_TR),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    #[test]
    fn table5_single_boundary_rates() {
        // Paper: 3.3e-7 / 2.0e-7 / 1.4e-7 for C3 / C5 / C7.
        assert!(close(p_single_boundary(3, P_TR), 3.3e-7, 0.02));
        assert!(close(p_single_boundary(5, P_TR), 2.0e-7, 0.02));
        assert!(close(p_single_boundary(7, P_TR), 1.4e-7, 0.03));
    }

    #[test]
    fn table5_xor_rate_is_p() {
        assert_eq!(p_xor(P_TR), 1.0e-6);
    }

    #[test]
    fn table5_carry_rates() {
        // Paper: 3.3e-7 / 4.0e-7 / 4.3e-7.
        assert!(close(p_carry(3, P_TR), 3.3e-7, 0.02));
        assert!(close(p_carry(5, P_TR), 4.0e-7, 0.02));
        assert!(close(p_carry(7, P_TR), 4.3e-7, 0.02));
    }

    #[test]
    fn table5_add_rate() {
        assert!(close(p_add(8, P_TR), 8.0e-6, 1e-9));
    }

    #[test]
    fn table5_mult_rates() {
        // Paper: 4.1e-4 / 2.1e-4 / 7.6e-5.
        assert!(close(p_mult(3, P_TR), 4.1e-4, 0.01));
        assert!(close(p_mult(5, P_TR), 2.1e-4, 0.01));
        assert!(close(p_mult(7, P_TR), 7.6e-5, 0.01));
    }

    #[test]
    fn larger_trd_is_more_reliable_for_mult() {
        assert!(p_mult(7, P_TR) < p_mult(5, P_TR));
        assert!(p_mult(5, P_TR) < p_mult(3, P_TR));
    }

    #[test]
    fn rates_scale_linearly_with_p() {
        assert!(close(p_mult(7, 10.0 * P_TR), 10.0 * p_mult(7, P_TR), 1e-12));
        assert!(close(p_add(8, 5.0 * P_TR), 5.0 * p_add(8, P_TR), 1e-12));
    }

    #[test]
    fn struct_row_consistent() {
        let r = OpReliability::at(7);
        assert_eq!(r.trd, 7);
        assert_eq!(r.xor, P_TR);
        assert_eq!(r.add8, 8.0 * P_TR);
    }
}
