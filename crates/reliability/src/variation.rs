//! Fault-rate sensitivity to process variation (paper §V-F).
//!
//! The paper compares intrinsic PIM fault rates under device variation:
//!
//! * **CORUSCANT TR**: a ~3% resistance change under process variation;
//!   combining read-current uncertainty with the widely reported 4% MTJ
//!   variation via the total-differential method yields ~`1e-6` per TR at
//!   the nominal point, with the margin shrinking as variation grows.
//! * **Ambit**: > 1% fault rate already at 5% variation.
//! * **ELP²IM**: indistinguishable from zero below 10% variation in its
//!   own reporting; the first nonzero datum is ~0.35% at 10%, and
//!   extrapolating the trend gives ~`1e-3` at 5%.
//!
//! These curves are carried as log-linear models anchored on the paper's
//! quoted points, so the ISO-reliability argument ("for the same
//! reliability, DRAM PIM's performance advantage disappears") can be
//! evaluated quantitatively.

use serde::Serialize;

/// Nominal MTJ process variation the paper's analysis assumes (4%).
pub const NOMINAL_VARIATION: f64 = 0.04;

/// A log-linear fault-rate curve: `rate(v) = anchor_rate ×
/// 10^(slope × (v − anchor_var))` with variation `v` as a fraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultCurve {
    /// Scheme label.
    pub name: &'static str,
    /// Variation at the anchor point (fraction).
    pub anchor_variation: f64,
    /// Fault rate at the anchor point.
    pub anchor_rate: f64,
    /// Decades of fault rate per unit of variation.
    pub decades_per_variation: f64,
}

impl FaultCurve {
    /// CORUSCANT transverse reads: `1e-6` at the nominal 4% variation;
    /// the sense margin analysis gives roughly one decade per 2% of
    /// additional variation.
    pub fn coruscant() -> FaultCurve {
        FaultCurve {
            name: "CORUSCANT",
            anchor_variation: NOMINAL_VARIATION,
            anchor_rate: 1e-6,
            decades_per_variation: 50.0,
        }
    }

    /// Ambit: > 1% at 5% variation (paper quoting the ELP²IM study).
    pub fn ambit() -> FaultCurve {
        FaultCurve {
            name: "Ambit",
            anchor_variation: 0.05,
            anchor_rate: 1e-2,
            decades_per_variation: 40.0,
        }
    }

    /// ELP²IM: ~0.35% at 10% variation, extrapolated to ~`1e-3` at 5%
    /// (the paper's own extrapolation).
    pub fn elp2im() -> FaultCurve {
        FaultCurve {
            name: "ELP2IM",
            anchor_variation: 0.10,
            anchor_rate: 3.5e-3,
            decades_per_variation: 10.9,
        }
    }

    /// Fault rate at `variation` (a fraction, e.g. `0.05` for 5%),
    /// clamped to `[0, 1]`.
    pub fn rate(&self, variation: f64) -> f64 {
        let decades = self.decades_per_variation * (variation - self.anchor_variation);
        (self.anchor_rate * 10f64.powf(decades)).clamp(0.0, 1.0)
    }
}

/// The reliability gap at a given variation: how many orders of magnitude
/// more reliable a CORUSCANT TR is than each DRAM PIM comparison point.
pub fn reliability_gap_decades(variation: f64) -> (f64, f64) {
    let c = FaultCurve::coruscant()
        .rate(variation)
        .max(f64::MIN_POSITIVE);
    let a = FaultCurve::ambit().rate(variation).max(f64::MIN_POSITIVE);
    let e = FaultCurve::elp2im().rate(variation).max(f64::MIN_POSITIVE);
    ((a / c).log10(), (e / c).log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper_quotes() {
        assert!((FaultCurve::coruscant().rate(0.04) - 1e-6).abs() < 1e-9);
        assert!(FaultCurve::ambit().rate(0.05) >= 1e-2 * 0.99);
        let e5 = FaultCurve::elp2im().rate(0.05);
        assert!(
            (2e-4..5e-3).contains(&e5),
            "ELP2IM at 5% variation: {e5:e} (paper extrapolates ~1e-3)"
        );
    }

    #[test]
    fn coruscant_orders_of_magnitude_ahead() {
        // Paper: "the other PIM methods that report reliability
        // intrinsically lag CORUSCANT by orders of magnitude."
        for v in [0.03, 0.04, 0.05, 0.06] {
            let (vs_ambit, vs_elp) = reliability_gap_decades(v);
            assert!(vs_ambit > 2.0, "v={v}: gap vs Ambit {vs_ambit:.1} decades");
            assert!(vs_elp > 1.5, "v={v}: gap vs ELP2IM {vs_elp:.1} decades");
        }
    }

    #[test]
    fn rates_grow_with_variation() {
        for curve in [
            FaultCurve::coruscant(),
            FaultCurve::ambit(),
            FaultCurve::elp2im(),
        ] {
            let lo = curve.rate(0.03);
            let hi = curve.rate(0.08);
            assert!(hi > lo, "{}", curve.name);
        }
    }

    #[test]
    fn rates_clamped_to_probability_range() {
        for curve in [
            FaultCurve::coruscant(),
            FaultCurve::ambit(),
            FaultCurve::elp2im(),
        ] {
            assert!(curve.rate(0.5) <= 1.0);
            assert!(curve.rate(0.0) >= 0.0);
        }
    }
}
