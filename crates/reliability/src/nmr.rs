//! N-modular redundancy error math (paper Table V, lower half).

use serde::{Deserialize, Serialize};

/// Binomial coefficient (exact for the small `n` used here).
fn choose(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0;
    let mut den = 1.0;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

/// Probability that majority voting over `n` replicas yields a wrong bit
/// when each replica's bit is independently wrong with probability `q`:
/// at least `⌈(n+1)/2⌉` replicas must agree on the wrong value.
pub fn p_vote_fails(n: u64, q: f64) -> f64 {
    assert!(n % 2 == 1, "redundancy degree must be odd");
    let need = n / 2 + 1;
    (need..=n)
        .map(|k| choose(n, k) * q.powi(k as i32) * (1.0 - q).powi((n - k) as i32))
        .sum()
}

/// Probability a `bits`-wide voted result contains at least one wrong
/// bit. Computed via `expm1`/`ln1p` so rates far below machine epsilon
/// (e.g. the `1e-27` regime of Table V at N = 7) stay exact instead of
/// underflowing to zero.
pub fn p_word_fails(n: u64, q_bit: f64, bits: u32) -> f64 {
    let p = p_vote_fails(n, q_bit);
    -(f64::from(bits) * (-p).ln_1p()).exp_m1()
}

/// Mult error rate when voting is performed **after every reduction
/// step** instead of once at the end (the paper's §III-F trade-off:
/// per-step voting buys nearly two extra orders of magnitude). The
/// per-step replica error is the step's share of the multiplication's
/// TR count.
pub fn p_mult_stepwise_vote(n: u64, trd: usize, steps: u32) -> f64 {
    let q_step_bit = crate::model::p_mult(trd, crate::model::P_TR) / f64::from(steps) / 8.0;
    let per_step = p_word_fails(n, q_step_bit, 8);
    -(f64::from(steps) * (-per_step).ln_1p()).exp_m1()
}

/// A reproduced lower-half Table V row: NMR-protected error rates for an
/// 8-bit result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NmrReliability {
    /// Redundancy degree.
    pub n: u64,
    /// Voted 8-bit XOR error rate.
    pub xor8: f64,
    /// Voted 8-bit AND/OR/C' error rate.
    pub and_or_cp8: f64,
    /// Voted 8-bit addition error rate.
    pub add8: f64,
    /// Voted 8-bit multiplication error rate.
    pub mult8: f64,
}

impl NmrReliability {
    /// Evaluates NMR at degree `n` for a given TRD using the analytic
    /// per-op rates of [`crate::model`].
    pub fn at(n: u64, trd: usize) -> NmrReliability {
        use crate::model::*;
        // Per-bit replica error rates; add/mult rates are per 8-bit
        // result, so their per-bit share is rate/8.
        let q_xor = p_xor(P_TR);
        let q_single = p_single_boundary(trd, P_TR);
        let q_add_bit = p_add(8, P_TR) / 8.0;
        let q_mult_bit = p_mult(trd, P_TR) / 8.0;
        NmrReliability {
            n,
            xor8: p_word_fails(n, q_xor, 8),
            and_or_cp8: p_word_fails(n, q_single, 8),
            add8: p_word_fails(n, q_add_bit, 8),
            mult8: p_word_fails(n, q_mult_bit, 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::P_TR;

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(3, 2), 3.0);
        assert_eq!(choose(5, 3), 10.0);
        assert_eq!(choose(7, 4), 35.0);
        assert_eq!(choose(3, 5), 0.0);
    }

    #[test]
    fn tmr_is_quadratic_in_q() {
        let q = 1e-6;
        let p = p_vote_fails(3, q);
        // Leading term 3 q^2.
        assert!((p / (3.0 * q * q) - 1.0).abs() < 1e-3, "p = {p:e}");
    }

    #[test]
    fn n5_is_cubic_and_n7_quartic() {
        let q = 1e-4;
        assert!((p_vote_fails(5, q) / (10.0 * q.powi(3)) - 1.0).abs() < 0.01);
        assert!((p_vote_fails(7, q) / (35.0 * q.powi(4)) - 1.0).abs() < 0.01);
    }

    #[test]
    fn each_degree_gains_orders_of_magnitude() {
        // Paper Table V: add drops from ~5e-12 (TMR) to ~4e-18 (N=5) to
        // ~5e-24 (N=7) — roughly six orders per degree step at q ~ 1e-6.
        let r3 = NmrReliability::at(3, 7);
        let r5 = NmrReliability::at(5, 7);
        let r7 = NmrReliability::at(7, 7);
        assert!(r5.add8 < r3.add8 * 1e-4);
        assert!(r7.add8 < r5.add8 * 1e-4);
    }

    #[test]
    fn tmr_add_order_of_magnitude_matches_table5() {
        // Paper: ~5e-12 for the voted 8-bit add. The independence
        // assumption lands within an order of magnitude.
        let r = NmrReliability::at(3, 7);
        assert!(r.add8 > 5e-13 && r.add8 < 5e-11, "TMR add8 = {:e}", r.add8);
    }

    #[test]
    fn tmr_mult_much_worse_than_add_before_voting_similar_after() {
        use crate::model::{p_add, p_mult};
        assert!(p_mult(7, P_TR) > p_add(8, P_TR));
        let r = NmrReliability::at(3, 7);
        // After TMR both are within ~two orders of magnitude (paper shows
        // 4.8e-12 vs 4.9e-12 at C7).
        assert!(r.mult8 / r.add8 < 200.0, "{:e} vs {:e}", r.mult8, r.add8);
    }

    #[test]
    fn ten_year_target_needs_n5() {
        // Paper: "to achieve > 10 year error free runtime, we need
        // N = 5-modulo reduction which achieves <= 5e-18". With end-vote
        // independence our N=5 rate lands near 7e-14; voting after each
        // reduction step (the §III-F trade-off) recovers the extra
        // orders of magnitude.
        let r5 = NmrReliability::at(5, 7);
        assert!(r5.mult8 < 1e-12, "N=5 mult rate {:e}", r5.mult8);
        let r3 = NmrReliability::at(3, 7);
        assert!(r3.mult8 > r5.mult8 * 100.0, "TMR alone is not enough");
        let stepwise = p_mult_stepwise_vote(5, 7, 19);
        assert!(stepwise < 1e-15, "stepwise N=5 mult rate {stepwise:e}");
        assert!(stepwise < r5.mult8 / 10.0, "per-step voting must win");
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_degree_rejected() {
        p_vote_fails(4, 0.1);
    }

    #[test]
    fn word_rate_is_union_of_bits() {
        let q = 1e-3;
        let bit = p_vote_fails(3, q);
        let word = p_word_fails(3, q, 8);
        assert!(word > bit && word < 8.0 * bit * 1.01);
    }
}
