//! The set-associative DWM cache model.
//!
//! Tags live in SRAM (a flat per-set tag array with valid/dirty bits,
//! charged [`CacheConfig::tag_cycles`] per lookup); data blocks map onto
//! DBC rows, one cache line per row, all nanowires of the DBC moving in
//! lock-step. Each set owns one tape: a signed displacement from the
//! canonical alignment that every access mutates. Serving a row costs
//! the shift that brings it under the cheapest port *from wherever the
//! previous access left the tape* — which is exactly the state a
//! [`PlacementPolicy`] exists to manage.
//!
//! The model is an LLC-style write-allocate, write-back cache. A miss
//! optionally writes back the dirty victim (shift + port read), then
//! fills the policy-chosen row (shift + port write); the demand word is
//! forwarded from the fill, so a miss charges exactly one port access
//! plus the writeback's. Every decision is deterministic, so replaying a
//! trace always produces bit-identical [`CacheStats`].

use crate::policy::{PlacementPolicy, SetView};
use crate::stats::CacheStats;
use crate::trace::{Access, Op};
use coruscant_mem::MemoryConfig;
use coruscant_racetrack::{
    params::{EnergyParams, LatencyParams},
    PortGeometry,
};
use std::fmt;

/// A rejected cache configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheError(pub String);

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache config: {}", self.0)
    }
}

impl std::error::Error for CacheError {}

/// Geometry and timing of the cache frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// Number of sets. Lines map by `line % sets`.
    pub sets: usize,
    /// Ways per set; each way occupies one DBC row, so at most
    /// `rows_per_dbc` ways.
    pub ways: usize,
    /// SRAM tag-lookup cycles charged per access.
    pub tag_cycles: u64,
    /// Per-set access count between heat halvings (hotness decay).
    pub heat_decay_period: u64,
}

impl CacheConfig {
    /// A config with the default tag latency (1 cycle) and heat decay
    /// period (64 accesses).
    pub fn new(sets: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            sets,
            ways,
            tag_cycles: 1,
            heat_decay_period: 64,
        }
    }

    /// Total lines the cache holds.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Checks the config fits the memory geometry it models.
    ///
    /// # Errors
    ///
    /// [`CacheError`] if a dimension is zero, the ways exceed the rows
    /// per DBC (one line per row), or the DBC width is not a whole
    /// number of bytes.
    pub fn validate(&self, mem: &MemoryConfig) -> Result<(), CacheError> {
        if self.sets == 0 || self.ways == 0 {
            return Err(CacheError("sets and ways must be nonzero".into()));
        }
        if self.ways > mem.rows_per_dbc {
            return Err(CacheError(format!(
                "{} ways exceed {} rows per DBC (one line per row)",
                self.ways, mem.rows_per_dbc
            )));
        }
        if !mem.nanowires_per_dbc.is_multiple_of(8) {
            return Err(CacheError(format!(
                "DBC width {} bits is not a whole number of bytes",
                mem.nanowires_per_dbc
            )));
        }
        if self.heat_decay_period == 0 {
            return Err(CacheError("heat_decay_period must be nonzero".into()));
        }
        Ok(())
    }
}

/// What one access did — everything a replay engine needs to mirror the
/// cache's behaviour into memory-system jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The operation replayed.
    pub op: Op,
    /// Whether the tag matched.
    pub hit: bool,
    /// The line index accessed (`addr / line_bytes`).
    pub line: u64,
    /// The set the line mapped to.
    pub set: usize,
    /// The way served (matched on a hit, filled on a miss).
    pub way: usize,
    /// The dirty line evicted, if this miss wrote one back.
    pub writeback: Option<u64>,
    /// Critical-path shift steps this access paid.
    pub demand_shift_steps: u64,
}

/// Per-set tape and way state.
#[derive(Debug, Clone)]
struct SetState {
    /// Tape displacement from the canonical alignment.
    offset: isize,
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    /// Data row each way occupies.
    rows: Vec<usize>,
    /// Last-access tick per way (LRU victim selection).
    lru: Vec<u64>,
    /// Decayed access counts per way (hotness).
    heat: Vec<u64>,
    tick: u64,
    since_decay: u64,
}

impl SetState {
    fn new(ways: usize) -> SetState {
        SetState {
            offset: 0,
            tags: vec![0; ways],
            valid: vec![false; ways],
            dirty: vec![false; ways],
            rows: (0..ways).collect(),
            lru: vec![0; ways],
            heat: vec![0; ways],
            tick: 0,
            since_decay: 0,
        }
    }

    fn view(&self) -> SetView<'_> {
        SetView {
            offset: self.offset,
            rows: &self.rows,
            valid: &self.valid,
            heat: &self.heat,
        }
    }
}

/// A trace-driven set-associative cache over DBC rows.
#[derive(Debug)]
pub struct DwmCache {
    config: CacheConfig,
    geom: PortGeometry,
    line_bytes: u64,
    nanowires: u64,
    latency: LatencyParams,
    energy: EnergyParams,
    policy: Box<dyn PlacementPolicy>,
    sets: Vec<SetState>,
    stats: CacheStats,
}

impl DwmCache {
    /// Builds a cache modelling `mem`'s DBC geometry under `policy`.
    /// The line size is the DBC width (`nanowires_per_dbc / 8` bytes —
    /// one line per data row).
    ///
    /// # Errors
    ///
    /// Propagates [`CacheConfig::validate`].
    pub fn new(
        config: CacheConfig,
        mem: &MemoryConfig,
        policy: Box<dyn PlacementPolicy>,
    ) -> Result<DwmCache, CacheError> {
        config.validate(mem)?;
        Ok(DwmCache {
            geom: PortGeometry::coruscant(mem.rows_per_dbc, mem.trd),
            line_bytes: (mem.nanowires_per_dbc / 8) as u64,
            nanowires: mem.nanowires_per_dbc as u64,
            latency: LatencyParams::PAPER,
            energy: EnergyParams::PAPER,
            policy,
            sets: (0..config.sets)
                .map(|_| SetState::new(config.ways))
                .collect(),
            config,
            stats: CacheStats::default(),
        })
    }

    /// The placement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Line size in bytes (the DBC width).
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Line size in 64-bit words.
    pub fn line_words(&self) -> usize {
        (self.nanowires / 64).max(1) as usize
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The port geometry accesses are priced against.
    pub fn geometry(&self) -> &PortGeometry {
        &self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The displacement aligning `row` under the port reachable with the
    /// fewest shifts from `from` (ties to the lower port id), and the
    /// step count to get there.
    fn cheapest_alignment(&self, row: usize, from: isize) -> (isize, u64) {
        (0..self.geom.port_count())
            .map(|p| {
                let target = self
                    .geom
                    .shift_offset(row, coruscant_racetrack::port::PortId(p))
                    .expect("port index in range");
                (target, target.abs_diff(from) as u64)
            })
            .min_by_key(|&(target, steps)| (steps, target))
            .expect("geometry has at least one port")
    }

    /// Charges `steps` lock-step shifts and returns the steps.
    fn charge_shift_energy(&mut self, steps: u64) {
        self.stats.shift_energy_pj +=
            steps as f64 * self.energy.shift_per_step * self.nanowires as f64;
    }

    /// Charges one whole-row port access.
    fn charge_access(&mut self, op: Op) {
        let (cycles, pj) = match op {
            Op::Read => (self.latency.read, self.energy.read),
            Op::Write => (self.latency.write, self.energy.write),
        };
        self.stats.access_cycles += cycles;
        self.stats.access_energy_pj += pj * self.nanowires as f64;
    }

    /// Shifts set `s`'s tape to serve `row` and charges the demand
    /// counters. Returns the steps paid.
    fn demand_align(&mut self, s: usize, row: usize) -> u64 {
        let (target, steps) = self.cheapest_alignment(row, self.sets[s].offset);
        self.sets[s].offset = target;
        self.stats.demand_shift_cycles += steps * self.latency.shift_per_step;
        self.charge_shift_energy(steps);
        steps
    }

    /// Replays one access and returns what happened.
    pub fn access(&mut self, access: Access) -> AccessOutcome {
        let line = access.addr / self.line_bytes;
        let s = (line % self.config.sets as u64) as usize;
        let tag = line / self.config.sets as u64;

        self.stats.accesses += 1;
        match access.op {
            Op::Read => self.stats.reads += 1,
            Op::Write => self.stats.writes += 1,
        }
        self.stats.tag_cycles += self.config.tag_cycles;

        let hit_way = {
            let set = &self.sets[s];
            (0..self.config.ways).find(|&w| set.valid[w] && set.tags[w] == tag)
        };

        let mut writeback = None;
        let mut demand_steps = 0;
        let way = match hit_way {
            Some(w) => {
                self.stats.hits += 1;
                let row = self.sets[s].rows[w];
                demand_steps += self.demand_align(s, row);
                self.charge_access(access.op);
                if access.op == Op::Write {
                    self.sets[s].dirty[w] = true;
                }
                w
            }
            None => {
                self.stats.misses += 1;
                match access.op {
                    Op::Read => self.stats.read_misses += 1,
                    Op::Write => self.stats.write_misses += 1,
                }
                let victim = self.pick_victim(s);
                if self.sets[s].valid[victim] && self.sets[s].dirty[victim] {
                    // Write the dirty line back: shift it under a port
                    // and read it out.
                    let row = self.sets[s].rows[victim];
                    demand_steps += self.demand_align(s, row);
                    self.charge_access(Op::Read);
                    let old_line = self.sets[s].tags[victim] * self.config.sets as u64 + s as u64;
                    self.stats.writebacks += 1;
                    writeback = Some(old_line);
                }
                // Fill: the policy picks the row, the tape shifts there,
                // the line is written. The demand word is forwarded from
                // the fill, so no second port access.
                let row = {
                    let set = &self.sets[s];
                    self.policy.fill_row(&self.geom, &set.view(), victim)
                };
                debug_assert!(row < self.geom.rows(), "policy row in range");
                debug_assert!(
                    !self.sets[s].view().row_taken_by_other(row, victim),
                    "policy chose an occupied row"
                );
                let set = &mut self.sets[s];
                set.rows[victim] = row;
                set.tags[victim] = tag;
                set.valid[victim] = true;
                set.dirty[victim] = access.op == Op::Write;
                set.heat[victim] = 0;
                demand_steps += self.demand_align(s, row);
                self.charge_access(Op::Write);
                self.stats.fills += 1;
                victim
            }
        };

        // Bookkeeping the policies read.
        {
            let set = &mut self.sets[s];
            set.tick += 1;
            let tick = set.tick;
            set.lru[way] = tick;
            set.heat[way] += 1;
            set.since_decay += 1;
            if set.since_decay >= self.config.heat_decay_period {
                set.since_decay = 0;
                for h in &mut set.heat {
                    *h /= 2;
                }
            }
        }

        // Hotness migration: swap the accessed way's row with a colder,
        // nearer way's when the policy says the heat difference earns it.
        if let Some((a, b)) = {
            let set = &self.sets[s];
            self.policy.promote(&self.geom, &set.view(), way)
        } {
            self.migrate(s, a, b);
        }

        // Background restore to the policy's rest position.
        if let Some(rest) = {
            let set = &self.sets[s];
            self.policy.rest_offset(&self.geom, &set.view())
        } {
            let steps = rest.abs_diff(self.sets[s].offset) as u64;
            if steps > 0 {
                self.sets[s].offset = rest;
                self.stats.restore_shift_cycles += steps * self.latency.shift_per_step;
                self.charge_shift_energy(steps);
            }
        }

        AccessOutcome {
            op: access.op,
            hit: hit_way.is_some(),
            line,
            set: s,
            way,
            writeback,
            demand_shift_steps: demand_steps,
        }
    }

    /// Replays a whole trace, returning the per-access outcomes.
    pub fn run(&mut self, trace: &[Access]) -> Vec<AccessOutcome> {
        trace.iter().map(|&a| self.access(a)).collect()
    }

    /// First invalid way, else the least-recently-used (ties to the
    /// lower way).
    fn pick_victim(&self, s: usize) -> usize {
        let set = &self.sets[s];
        (0..self.config.ways)
            .find(|&w| !set.valid[w])
            .unwrap_or_else(|| {
                (0..self.config.ways)
                    .min_by_key(|&w| (set.lru[w], w))
                    .expect("ways is nonzero")
            })
    }

    /// Swaps the rows of ways `a` and `b` in set `s`, charging the
    /// migration tour (read both rows, rewrite both swapped) to the
    /// migration counters.
    fn migrate(&mut self, s: usize, a: usize, b: usize) {
        let (o, row_a, row_b) = {
            let set = &self.sets[s];
            (set.offset, set.rows[a], set.rows[b])
        };
        if row_a == row_b {
            return;
        }
        let (o_a, to_a) = self.cheapest_alignment(row_a, o);
        let (o_b, leg) = self.cheapest_alignment(row_b, o_a);
        // Tour: current → a (read) → b (read, write a's data) → a (write
        // b's data) → b; the tape ends aligned at b's row.
        let steps = to_a + 3 * leg;
        self.stats.migrations += 1;
        self.stats.migration_shift_cycles += steps * self.latency.shift_per_step;
        self.charge_shift_energy(steps);
        self.charge_access(Op::Read);
        self.charge_access(Op::Read);
        self.charge_access(Op::Write);
        self.charge_access(Op::Write);
        let set = &mut self.sets[s];
        set.rows.swap(a, b);
        set.offset = o_b;
    }
}

impl crate::policy::SetView<'_> {
    /// Whether `row` is held by a valid way other than `except` — the
    /// invariant every `fill_row` implementation must uphold.
    fn row_taken_by_other(&self, row: usize, except: usize) -> bool {
        self.rows
            .iter()
            .zip(self.valid)
            .enumerate()
            .any(|(w, (&r, &v))| v && w != except && r == row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EagerRestore, HotnessWeighted, NaiveStatic};
    use crate::trace::{Mix, SynthSpec};

    fn cache(policy: Box<dyn PlacementPolicy>) -> DwmCache {
        DwmCache::new(CacheConfig::new(4, 4), &MemoryConfig::tiny(), policy).unwrap()
    }

    #[test]
    fn config_validation() {
        let mem = MemoryConfig::tiny();
        assert!(CacheConfig::new(4, 4).validate(&mem).is_ok());
        assert!(CacheConfig::new(0, 4).validate(&mem).is_err());
        assert!(CacheConfig::new(4, 0).validate(&mem).is_err());
        assert!(
            CacheConfig::new(4, 33).validate(&mem).is_err(),
            "33 ways > 32 rows"
        );
        let mut cfg = CacheConfig::new(4, 4);
        cfg.heat_decay_period = 0;
        assert!(cfg.validate(&mem).is_err());
        assert_eq!(CacheConfig::new(8, 4).lines(), 32);
    }

    #[test]
    fn line_geometry_follows_memory() {
        let c = cache(Box::new(NaiveStatic));
        // tiny: 64 nanowires per DBC = 8-byte lines, one 64-bit word.
        assert_eq!(c.line_bytes(), 8);
        assert_eq!(c.line_words(), 1);
        assert_eq!(c.geometry().rows(), 32);
    }

    #[test]
    fn hit_miss_and_writeback_accounting() {
        let mut c = cache(Box::new(NaiveStatic));
        // Miss, fill line 0.
        let o = c.access(Access::read(0));
        assert!(!o.hit);
        assert_eq!(o.line, 0);
        assert_eq!(o.writeback, None);
        // Hit the same line; dirty it.
        let o = c.access(Access::write(0));
        assert!(o.hit);
        // Fill the remaining 3 ways of set 0 (lines map set = line % 4;
        // same set means line ≡ 0 mod 4).
        for i in 1..4u64 {
            assert!(!c.access(Access::read(4 * i * 8)).hit);
        }
        // A 5th distinct line in set 0 evicts LRU way 0 — dirty, so it
        // writes line 0 back.
        let o = c.access(Access::read(4 * 4 * 8));
        assert!(!o.hit);
        assert_eq!(o.writeback, Some(0));
        let s = c.stats();
        assert!(s.balanced());
        assert_eq!(s.accesses, 6);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 5);
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.read_misses, 5);
        assert_eq!(s.tag_cycles, 6);
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = SynthSpec {
            mix: Mix::HotCold {
                hot_lines: 8,
                hot_pct: 80,
            },
            accesses: 2000,
            lines: 256,
            line_bytes: 8,
            write_pct: 25,
            seed: 11,
        }
        .generate();
        for mk in [
            || Box::new(NaiveStatic) as Box<dyn PlacementPolicy>,
            || Box::new(EagerRestore) as Box<dyn PlacementPolicy>,
            || Box::new(HotnessWeighted::default()) as Box<dyn PlacementPolicy>,
        ] {
            let mut a = cache(mk());
            let mut b = cache(mk());
            assert_eq!(a.run(&trace), b.run(&trace));
            assert_eq!(a.stats(), b.stats());
            assert!(a.stats().balanced(), "{}", a.policy_name());
        }
    }

    #[test]
    fn eager_restore_pays_background_shifts() {
        let trace = SynthSpec {
            mix: Mix::Uniform,
            accesses: 500,
            lines: 64,
            line_bytes: 8,
            write_pct: 20,
            seed: 5,
        }
        .generate();
        let mut eager = cache(Box::new(EagerRestore));
        eager.run(&trace);
        assert!(eager.stats().restore_shift_cycles > 0);
        let mut lazy = cache(Box::new(NaiveStatic));
        lazy.run(&trace);
        assert_eq!(lazy.stats().restore_shift_cycles, 0);
        assert_eq!(lazy.stats().migrations, 0);
    }

    #[test]
    fn hotness_beats_naive_on_locality() {
        let trace = SynthSpec {
            mix: Mix::HotCold {
                hot_lines: 16,
                hot_pct: 90,
            },
            accesses: 4000,
            lines: 512,
            line_bytes: 8,
            write_pct: 20,
            seed: 42,
        }
        .generate();
        let mut naive = cache(Box::new(NaiveStatic));
        naive.run(&trace);
        let mut hot = cache(Box::new(HotnessWeighted::default()));
        hot.run(&trace);
        assert!(hot.stats().migrations > 0, "hot trace triggers promotion");
        let n = naive.stats().total_shift_cycles() as f64;
        let h = hot.stats().total_shift_cycles() as f64;
        assert!(
            h <= n * 0.85,
            "hotness-weighted should cut total shifts ≥15%: naive {n}, hotness {h}"
        );
        // Same tag behaviour regardless of placement.
        assert_eq!(naive.stats().hits, hot.stats().hits);
    }

    #[test]
    fn energy_tracks_shift_and_access_counts() {
        let mut c = cache(Box::new(NaiveStatic));
        c.access(Access::read(0));
        let s = c.stats();
        // 64 nanowires × 0.1 pJ/step × steps.
        let expected_shift = s.total_shift_cycles() as f64 * 0.1 * 64.0;
        assert!((s.shift_energy_pj - expected_shift).abs() < 1e-9);
        // One fill write: 64 × 0.1 pJ.
        assert!((s.access_energy_pj - 6.4).abs() < 1e-9);
    }
}
