//! Miss-to-PIM job conversion: replays a trace through a [`DwmCache`]
//! and turns configurable miss classes into real [`PimProgram`] jobs
//! submitted through the serving frontend.
//!
//! Each converted miss becomes a *fill job*: the fetched line's words
//! load into a PIM DBC, and — when [`JobConfig::pim_filter`] is on — a
//! bulk AND against a replay-wide mask runs in the memory before the
//! result row is read back (the "filter on fetch" bitmap idiom).
//! Line and mask payloads are deterministic functions of the line
//! address and the mask seed, so the full pipeline — cache model →
//! compiler ISA → runtime scheduler → server completion surface — is
//! bit-deterministic: identical [`PolicyReport`]s *and* identical job
//! outputs regardless of how many runtime shards execute the jobs.

use crate::cache::{CacheConfig, CacheError, DwmCache};
use crate::policy::PlacementPolicy;
use crate::stats::PolicyReport;
use crate::trace::{Access, Op, SplitMix64};
use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_core::PimError;
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant_server::{Rejected, ServeError, Server, ServerError, ServerOptions};
use std::fmt;

/// First operand row of a fill job (mirrors the serving workloads'
/// scratch convention; retargeting preserves row offsets).
const OPERAND_BASE: usize = 4;
/// Result row of the filter op.
const RESULT_ROW: usize = 20;

/// Which miss classes become jobs, and what the jobs compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JobConfig {
    /// Convert read misses into fill jobs.
    pub read_misses: bool,
    /// Convert write misses into fill jobs (write-allocate fetches the
    /// line too).
    pub write_misses: bool,
    /// AND each fetched line against the replay mask in-memory and read
    /// the filtered row back (otherwise the job just loads and reads the
    /// line).
    pub pim_filter: bool,
    /// Seed of the replay-wide filter mask.
    pub mask_seed: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            read_misses: true,
            write_misses: true,
            pim_filter: true,
            mask_seed: 0xFACE,
        }
    }
}

/// Everything a replay needs: the modelled memory, the cache geometry,
/// the job conversion rules, and how many runtime shards serve the jobs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The memory system the cache models and the jobs run on.
    pub memory: MemoryConfig,
    /// Cache geometry and timing.
    pub cache: CacheConfig,
    /// Miss-to-job conversion rules.
    pub jobs: JobConfig,
    /// Runtime scheduler shards serving the converted jobs.
    pub shards: usize,
}

impl ReplayConfig {
    /// A small config for tests: tiny memory, 4×4 cache, one shard.
    pub fn tiny() -> ReplayConfig {
        ReplayConfig {
            memory: MemoryConfig::tiny(),
            cache: CacheConfig::new(4, 4),
            jobs: JobConfig::default(),
            shards: 1,
        }
    }

    /// The same config served by `shards` runtime shards.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> ReplayConfig {
        self.shards = shards;
        self
    }
}

/// The deterministic product of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The policy's report (stats, rates, job counts).
    pub report: PolicyReport,
    /// Converted-job outputs in submission order: the job label and the
    /// concatenated readout words. Bit-identical across shard counts.
    pub outputs: Vec<(String, Vec<u64>)>,
}

/// A replay failure.
#[derive(Debug)]
pub enum ReplayError {
    /// The cache config did not fit the memory geometry.
    Cache(CacheError),
    /// Starting or draining the server failed.
    Server(ServerError),
    /// The server rejected a converted job.
    Rejected(Rejected),
    /// A converted job failed to serve.
    Serve(ServeError),
    /// Building a fill program hit an ISA limit.
    Program(PimError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Cache(e) => write!(f, "{e}"),
            ReplayError::Server(e) => write!(f, "server: {e}"),
            ReplayError::Rejected(e) => write!(f, "job rejected: {e}"),
            ReplayError::Serve(e) => write!(f, "job failed: {e}"),
            ReplayError::Program(e) => write!(f, "fill program: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<CacheError> for ReplayError {
    fn from(e: CacheError) -> Self {
        ReplayError::Cache(e)
    }
}

impl From<ServerError> for ReplayError {
    fn from(e: ServerError) -> Self {
        ReplayError::Server(e)
    }
}

impl From<PimError> for ReplayError {
    fn from(e: PimError) -> Self {
        ReplayError::Program(e)
    }
}

/// The synthetic content of cache line `line`: what a fill fetches from
/// backing memory. Deterministic in the line address alone.
pub fn line_words(line: u64, words: usize) -> Vec<u64> {
    let mut rng = SplitMix64(line ^ 0x0DD0_11E5_0DD0_11E5);
    (0..words).map(|_| rng.next()).collect()
}

/// The replay-wide filter mask derived from `seed`.
pub fn mask_words(seed: u64, words: usize) -> Vec<u64> {
    let mut rng = SplitMix64(seed ^ 0x3A5C_F117);
    (0..words).map(|_| rng.next()).collect()
}

/// Builds the fill job for `line`: load the fetched words, optionally
/// AND them against the mask in-memory, read the result back.
fn fill_program(
    line: u64,
    words: usize,
    jobs: &JobConfig,
    width: usize,
) -> Result<PimProgram, PimError> {
    let loc = DbcLocation::new(0, 0, 0, 0); // nominal; the scheduler retargets
    let mut steps = Vec::with_capacity(4);
    steps.push(Step::Load {
        addr: RowAddress::new(loc, OPERAND_BASE),
        values: line_words(line, words),
        lane: 64,
    });
    if jobs.pim_filter {
        steps.push(Step::Load {
            addr: RowAddress::new(loc, OPERAND_BASE + 1),
            values: mask_words(jobs.mask_seed, words),
            lane: 64,
        });
        steps.push(Step::Exec(CpimInstr::new(
            CpimOpcode::And,
            RowAddress::new(loc, OPERAND_BASE),
            2,
            BlockSize::new(64.min(width))?,
            Some(RowAddress::new(loc, RESULT_ROW)),
        )?));
        steps.push(Step::Readout {
            label: "filter".into(),
            addr: RowAddress::new(loc, RESULT_ROW),
            lane: 64,
        });
    } else {
        steps.push(Step::Readout {
            label: "line".into(),
            addr: RowAddress::new(loc, OPERAND_BASE),
            lane: 64,
        });
    }
    Ok(PimProgram { steps })
}

/// Replays `trace` through a fresh cache under `policy`, converting the
/// configured miss classes into jobs served end to end by a
/// [`Server`]-wrapped runtime with `config.shards` shards.
///
/// Admission control stays disabled, so submission backpressure is the
/// runtime's bounded queue and the whole pipeline is deterministic: the
/// returned [`ReplayOutcome`] is bit-identical for any shard count.
///
/// # Errors
///
/// [`ReplayError`] on a bad cache config, a server lifecycle failure, or
/// a converted job that the pipeline rejects or fails.
pub fn replay(
    trace: &[Access],
    policy: Box<dyn PlacementPolicy>,
    config: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    let mut cache = DwmCache::new(config.cache, &config.memory, policy)?;
    let words = cache.line_words();
    let width = config.memory.nanowires_per_dbc;

    let options = ServerOptions {
        runtime: coruscant_runtime::RuntimeOptions::default().with_shards(config.shards),
        ..ServerOptions::default()
    };
    let server = Server::start(config.memory.clone(), options)?;
    let client = server.client();

    let mut handles = Vec::new();
    for &access in trace {
        let outcome = cache.access(access);
        if outcome.hit {
            continue;
        }
        let convert = match outcome.op {
            Op::Read => config.jobs.read_misses,
            Op::Write => config.jobs.write_misses,
        };
        if !convert {
            continue;
        }
        let kind = match outcome.op {
            Op::Read => "rm",
            Op::Write => "wm",
        };
        let label = format!("{}:{kind}:0x{:x}", handles.len(), outcome.line);
        let program = fill_program(outcome.line, words, &config.jobs, width)?;
        let handle = client.submit(program).map_err(ReplayError::Rejected)?;
        handles.push((label, handle));
    }

    let mut outputs = Vec::with_capacity(handles.len());
    let mut filter_ones = 0u64;
    for (label, handle) in handles {
        let done = handle.wait().map_err(ReplayError::Serve)?;
        let mut job_words = Vec::new();
        for (out_label, values) in &done.outputs {
            if out_label == "filter" {
                filter_ones += values.iter().map(|w| w.count_ones() as u64).sum::<u64>();
            }
            job_words.extend_from_slice(values);
        }
        outputs.push((label, job_words));
    }
    server.shutdown()?;

    let stats = cache.stats().clone();
    let report = PolicyReport {
        policy: cache.policy_name().to_string(),
        hit_rate: stats.hit_rate(),
        total_shift_cycles: stats.total_shift_cycles(),
        demand_shift_cycles: stats.demand_shift_cycles,
        avg_shift_per_access: stats.avg_shift_per_access(),
        miss_jobs: outputs.len() as u64,
        filter_ones,
        stats,
    };
    Ok(ReplayOutcome { report, outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{HotnessWeighted, NaiveStatic};
    use crate::trace::{Mix, SynthSpec};

    fn hot_trace(accesses: usize, seed: u64) -> Vec<Access> {
        SynthSpec {
            mix: Mix::HotCold {
                hot_lines: 8,
                hot_pct: 85,
            },
            accesses,
            lines: 128,
            line_bytes: 8,
            write_pct: 25,
            seed,
        }
        .generate()
    }

    #[test]
    fn replay_converts_misses_to_jobs() {
        let trace = hot_trace(300, 9);
        let out = replay(&trace, Box::new(NaiveStatic), &ReplayConfig::tiny()).unwrap();
        let s = &out.report.stats;
        assert!(s.balanced());
        assert_eq!(s.accesses, 300);
        assert_eq!(out.report.miss_jobs, s.misses, "all miss classes convert");
        assert_eq!(out.outputs.len(), s.misses as usize);
        assert!(out.report.filter_ones > 0);
    }

    #[test]
    fn filter_outputs_are_the_host_and() {
        let trace = hot_trace(200, 21);
        let cfg = ReplayConfig::tiny();
        let out = replay(&trace, Box::new(NaiveStatic), &cfg).unwrap();
        let words = 1; // tiny memory: 64-wire DBC, one 64-bit word per line
        let mask = mask_words(cfg.jobs.mask_seed, words);
        let mut expected_ones = 0u64;
        for (label, values) in &out.outputs {
            let line = u64::from_str_radix(
                label.rsplit(":0x").next().expect("label carries the line"),
                16,
            )
            .unwrap();
            let expect: Vec<u64> = line_words(line, words)
                .iter()
                .zip(&mask)
                .map(|(l, m)| l & m)
                .collect();
            assert_eq!(values, &expect, "{label}");
            expected_ones += expect.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        }
        assert_eq!(out.report.filter_ones, expected_ones);
    }

    #[test]
    fn miss_class_selection_is_respected() {
        let trace = hot_trace(250, 33);
        let mut cfg = ReplayConfig::tiny();
        cfg.jobs.write_misses = false;
        let out = replay(&trace, Box::new(NaiveStatic), &cfg).unwrap();
        assert_eq!(out.report.miss_jobs, out.report.stats.read_misses);
        assert!(out.outputs.iter().all(|(l, _)| l.contains(":rm:")));
    }

    #[test]
    fn plain_fill_jobs_read_the_line_back() {
        let trace = hot_trace(150, 2);
        let mut cfg = ReplayConfig::tiny();
        cfg.jobs.pim_filter = false;
        let out = replay(&trace, Box::new(NaiveStatic), &cfg).unwrap();
        assert_eq!(out.report.filter_ones, 0);
        for (label, values) in &out.outputs {
            let line = u64::from_str_radix(label.rsplit(":0x").next().unwrap(), 16).unwrap();
            assert_eq!(values, &line_words(line, 1), "{label}");
        }
    }

    #[test]
    fn replay_is_bit_deterministic_across_shards() {
        let trace = hot_trace(400, 77);
        let base = replay(
            &trace,
            Box::new(HotnessWeighted::default()),
            &ReplayConfig::tiny().with_shards(1),
        )
        .unwrap();
        for shards in [2, 4] {
            let other = replay(
                &trace,
                Box::new(HotnessWeighted::default()),
                &ReplayConfig::tiny().with_shards(shards),
            )
            .unwrap();
            assert_eq!(other, base, "shards {shards}");
        }
    }
}
