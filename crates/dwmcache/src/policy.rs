//! Shift-aware placement/port policies.
//!
//! Shift latency dominates DWM cache access, and the recoverable margin
//! comes from two knobs the racetrack survey calls out: *where* a line's
//! data row sits relative to the access ports, and *where the tape
//! settles* between accesses. A [`PlacementPolicy`] decides both, plus
//! whether hot lines should migrate toward the ports:
//!
//! * [`NaiveStatic`] — way-indexed rows filled from row 0, tape left
//!   wherever the last access parked it. The baseline a shift-oblivious
//!   cache controller produces.
//! * [`EagerRestore`] — same static rows, but the tape restores to the
//!   canonical alignment after every access: worst-case next-access
//!   latency is bounded by the geometry, at the price of background
//!   restore shifts.
//! * [`HotnessWeighted`] — fills take the free row nearest a port, and
//!   access-count heat bubbles hot lines into port-adjacent rows via
//!   hysteresis-guarded row swaps (the survey's hotness-weighted port
//!   positioning). Temporal locality then concentrates accesses on rows
//!   a shift or two from a port.

use coruscant_racetrack::PortGeometry;

/// A read-only view of one set the policy decides over.
///
/// Parallel arrays indexed by way; `rows[w]` is only meaningful while
/// `valid[w]` (an invalid way keeps its last row assignment as a hint).
#[derive(Debug, Clone, Copy)]
pub struct SetView<'a> {
    /// Current tape displacement from the canonical alignment.
    pub offset: isize,
    /// Data row assigned to each way.
    pub rows: &'a [usize],
    /// Whether each way holds a line.
    pub valid: &'a [bool],
    /// Decayed access-count heat of each way.
    pub heat: &'a [u64],
}

impl SetView<'_> {
    /// Whether `row` is held by a valid way other than `except`.
    fn row_taken(&self, row: usize, except: usize) -> bool {
        self.rows
            .iter()
            .zip(self.valid)
            .enumerate()
            .any(|(w, (&r, &v))| v && w != except && r == row)
    }
}

/// A shift-aware placement/port policy for one cache.
///
/// Implementations must be deterministic: every decision may depend only
/// on the [`SetView`] and geometry, never on ambient state, so replaying
/// a trace reproduces identical statistics bit-for-bit.
pub trait PlacementPolicy: Send + Sync + std::fmt::Debug {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// The data row a line filling `way` should occupy. Must be in
    /// `0..geom.rows()` and not held by another valid way (the way being
    /// filled is being replaced, so its own previous row is free).
    fn fill_row(&self, geom: &PortGeometry, set: &SetView<'_>, way: usize) -> usize;

    /// The displacement the tape should settle at after an access, or
    /// `None` to leave it where the access parked it. Restoring costs
    /// background shift cycles.
    fn rest_offset(&self, _geom: &PortGeometry, _set: &SetView<'_>) -> Option<isize> {
        None
    }

    /// An optional row swap `(hot_way, cold_way)` to perform after an
    /// access to `accessed` — hotness migration. The cache charges the
    /// swap's shifts and port accesses to the migration counters.
    fn promote(
        &self,
        _geom: &PortGeometry,
        _set: &SetView<'_>,
        _accessed: usize,
    ) -> Option<(usize, usize)> {
        None
    }
}

/// Way-indexed static rows from row 0, lazy tape: the shift-oblivious
/// baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveStatic;

impl PlacementPolicy for NaiveStatic {
    fn name(&self) -> &'static str {
        "naive-static"
    }

    fn fill_row(&self, _geom: &PortGeometry, _set: &SetView<'_>, way: usize) -> usize {
        way
    }
}

/// Static rows with an eager restore to the canonical alignment after
/// every access: bounded worst-case access latency, extra background
/// shifts.
#[derive(Debug, Clone, Copy, Default)]
pub struct EagerRestore;

impl PlacementPolicy for EagerRestore {
    fn name(&self) -> &'static str {
        "eager-restore"
    }

    fn fill_row(&self, _geom: &PortGeometry, _set: &SetView<'_>, way: usize) -> usize {
        way
    }

    fn rest_offset(&self, _geom: &PortGeometry, _set: &SetView<'_>) -> Option<isize> {
        Some(0)
    }
}

/// Port-proximal placement weighted by access heat.
///
/// Fills take the free row nearest any port; after each access, if the
/// accessed way has grown at least [`hysteresis`](Self::hysteresis)
/// times hotter than some way sitting on a strictly nearer row, the two
/// swap rows (coldest such way first). Lazy tape — with hot lines packed
/// around the ports, the tape is almost always already close.
#[derive(Debug, Clone, Copy)]
pub struct HotnessWeighted {
    /// A swap fires only when `heat[hot] >= hysteresis * heat[cold]`
    /// (and the hot way is strictly farther from its port). Guards
    /// against migration thrash; 2 is a good default.
    pub hysteresis: u64,
}

impl Default for HotnessWeighted {
    fn default() -> Self {
        HotnessWeighted { hysteresis: 2 }
    }
}

impl PlacementPolicy for HotnessWeighted {
    fn name(&self) -> &'static str {
        "hotness-weighted"
    }

    fn fill_row(&self, geom: &PortGeometry, set: &SetView<'_>, way: usize) -> usize {
        // Nearest free row to any port; ties resolve to the lower row so
        // the choice is deterministic.
        (0..geom.rows())
            .filter(|&r| !set.row_taken(r, way))
            .min_by_key(|&r| (geom.shift_distance(r), r))
            .expect("a set never has more ways than rows")
    }

    fn promote(
        &self,
        geom: &PortGeometry,
        set: &SetView<'_>,
        accessed: usize,
    ) -> Option<(usize, usize)> {
        if !set.valid[accessed] {
            return None;
        }
        let hot_dist = geom.shift_distance(set.rows[accessed]);
        let hot_heat = set.heat[accessed];
        // The coldest valid way on a strictly nearer row that the hot
        // way dominates by the hysteresis factor.
        (0..set.rows.len())
            .filter(|&w| {
                w != accessed
                    && set.valid[w]
                    && geom.shift_distance(set.rows[w]) < hot_dist
                    && hot_heat >= self.hysteresis.max(1).saturating_mul(set.heat[w])
            })
            .min_by_key(|&w| (set.heat[w], w))
            .map(|cold| (accessed, cold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        offset: isize,
        rows: &'a [usize],
        valid: &'a [bool],
        heat: &'a [u64],
    ) -> SetView<'a> {
        SetView {
            offset,
            rows,
            valid,
            heat,
        }
    }

    #[test]
    fn naive_and_eager_use_way_indexed_rows() {
        let geom = PortGeometry::coruscant(32, 7);
        let v = view(0, &[0, 1, 2, 3], &[true; 4], &[1; 4]);
        for w in 0..4 {
            assert_eq!(NaiveStatic.fill_row(&geom, &v, w), w);
            assert_eq!(EagerRestore.fill_row(&geom, &v, w), w);
        }
        assert_eq!(NaiveStatic.rest_offset(&geom, &v), None);
        assert_eq!(EagerRestore.rest_offset(&geom, &v), Some(0));
        assert_eq!(NaiveStatic.promote(&geom, &v, 0), None);
    }

    #[test]
    fn hotness_fills_port_proximal_rows_first() {
        let geom = PortGeometry::coruscant(32, 7);
        let policy = HotnessWeighted::default();
        // Empty set: the first fills take the port rows (13, then 19).
        let v = view(0, &[0; 4], &[false; 4], &[0; 4]);
        assert_eq!(policy.fill_row(&geom, &v, 0), 13);
        let rows = [13, 0, 0, 0];
        let valid = [true, false, false, false];
        let v = view(0, &rows, &valid, &[0; 4]);
        assert_eq!(policy.fill_row(&geom, &v, 1), 19);
        // Both port rows taken: the next nearest free row (12).
        let rows = [13, 19, 0, 0];
        let valid = [true, true, false, false];
        let v = view(0, &rows, &valid, &[0; 4]);
        assert_eq!(policy.fill_row(&geom, &v, 2), 12);
        // A way refilling itself may keep its own row.
        let rows = [13, 19, 12, 0];
        let valid = [true, true, true, false];
        let v = view(0, &rows, &valid, &[0; 4]);
        assert_eq!(policy.fill_row(&geom, &v, 0), 13);
    }

    #[test]
    fn hotness_promotes_past_hysteresis_only() {
        let geom = PortGeometry::coruscant(32, 7);
        let policy = HotnessWeighted::default();
        // Way 1 is hot but far (row 0, distance 13); way 0 sits on the
        // port row with low heat.
        let rows = [13, 0];
        let valid = [true, true];
        let v = view(0, &rows, &valid, &[3, 5]);
        // 5 < 2*3: no swap yet.
        assert_eq!(policy.promote(&geom, &v, 1), None);
        let v = view(0, &rows, &valid, &[3, 6]);
        assert_eq!(policy.promote(&geom, &v, 1), Some((1, 0)));
        // Already nearest: nothing to swap into.
        assert_eq!(policy.promote(&geom, &v, 0), None);
    }

    #[test]
    fn hotness_promotes_coldest_nearer_way() {
        let geom = PortGeometry::coruscant(32, 7);
        let policy = HotnessWeighted::default();
        let rows = [13, 19, 12, 5];
        let valid = [true, true, true, true];
        // Way 3 (row 5, distance 8) is hot; ways 0..=2 are nearer. The
        // coldest of them (way 1) gives up its row.
        let v = view(0, &rows, &valid, &[4, 2, 9, 100]);
        assert_eq!(policy.promote(&geom, &v, 3), Some((3, 1)));
    }
}
