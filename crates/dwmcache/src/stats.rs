//! Replay accounting: per-session [`CacheStats`] and the serializable
//! per-policy [`PolicyReport`] that `BENCH_cache.json` rows embed.
//!
//! Everything here is bit-deterministic for a given (trace, config,
//! policy) triple — wall-clock numbers live in the bench harness, not in
//! these types — so the determinism contract can be asserted by direct
//! equality.

use serde::{Deserialize, Serialize};

/// Cycle/energy/event accounting for one replay session.
///
/// Cycle counters are device cycles. *Demand* shift cycles sit on the
/// access critical path (the tape moving to serve the access); *restore*
/// cycles are background repositioning a policy orders after an access;
/// *migration* cycles pay for hotness-driven row swaps. All three are
/// real shifts and all three count toward
/// [`total_shift_cycles`](CacheStats::total_shift_cycles).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Loads.
    pub reads: u64,
    /// Stores.
    pub writes: u64,
    /// Tag-match hits.
    pub hits: u64,
    /// Misses (compulsory + conflict + capacity).
    pub misses: u64,
    /// Misses on loads.
    pub read_misses: u64,
    /// Misses on stores.
    pub write_misses: u64,
    /// Dirty evictions written back.
    pub writebacks: u64,
    /// Lines filled.
    pub fills: u64,
    /// Hotness-driven row swaps.
    pub migrations: u64,
    /// SRAM tag-check cycles.
    pub tag_cycles: u64,
    /// Critical-path shift cycles (serving accesses, writebacks, fills).
    pub demand_shift_cycles: u64,
    /// Background shift cycles restoring a policy's rest position.
    pub restore_shift_cycles: u64,
    /// Shift cycles spent swapping rows for hotness placement.
    pub migration_shift_cycles: u64,
    /// Port access cycles (point reads/writes of whole rows).
    pub access_cycles: u64,
    /// Shift energy, picojoules (all nanowires of the DBC move in
    /// lock-step, so energy fans out across the line width).
    pub shift_energy_pj: f64,
    /// Port read/write energy, picojoules.
    pub access_energy_pj: f64,
}

impl CacheStats {
    /// Every shift the session ordered: demand + restore + migration.
    pub fn total_shift_cycles(&self) -> u64 {
        self.demand_shift_cycles + self.restore_shift_cycles + self.migration_shift_cycles
    }

    /// Critical-path cycles: tag checks, demand shifts, port accesses.
    pub fn demand_cycles(&self) -> u64 {
        self.tag_cycles + self.demand_shift_cycles + self.access_cycles
    }

    /// Hit fraction in `[0, 1]` (1 for an empty session).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Mean total shift cycles per access (0 for an empty session).
    pub fn avg_shift_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_shift_cycles() as f64 / self.accesses as f64
        }
    }

    /// The books balance: every access is a hit or a miss, every miss
    /// splits into read/write, and every fill came from a miss.
    pub fn balanced(&self) -> bool {
        self.accesses == self.hits + self.misses
            && self.accesses == self.reads + self.writes
            && self.misses == self.read_misses + self.write_misses
            && self.fills == self.misses
            && self.writebacks <= self.misses
    }
}

/// The deterministic summary of one (trace, policy) replay: what the
/// bench rows embed and what the determinism contract compares.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Placement-policy name.
    pub policy: String,
    /// Hit fraction in `[0, 1]`.
    pub hit_rate: f64,
    /// Demand + restore + migration shift cycles.
    pub total_shift_cycles: u64,
    /// Critical-path shift cycles only.
    pub demand_shift_cycles: u64,
    /// Mean total shift cycles per access.
    pub avg_shift_per_access: f64,
    /// Misses converted into runtime jobs.
    pub miss_jobs: u64,
    /// Ones surviving the PIM filter over all fetched lines (0 when the
    /// filter op is disabled).
    pub filter_ones: u64,
    /// The full counter set.
    pub stats: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;

    fn sample() -> CacheStats {
        CacheStats {
            accesses: 100,
            reads: 70,
            writes: 30,
            hits: 80,
            misses: 20,
            read_misses: 15,
            write_misses: 5,
            writebacks: 3,
            fills: 20,
            migrations: 2,
            tag_cycles: 100,
            demand_shift_cycles: 250,
            restore_shift_cycles: 40,
            migration_shift_cycles: 12,
            access_cycles: 123,
            shift_energy_pj: 19.5,
            access_energy_pj: 7.25,
        }
    }

    #[test]
    fn derived_rates() {
        let s = sample();
        assert!(s.balanced());
        assert_eq!(s.total_shift_cycles(), 302);
        assert_eq!(s.demand_cycles(), 473);
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
        assert!((s.avg_shift_per_access() - 3.02).abs() < 1e-12);
    }

    #[test]
    fn empty_session_rates() {
        let s = CacheStats::default();
        assert!(s.balanced());
        assert_eq!(s.hit_rate(), 1.0);
        assert_eq!(s.avg_shift_per_access(), 0.0);
    }

    #[test]
    fn unbalanced_books_detected() {
        let mut s = sample();
        s.hits += 1;
        assert!(!s.balanced());
    }

    #[test]
    fn cache_stats_round_trip() {
        let s = sample();
        let text = json::to_string(&s);
        let back: CacheStats = json::from_str(&text).expect("stats deserialize");
        assert_eq!(back, s, "{text}");
    }

    #[test]
    fn policy_report_round_trip() {
        let r = PolicyReport {
            policy: "hotness".into(),
            hit_rate: 0.8,
            total_shift_cycles: 302,
            demand_shift_cycles: 250,
            avg_shift_per_access: 3.02,
            miss_jobs: 20,
            filter_ones: 512,
            stats: sample(),
        };
        let text = json::to_string(&r);
        let back: PolicyReport = json::from_str(&text).expect("report deserializes");
        assert_eq!(back, r, "{text}");
    }
}
