//! Address traces: the `R/W <addr>` text format and synthetic generators
//! with controllable locality.
//!
//! The trace format is the classic two-column cache-simulator input —
//! one access per line, an operation letter (`R` or `W`, case
//! insensitive) and a byte address (decimal or `0x`-prefixed hex).
//! Full-line and trailing `#` comments and blank lines are skipped:
//!
//! ```text
//! # warmup
//! R 0x1a40
//! W 6720      # store to the same line
//! ```
//!
//! [`parse_trace`] and [`emit_trace`] round-trip: emitting a parsed
//! trace and re-parsing it yields the same accesses (the canonical form
//! writes hex addresses). The generators are seeded and fully
//! deterministic — a given `(spec, seed)` always produces the same
//! trace, which is what makes the replay determinism contract testable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation of one trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read => write!(f, "R"),
            Op::Write => write!(f, "W"),
        }
    }
}

/// One memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Read or write.
    pub op: Op,
    /// Byte address.
    pub addr: u64,
}

impl Access {
    /// A read at `addr`.
    pub fn read(addr: u64) -> Access {
        Access { op: Op::Read, addr }
    }

    /// A write at `addr`.
    pub fn write(addr: u64) -> Access {
        Access {
            op: Op::Write,
            addr,
        }
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses the `R/W <addr>` text format. Blank lines and `#` comments
/// (full-line or trailing) are skipped; an empty file is an empty trace.
///
/// # Errors
///
/// A [`TraceError`] naming the first malformed line: a missing or
/// unknown operation letter, a missing or unparsable address, or
/// trailing junk after the address.
pub fn parse_trace(text: &str) -> Result<Vec<Access>, TraceError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut fields = body.split_whitespace();
        let op = match fields.next() {
            Some(t) if t.eq_ignore_ascii_case("r") => Op::Read,
            Some(t) if t.eq_ignore_ascii_case("w") => Op::Write,
            Some(t) => {
                return Err(TraceError {
                    line,
                    message: format!("unknown operation {t:?} (expected R or W)"),
                })
            }
            None => unreachable!("non-empty body has a first field"),
        };
        let addr_text = fields.next().ok_or_else(|| TraceError {
            line,
            message: "missing address".into(),
        })?;
        let addr = parse_addr(addr_text).ok_or_else(|| TraceError {
            line,
            message: format!("bad address {addr_text:?}"),
        })?;
        if let Some(junk) = fields.next() {
            return Err(TraceError {
                line,
                message: format!("trailing junk {junk:?} after address"),
            });
        }
        out.push(Access { op, addr });
    }
    Ok(out)
}

fn parse_addr(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Emits the canonical text form (hex addresses, one access per line).
/// `parse_trace(&emit_trace(t)) == t` for every trace.
pub fn emit_trace(accesses: &[Access]) -> String {
    let mut out = String::new();
    for a in accesses {
        out.push_str(&format!("{} 0x{:x}\n", a.op, a.addr));
    }
    out
}

/// SplitMix64: the deterministic stream behind the generators and the
/// replay engine's synthetic line/mask payloads (same generator family
/// the fault-injection plumbing uses).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// True with probability `pct`/100.
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// The locality shape of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mix {
    /// Sequential lines, wrapping over the footprint — maximal spatial
    /// locality, no reuse until the wrap.
    Streaming,
    /// Every access `stride` lines after the previous, wrapping.
    Strided(u64),
    /// `hot_pct`% of accesses hit a small pool of `hot_lines` lines
    /// (temporal locality); the rest scatter over the footprint.
    HotCold {
        /// Size of the hot pool, in lines.
        hot_lines: u64,
        /// Percentage of accesses that go to the hot pool.
        hot_pct: u64,
    },
    /// Uniform random lines over the footprint — the locality-free
    /// adversary.
    Uniform,
}

impl Mix {
    /// A short stable name for bench rows and reports.
    pub fn name(&self) -> String {
        match self {
            Mix::Streaming => "streaming".into(),
            Mix::Strided(s) => format!("strided{s}"),
            Mix::HotCold { hot_pct, .. } => format!("hot{hot_pct}"),
            Mix::Uniform => "uniform".into(),
        }
    }
}

/// A synthetic-trace specification: fully determines the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// The locality shape.
    pub mix: Mix,
    /// Number of accesses to generate.
    pub accesses: usize,
    /// Address footprint, in cache lines.
    pub lines: u64,
    /// Cache-line size in bytes (addresses are line-aligned multiples).
    pub line_bytes: u64,
    /// Percentage of accesses that are writes.
    pub write_pct: u64,
    /// Generator seed.
    pub seed: u64,
}

impl SynthSpec {
    /// Generates the trace this spec describes. Deterministic: the same
    /// spec always yields the same accesses.
    pub fn generate(&self) -> Vec<Access> {
        let mut rng = SplitMix64(self.seed ^ 0xD1F7_C0DE);
        let lines = self.lines.max(1);
        let mut out = Vec::with_capacity(self.accesses);
        let mut cursor = 0u64;
        for _ in 0..self.accesses {
            let line = match self.mix {
                Mix::Streaming => {
                    let l = cursor % lines;
                    cursor += 1;
                    l
                }
                Mix::Strided(stride) => {
                    let l = cursor % lines;
                    cursor = cursor.wrapping_add(stride.max(1));
                    l
                }
                Mix::HotCold { hot_lines, hot_pct } => {
                    let hot = hot_lines.clamp(1, lines);
                    if rng.chance(hot_pct) {
                        rng.below(hot)
                    } else {
                        hot + rng.below((lines - hot).max(1))
                    }
                }
                Mix::Uniform => rng.below(lines),
            };
            let op = if rng.chance(self.write_pct) {
                Op::Write
            } else {
                Op::Read
            };
            out.push(Access {
                op,
                addr: line * self.line_bytes,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_radix_and_comments() {
        let text = "# header\nR 0x40\n\nW 128   # trailing\n  r 0X10\nw 0\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(
            t,
            vec![
                Access::read(0x40),
                Access::write(128),
                Access::read(0x10),
                Access::write(0),
            ]
        );
    }

    #[test]
    fn empty_and_comment_only_files_parse_empty() {
        assert_eq!(parse_trace("").unwrap(), vec![]);
        assert_eq!(parse_trace("# nothing\n\n  # here\n").unwrap(), vec![]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_trace("R 0x10\nX 4\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown operation"));

        let e = parse_trace("R\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("missing address"));

        let e = parse_trace("W 0xzz\n").unwrap_err();
        assert!(e.message.contains("bad address"));

        let e = parse_trace("R 4 extra\n").unwrap_err();
        assert!(e.message.contains("trailing junk"));
    }

    #[test]
    fn emit_parse_round_trip() {
        let t = vec![
            Access::read(0),
            Access::write(u64::MAX),
            Access::read(0x1a40),
        ];
        assert_eq!(parse_trace(&emit_trace(&t)).unwrap(), t);
    }

    #[test]
    fn generators_are_deterministic() {
        let spec = SynthSpec {
            mix: Mix::HotCold {
                hot_lines: 8,
                hot_pct: 90,
            },
            accesses: 500,
            lines: 1024,
            line_bytes: 64,
            write_pct: 30,
            seed: 7,
        };
        assert_eq!(spec.generate(), spec.generate());
        let other = SynthSpec { seed: 8, ..spec };
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn hot_cold_mix_respects_pools() {
        let spec = SynthSpec {
            mix: Mix::HotCold {
                hot_lines: 4,
                hot_pct: 100,
            },
            accesses: 200,
            lines: 4096,
            line_bytes: 64,
            write_pct: 0,
            seed: 3,
        };
        for a in spec.generate() {
            assert!(a.addr < 4 * 64, "hot-only trace stays in the pool");
            assert_eq!(a.op, Op::Read);
        }
    }

    #[test]
    fn streaming_is_sequential() {
        let spec = SynthSpec {
            mix: Mix::Streaming,
            accesses: 10,
            lines: 4,
            line_bytes: 8,
            write_pct: 0,
            seed: 1,
        };
        let addrs: Vec<u64> = spec.generate().iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 8, 16, 24, 0, 8, 16, 24, 0, 8]);
    }
}
