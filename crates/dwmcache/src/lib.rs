//! Trace-driven DWM last-level-cache frontend for the CORUSCANT stack.
//!
//! Everything below the serving frontend in this workspace is
//! *job-shaped*: programs go in, results come out. Real memory systems
//! are *access-shaped* — a stream of reads and writes whose locality
//! decides how much of the racetrack's shift latency actually shows up.
//! This crate bridges the two with a trace-driven set-associative cache
//! model whose data blocks live on DBC rows:
//!
//! * [`trace`] — the `R/W <addr>` text format ([`parse_trace`] /
//!   [`emit_trace`]) and seeded synthetic generators with controllable
//!   locality ([`SynthSpec`], [`Mix`]).
//! * [`policy`] — the [`PlacementPolicy`] trait and three shift-aware
//!   placement/port policies: [`NaiveStatic`], [`EagerRestore`], and
//!   [`HotnessWeighted`] (port-proximal placement with heat-driven
//!   migration, after the racetrack-survey data-placement taxonomy).
//! * [`cache`] — the [`DwmCache`] model itself: SRAM tags, per-set tape
//!   state, and a cycle/energy cost account built on
//!   [`coruscant_racetrack::PortGeometry`] and the paper's device
//!   parameters.
//! * [`replay`] — miss-to-PIM job conversion: [`replay`](replay::replay)
//!   turns configurable miss classes into real fill(+filter) jobs served
//!   end to end through `coruscant-server`, bit-deterministically for
//!   any runtime shard count.
//! * [`stats`] — the deterministic [`CacheStats`] / [`PolicyReport`]
//!   accounting the bench harness serializes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod policy;
pub mod replay;
pub mod stats;
pub mod trace;

pub use cache::{AccessOutcome, CacheConfig, CacheError, DwmCache};
pub use policy::{EagerRestore, HotnessWeighted, NaiveStatic, PlacementPolicy, SetView};
pub use replay::{JobConfig, ReplayConfig, ReplayError, ReplayOutcome};
pub use stats::{CacheStats, PolicyReport};
pub use trace::{emit_trace, parse_trace, Access, Mix, Op, SynthSpec, TraceError};
