//! End-to-end: a recorded SPEC-style address dump flows through
//! `parse_trace` into `replay` — cache model, miss-to-job conversion,
//! and the serving stack — deterministically across policies and shard
//! counts.

use coruscant_dwmcache::replay::replay;
use coruscant_dwmcache::{
    parse_trace, Access, EagerRestore, HotnessWeighted, NaiveStatic, PlacementPolicy, ReplayConfig,
};

fn spec_dump() -> Vec<Access> {
    parse_trace(include_str!("data/spec_dump.trace")).expect("recorded dump parses")
}

#[test]
fn spec_dump_parses_with_expected_shape() {
    let trace = spec_dump();
    assert_eq!(trace.len(), 646, "every non-comment line is one access");
    let writes = trace
        .iter()
        .filter(|a| matches!(a.op, coruscant_dwmcache::Op::Write))
        .count();
    assert!(writes > 0, "the dump mixes reads and writes");
    assert!(
        trace.iter().any(|a| a.addr >= 0x7ffe_0000),
        "stack region present"
    );
    assert!(
        trace
            .iter()
            .any(|a| (0x0040_0000..0x0041_0000).contains(&a.addr)),
        "text region present"
    );
}

#[test]
fn spec_dump_replays_balanced_under_every_policy() {
    let trace = spec_dump();
    let policies: Vec<(&str, Box<dyn PlacementPolicy>)> = vec![
        ("naive", Box::new(NaiveStatic)),
        ("eager", Box::new(EagerRestore)),
        ("hotness", Box::new(HotnessWeighted::default())),
    ];
    for (name, policy) in policies {
        let out = replay(&trace, policy, &ReplayConfig::tiny()).expect("replay succeeds");
        let s = &out.report.stats;
        assert!(s.balanced(), "{name}: {s:?}");
        assert_eq!(s.accesses as usize, trace.len(), "{name}");
        assert!(s.misses > 0, "{name}: a real dump misses somewhere");
        assert!(s.hits > 0, "{name}: the hot stack region hits");
        assert_eq!(
            out.outputs.len(),
            out.report.miss_jobs as usize,
            "{name}: one served job per converted miss"
        );
    }
}

#[test]
fn spec_dump_replay_is_bit_identical_across_shard_counts() {
    let trace = spec_dump();
    let base = replay(&trace, Box::new(NaiveStatic), &ReplayConfig::tiny()).unwrap();
    for shards in [2usize, 4] {
        let out = replay(
            &trace,
            Box::new(NaiveStatic),
            &ReplayConfig::tiny().with_shards(shards),
        )
        .unwrap();
        assert_eq!(
            out.outputs, base.outputs,
            "outputs diverged at {shards} shards"
        );
        assert_eq!(out.report.stats, base.report.stats);
    }
}
