//! Property and fixture tests for the trace format.

use coruscant_dwmcache::trace::{emit_trace, parse_trace, Access, Mix, Op, SynthSpec};
use proptest::prelude::*;

proptest! {
    /// Emitting any trace and re-parsing it yields the same accesses.
    #[test]
    fn emit_parse_roundtrip(
        raw in proptest::collection::vec((any::<bool>(), any::<u64>()), 0..64),
    ) {
        let trace: Vec<Access> = raw
            .iter()
            .map(|&(w, addr)| if w { Access::write(addr) } else { Access::read(addr) })
            .collect();
        let text = emit_trace(&trace);
        prop_assert_eq!(parse_trace(&text).unwrap(), trace);
    }

    /// Synthetic traces survive the text round-trip too, whatever the mix.
    #[test]
    fn synthetic_roundtrip(seed: u64, mix_idx in 0usize..4, accesses in 1usize..200) {
        let mix = [
            Mix::Streaming,
            Mix::Strided(3),
            Mix::HotCold { hot_lines: 8, hot_pct: 75 },
            Mix::Uniform,
        ][mix_idx];
        let trace = SynthSpec {
            mix,
            accesses,
            lines: 256,
            line_bytes: 64,
            write_pct: 30,
            seed,
        }
        .generate();
        prop_assert_eq!(parse_trace(&emit_trace(&trace)).unwrap(), trace);
    }

    /// Whitespace and comment decoration never changes what parses.
    #[test]
    fn decoration_is_ignored(addr: u64, pad in 0usize..6) {
        let spaces = " ".repeat(pad + 1);
        let text = format!("\n# lead\nR{spaces}0x{addr:x}{spaces}# tail\n\n");
        prop_assert_eq!(parse_trace(&text).unwrap(), vec![Access::read(addr)]);
    }
}

#[test]
fn checked_in_fixture_parses() {
    let text = include_str!("data/sample.trace");
    let trace = parse_trace(text).expect("fixture is well-formed");
    assert_eq!(
        trace,
        vec![
            Access::read(0x0),
            Access::write(0x40),
            Access::read(64),
            Access::write(0x80),
            Access::read(192),
            Access::write(u64::MAX),
            Access::read(0x1a40),
            Access::write(6720),
        ]
    );
    // The canonical re-emission parses back to the same trace.
    assert_eq!(parse_trace(&emit_trace(&trace)).unwrap(), trace);
    // Reads and writes both present.
    assert!(trace.iter().any(|a| a.op == Op::Read));
    assert!(trace.iter().any(|a| a.op == Op::Write));
}

#[test]
fn fixture_drives_a_cache_session() {
    use coruscant_dwmcache::{CacheConfig, DwmCache, NaiveStatic};
    use coruscant_mem::MemoryConfig;

    let trace = parse_trace(include_str!("data/sample.trace")).unwrap();
    let mut cache = DwmCache::new(
        CacheConfig::new(4, 4),
        &MemoryConfig::tiny(),
        Box::new(NaiveStatic),
    )
    .unwrap();
    cache.run(&trace);
    let s = cache.stats();
    assert_eq!(s.accesses, trace.len() as u64);
    assert!(s.balanced());
}
