//! The max function with transverse writes (paper §IV-B, Figs. 8–9).
//!
//! Up to TRD candidate words sit in the inter-port segment. Working from
//! the MSB down, one transverse read per bit position tells each lane
//! whether *any* candidate has a `1` there; if so, candidates with a `0`
//! are eliminated (overwritten by the zero vector through a predicated
//! row-buffer reset), and if not, every word is passed through unchanged —
//! a zero column cannot eliminate anybody.
//!
//! Rotating the words past the access ports would be prohibitively
//! expensive with whole-wire shifts, so CORUSCANT introduces the
//! **transverse write**: the word under the right head is read, the
//! (possibly reset) value is written back through the left head while only
//! the inter-port segment advances — *segmented shifting* that returns
//! every word to its original position after TRD rounds without disturbing
//! the rest of the wire. After the LSB pass, a final `TR > 0` read yields
//! the maximum regardless of where it sits (and regardless of ties).

use crate::{PimError, Result};
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::{CostMeter, PortId};

/// Executes max operations on a PIM-enabled DBC.
#[derive(Debug, Clone)]
pub struct MaxExecutor {
    trd: usize,
}

impl MaxExecutor {
    /// Creates an executor for the configuration's TRD.
    pub fn new(config: &MemoryConfig) -> MaxExecutor {
        MaxExecutor { trd: config.trd }
    }

    /// Maximum number of candidate words.
    pub fn max_candidates(&self) -> usize {
        self.trd
    }

    /// Places up to TRD candidate rows into the segment (write + shift per
    /// candidate, unused positions preset to zero — the zero vector never
    /// wins a max against real data and never forces an elimination).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::NotPim`], operand-count errors, or a memory
    /// error.
    pub fn place_candidates(
        &self,
        dbc: &mut Dbc,
        candidates: &[Row],
        meter: &mut CostMeter,
    ) -> Result<()> {
        if !dbc.is_pim() {
            return Err(PimError::NotPim);
        }
        let k = candidates.len();
        if k == 0 {
            return Err(PimError::TooFewOperands {
                requested: 0,
                min: 1,
            });
        }
        if k > self.trd {
            return Err(PimError::TooManyOperands {
                requested: k,
                max: self.trd,
            });
        }
        crate::bulk::ensure_right_slack(dbc, k as isize - 1, meter)?;
        let zero = Row::zeros(dbc.width());
        for s in 0..self.trd {
            dbc.poke_segment_row(s, &zero)?;
        }
        for (i, c) in candidates.iter().enumerate() {
            if c.width() != dbc.width() {
                return Err(PimError::Mem(coruscant_mem::MemError::WidthMismatch {
                    got: c.width(),
                    expected: dbc.width(),
                }));
            }
            let writes: Vec<(usize, PortId, bool)> = c
                .iter()
                .enumerate()
                .map(|(w, b)| (w, PortId::LEFT, b))
                .collect();
            dbc.write_bits(&writes, meter)?;
            if i + 1 < k {
                dbc.shift_all(1, meter)?;
            }
        }
        // Restore the zero preset on positions the shifts exposed.
        for s in k..self.trd {
            dbc.poke_segment_row(s, &zero)?;
        }
        Ok(())
    }

    /// Runs the max subroutine over the candidates already in the segment,
    /// using transverse writes for the per-word rotation. Values are
    /// unsigned `blocksize`-bit lanes compared independently.
    ///
    /// Returns the per-lane maximum row. Cost per bit position: one TR
    /// plus `TRD × (read + TW)`; final extraction is one more TR.
    ///
    /// # Errors
    ///
    /// Returns a block-size or memory error.
    pub fn max_in_place(
        &self,
        dbc: &mut Dbc,
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        crate::add::validate_blocksize(blocksize, dbc.width())?;
        let width = dbc.width();
        let lanes = width / blocksize;

        for j in (0..blocksize).rev() {
            // One parallel TR; lane `l`'s verdict lives at wire l*bs + j.
            let counts = dbc.transverse_read_all(meter)?;
            let tr_positive: Vec<bool> = (0..lanes)
                .map(|l| counts[l * blocksize + j].value > 0)
                .collect();

            // Rotate all TRD words through the heads via read + TW.
            for _ in 0..self.trd {
                // Read the word under the right head (parallel across
                // wires: one read cycle).
                let word = self.read_right_port_row(dbc, meter)?;
                // Predicated row-buffer reset, per lane.
                let mut updated = word.clone();
                for (l, &positive) in tr_positive.iter().enumerate() {
                    if positive && !word.get(l * blocksize + j).unwrap() {
                        for w in l * blocksize..(l + 1) * blocksize {
                            updated.set(w, false);
                        }
                    }
                }
                // Transverse write from the left head: segmented shift.
                dbc.transverse_write_all(&updated, meter)?;
            }
        }

        // Extraction: TR > 0 per wire reads the max regardless of its
        // position or multiplicity (paper: ties still read correctly).
        let counts = dbc.transverse_read_all(meter)?;
        Ok(counts.into_iter().map(|c| c.value > 0).collect())
    }

    fn read_right_port_row(&self, dbc: &mut Dbc, meter: &mut CostMeter) -> Result<Row> {
        let mut combined = coruscant_racetrack::Cost::ZERO;
        let mut bits = Vec::with_capacity(dbc.width());
        for w in 0..dbc.width() {
            let mut local = CostMeter::new();
            bits.push(dbc.wire_mut(w).read(PortId::RIGHT, &mut local)?);
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge(combined);
        Ok(Row::from_bits(bits))
    }

    /// Full max operation: placement + in-place subroutine.
    ///
    /// # Errors
    ///
    /// As [`MaxExecutor::place_candidates`] and
    /// [`MaxExecutor::max_in_place`].
    pub fn max_rows(
        &self,
        dbc: &mut Dbc,
        candidates: &[Row],
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        self.place_candidates(dbc, candidates, meter)?;
        self.max_in_place(dbc, blocksize, meter)
    }

    /// The pre-TW baseline (the ablation of §IV-B): the same algorithm but
    /// rotating each word with conventional row accesses (align + read +
    /// align + write) instead of transverse writes. Candidates live at
    /// rows `base..base + k`.
    ///
    /// # Errors
    ///
    /// Returns a block-size or memory error.
    pub fn max_rows_without_tw(
        &self,
        dbc: &mut Dbc,
        base: usize,
        k: usize,
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        crate::add::validate_blocksize(blocksize, dbc.width())?;
        if k == 0 || k > self.trd {
            return Err(PimError::TooManyOperands {
                requested: k,
                max: self.trd,
            });
        }
        let width = dbc.width();
        let lanes = width / blocksize;

        for j in (0..blocksize).rev() {
            dbc.align_row(base, PortId::LEFT, meter)?;
            let counts = dbc.transverse_read_all(meter)?;
            let tr_positive: Vec<bool> = (0..lanes)
                .map(|l| counts[l * blocksize + j].value > 0)
                .collect();
            for word_idx in 0..k {
                let r = base + word_idx;
                let word = dbc.read_row(r, meter)?;
                let mut updated = word.clone();
                for (l, &positive) in tr_positive.iter().enumerate() {
                    if positive && !word.get(l * blocksize + j).unwrap() {
                        for w in l * blocksize..(l + 1) * blocksize {
                            updated.set(w, false);
                        }
                    }
                }
                dbc.write_row(r, &updated, meter)?;
            }
        }
        dbc.align_row(base, PortId::LEFT, meter)?;
        let counts = dbc.transverse_read_all(meter)?;
        Ok(counts.into_iter().map(|c| c.value > 0).collect())
    }

    /// Reference max (oracle): lane-wise maximum across the candidates.
    pub fn reference(candidates: &[Row], blocksize: usize) -> Row {
        let width = candidates[0].width();
        let lanes = width / blocksize;
        let mut maxes = vec![0u64; lanes];
        for c in candidates {
            for (l, v) in c.unpack(blocksize).into_iter().enumerate() {
                maxes[l] = maxes[l].max(v);
            }
        }
        Row::pack(width, blocksize, &maxes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Dbc, MaxExecutor) {
        let config = MemoryConfig::tiny();
        (Dbc::pim_enabled(&config), MaxExecutor::new(&config))
    }

    fn rows(values: &[[u64; 8]]) -> Vec<Row> {
        values.iter().map(|v| Row::pack(64, 8, v)).collect()
    }

    #[test]
    fn max_of_four_words_matches_fig8_style_case() {
        let (mut dbc, max) = setup();
        let candidates = rows(&[
            [0b1010, 9, 200, 0, 17, 255, 3, 128],
            [0b1100, 9, 201, 0, 18, 254, 3, 129],
            [0b1111, 8, 0, 0, 19, 253, 2, 130],
            [0b0111, 7, 5, 0, 20, 252, 1, 131],
        ]);
        let mut m = CostMeter::new();
        let got = max.max_rows(&mut dbc, &candidates, 8, &mut m).unwrap();
        assert_eq!(got, MaxExecutor::reference(&candidates, 8));
        assert_eq!(got.unpack(8)[0], 0b1111);
    }

    #[test]
    fn max_with_ties_reads_correctly() {
        let (mut dbc, max) = setup();
        let candidates = rows(&[[200; 8], [200; 8], [100; 8]]);
        let got = max
            .max_rows(&mut dbc, &candidates, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.unpack(8), vec![200; 8]);
    }

    #[test]
    fn max_of_all_zero_lane_is_zero() {
        let (mut dbc, max) = setup();
        let candidates = rows(&[[0, 5, 0, 0, 0, 0, 0, 0], [0, 3, 0, 0, 0, 0, 0, 0]]);
        let got = max
            .max_rows(&mut dbc, &candidates, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.unpack(8)[0], 0);
        assert_eq!(got.unpack(8)[1], 5);
    }

    #[test]
    fn seven_candidates_fill_the_segment() {
        let (mut dbc, max) = setup();
        let candidates: Vec<Row> = (1..=7u64)
            .map(|k| Row::pack(64, 8, &[k * 7 % 256; 8]))
            .collect();
        let got = max
            .max_rows(&mut dbc, &candidates, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, MaxExecutor::reference(&candidates, 8));
    }

    #[test]
    fn tw_cycle_count_per_paper_model() {
        // Per bit: 1 TR + TRD*(read + TW); extraction: 1 TR.
        let (mut dbc, max) = setup();
        let candidates = rows(&[[1; 8], [2; 8]]);
        let mut m = CostMeter::new();
        max.place_candidates(&mut dbc, &candidates, &mut m).unwrap();
        m.take();
        max.max_in_place(&mut dbc, 8, &mut m).unwrap();
        let expect = 8 * (1 + 7 * 2) + 1;
        assert_eq!(m.total().cycles, expect as u64);
    }

    #[test]
    fn tw_variant_saves_cycles_over_shift_variant() {
        // Paper: TW reduces max-function cycles by 28.5% at TRD = 7. The
        // comparison is over a full segment of TRD candidate words.
        let candidates = rows(&[
            [13; 8], [240; 8], [99; 8], [100; 8], [1; 8], [239; 8], [77; 8],
        ]);

        let (mut dbc, max) = setup();
        let mut m_tw = CostMeter::new();
        let tw_result = max.max_rows(&mut dbc, &candidates, 8, &mut m_tw).unwrap();

        let (mut dbc2, max2) = setup();
        for (i, c) in candidates.iter().enumerate() {
            dbc2.poke_row(10 + i, c).unwrap();
        }
        let mut m_shift = CostMeter::new();
        let shift_result = max2
            .max_rows_without_tw(&mut dbc2, 10, 7, 8, &mut m_shift)
            .unwrap();

        assert_eq!(tw_result, shift_result);
        let tw = m_tw.total().cycles as f64;
        let base = m_shift.total().cycles as f64;
        let saving = (base - tw) / base;
        assert!(
            saving > 0.20,
            "TW saving {saving:.3} (tw {tw}, baseline {base})"
        );
    }

    #[test]
    fn wide_lane_max() {
        let (mut dbc, max) = setup();
        let candidates = vec![
            Row::pack(64, 32, &[1_000_000, 7]),
            Row::pack(64, 32, &[999_999, 8]),
        ];
        let got = max
            .max_rows(&mut dbc, &candidates, 32, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.unpack(32), vec![1_000_000, 8]);
    }

    #[test]
    fn errors() {
        let (mut dbc, max) = setup();
        let mut m = CostMeter::new();
        assert!(matches!(
            max.max_rows(&mut dbc, &[], 8, &mut m),
            Err(PimError::TooFewOperands { .. })
        ));
        let eight: Vec<Row> = (0..8u64).map(|k| Row::pack(64, 8, &[k; 8])).collect();
        assert!(matches!(
            max.max_rows(&mut dbc, &eight, 8, &mut m),
            Err(PimError::TooManyOperands { .. })
        ));
        let mut storage = Dbc::storage(&MemoryConfig::tiny());
        assert!(matches!(
            max.max_rows(&mut storage, &eight[..2], 8, &mut m),
            Err(PimError::NotPim)
        ));
    }
}
