//! Area-overhead model (paper Table I and the Table III unit areas).
//!
//! The paper synthesizes the seven-transistor TR sense circuits and the
//! PIM logic in FreePDK45 and scales to 32 nm. That flow is not available
//! here, so this module carries an analytic component model in units of
//! F² whose constants are calibrated to reproduce the paper's reported
//! percentages exactly (Table I: 3.7% / 9.2% / 9.4% / 10.0% for one PIM
//! tile per 16-tile subarray).
//!
//! Component accounting per nanowire:
//!
//! * storage cell: 2 F² per domain (DWM is 1–4 F²/cell, §I);
//! * one access-port transistor stack per port;
//! * the baseline single-level sense amplifier, extended with one
//!   reference/comparator slice per extra TR level;
//! * the adder logic (S/C/C' derivation, wider at higher TRD);
//! * the multiplication extensions (neighbour-forwarding muxes);
//! * the remaining bulk-bitwise decode logic.
//!
//! A PIM wire also *saves* domains: the two-port TR geometry needs fewer
//! overhead domains than the single-port baseline (57 vs 63 at Y = 32,
//! TRD = 7).

use coruscant_racetrack::NanowireSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Storage cell area per domain (F²).
pub const CELL_AREA_F2: f64 = 2.0;
/// Access-port stack per port per wire (F²).
pub const ACCESS_PORT_F2: f64 = 20.0;
/// Baseline single-level sense amplifier per wire (F²).
pub const SENSE_AMP_BASE_F2: f64 = 50.0;
/// Additional sense reference/comparator per extra TR level (F²).
pub const SENSE_LEVEL_F2: f64 = 40.0;
/// Adder logic (S/C/C') per wire at TRD = 3 / 5 / 7 (F²).
pub const ADDER_LOGIC_F2: [(usize, f64); 3] = [(3, 20.0), (5, 30.0), (7, 40.5)];
/// Multiplication extensions (shift muxes, predication) per wire (F²).
pub const MULT_LOGIC_F2: f64 = 6.3;
/// Remaining bulk-bitwise decode logic per wire (F²).
pub const BBO_LOGIC_F2: f64 = 18.8;

/// A PIM design point of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimDesign {
    /// Two-operand adder only (TRD = 3).
    Add2,
    /// Five-operand adder (TRD = 7).
    Add5,
    /// Multiplication plus the five-operand adder.
    MulAdd5,
    /// Full ISA: multiplication, addition, and bulk-bitwise operations.
    MulAdd5Bbo,
}

impl PimDesign {
    /// The four design points in Table I order.
    pub const ALL: [PimDesign; 4] = [
        PimDesign::Add2,
        PimDesign::Add5,
        PimDesign::MulAdd5,
        PimDesign::MulAdd5Bbo,
    ];

    /// TRD of the design.
    pub fn trd(self) -> usize {
        match self {
            PimDesign::Add2 => 3,
            _ => 7,
        }
    }

    /// Whether the design includes the multiplication extensions.
    pub fn has_mult(self) -> bool {
        matches!(self, PimDesign::MulAdd5 | PimDesign::MulAdd5Bbo)
    }

    /// Whether the design includes the bulk-bitwise decode logic.
    pub fn has_bbo(self) -> bool {
        matches!(self, PimDesign::MulAdd5Bbo)
    }

    /// The paper's reported overhead for this design (Table I).
    pub fn paper_overhead(self) -> f64 {
        match self {
            PimDesign::Add2 => 0.037,
            PimDesign::Add5 => 0.092,
            PimDesign::MulAdd5 => 0.094,
            PimDesign::MulAdd5Bbo => 0.100,
        }
    }
}

impl fmt::Display for PimDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PimDesign::Add2 => "ADD2",
            PimDesign::Add5 => "ADD5",
            PimDesign::MulAdd5 => "MUL+ADD5",
            PimDesign::MulAdd5Bbo => "MUL+ADD5+BBO",
        };
        write!(f, "{s}")
    }
}

fn adder_logic_f2(trd: usize) -> f64 {
    ADDER_LOGIC_F2
        .iter()
        .find(|(t, _)| *t == trd)
        .map(|(_, a)| *a)
        .unwrap_or_else(|| {
            // Interpolate linearly for unusual TRDs.
            20.0 + (trd as f64 - 3.0) * 5.125
        })
}

/// Area of one baseline (single-port, non-PIM) nanowire slice, including
/// its share of sensing (F²), for `y` data rows.
pub fn baseline_wire_area_f2(y: usize) -> f64 {
    let spec = NanowireSpec::single_port(y);
    spec.total_domains as f64 * CELL_AREA_F2 + ACCESS_PORT_F2 + SENSE_AMP_BASE_F2
}

/// Extra area a PIM wire adds over the baseline wire (F²); can be partially
/// offset by the saved overhead domains.
pub fn pim_wire_extra_f2(design: PimDesign, y: usize) -> f64 {
    let trd = design.trd();
    let pim_spec = NanowireSpec::coruscant(y, trd);
    let base_spec = NanowireSpec::single_port(y);
    let domain_delta =
        (pim_spec.total_domains as f64 - base_spec.total_domains as f64) * CELL_AREA_F2;
    let extra_port = ACCESS_PORT_F2; // the second access point
    let extra_levels = (trd - 1) as f64 * SENSE_LEVEL_F2;
    let mut extra = extra_port + domain_delta + extra_levels + adder_logic_f2(trd);
    if design.has_mult() {
        extra += MULT_LOGIC_F2;
    }
    if design.has_bbo() {
        extra += BBO_LOGIC_F2;
    }
    extra
}

/// Table I: the area overhead of PIM-enabling one tile per
/// `tiles_per_subarray`-tile subarray, as a fraction of the base memory
/// area.
pub fn overhead_1pim(design: PimDesign, y: usize, tiles_per_subarray: usize) -> f64 {
    pim_wire_extra_f2(design, y) / (tiles_per_subarray as f64 * baseline_wire_area_f2(y))
}

/// Per-unit processing areas reported in Table III (µm² at 32 nm) for an
/// 8-bit CORUSCANT unit.
pub fn unit_area_um2(op: &str) -> Option<f64> {
    match op {
        "2op add (TR=3)" => Some(2.16),
        "2op add (TR=7)" => Some(3.60),
        "5op add (TR=7)" => Some(4.94),
        "mult (TR=3)" => Some(3.80),
        "mult (TR=7)" => Some(5.07),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_overheads_reproduced() {
        for design in PimDesign::ALL {
            let got = overhead_1pim(design, 32, 16);
            let want = design.paper_overhead();
            assert!(
                (got - want).abs() < 0.001,
                "{design}: got {got:.4}, paper {want:.4}"
            );
        }
    }

    #[test]
    fn overhead_ordering() {
        let o: Vec<f64> = PimDesign::ALL
            .iter()
            .map(|&d| overhead_1pim(d, 32, 16))
            .collect();
        assert!(o[0] < o[1] && o[1] < o[2] && o[2] < o[3], "{o:?}");
    }

    #[test]
    fn trd3_design_halves_the_overhead() {
        // Paper: "dropping from a five to two operand adder ... reduces the
        // overhead to < 4%".
        let full = overhead_1pim(PimDesign::MulAdd5Bbo, 32, 16);
        let add2 = overhead_1pim(PimDesign::Add2, 32, 16);
        assert!(add2 < 0.04);
        assert!(add2 < full / 2.0);
    }

    #[test]
    fn pim_wire_saves_domains() {
        // The two-port TR geometry uses fewer overhead domains than the
        // single-port baseline, partially offsetting the port cost.
        let pim = NanowireSpec::coruscant(32, 7).total_domains;
        let base = NanowireSpec::single_port(32).total_domains;
        assert!(pim < base, "pim {pim} vs base {base}");
    }

    #[test]
    fn more_pim_tiles_scale_overhead_linearly() {
        let one = overhead_1pim(PimDesign::MulAdd5Bbo, 32, 16);
        let two = overhead_1pim(PimDesign::MulAdd5Bbo, 32, 8); // denser PIM
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unit_areas_present_for_table3_rows() {
        for e in crate::cost_model::TABLE3_CORUSCANT {
            assert_eq!(unit_area_um2(e.unit), Some(e.area_um2));
        }
        assert_eq!(unit_area_um2("unknown"), None);
    }

    #[test]
    fn interpolated_adder_logic_monotone() {
        assert!(adder_logic_f2(3) < adder_logic_f2(5));
        assert!(adder_logic_f2(5) < adder_logic_f2(7));
        // Unusual TRD interpolates between the calibrated points.
        let a4 = adder_logic_f2(4);
        assert!(a4 > adder_logic_f2(3) && a4 < adder_logic_f2(5));
    }
}
