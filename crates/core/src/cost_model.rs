//! Closed-form and measured operation costs (paper Table III).
//!
//! The cycle counts of CORUSCANT operations follow directly from the
//! micro-operation recipes of §III (see [`crate::add`] and
//! [`crate::mult`]); this module provides:
//!
//! * closed-form formulas for addition, derived in §V-B: an `n`-bit
//!   `k`-operand add costs `setup + 2n` cycles, where setup is one write
//!   plus one shift per operand slot;
//! * **measured** costs for every operation, obtained by running the
//!   functional simulators on a scratch DBC — a single source of truth
//!   that keeps the analytic tables and the functional machine consistent;
//! * the paper's reported Table III values for comparison.

use crate::add::MultiOperandAdder;
use crate::bulk::{BulkExecutor, BulkOp};
use crate::maxpool::MaxExecutor;
use crate::mult::{MultStrategy, Multiplier};
use crate::Result;
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::{Cost, CostMeter};
use serde::Serialize;

/// Closed-form cycle count of an `n`-bit multi-operand addition at a given
/// TRD: operand placement plus a 2-cycle TR/write step per bit.
pub fn add_cycles(trd: usize, bits: usize) -> u64 {
    let setup = if trd >= 4 {
        2 * (trd - 2) as u64 // k writes + k shifts for k = TRD - 2 operands
    } else {
        3 // 2 writes + 1 shift at TRD = 3
    };
    setup + 2 * bits as u64
}

/// Closed-form energy (pJ) of an `n`-bit multi-operand addition for a
/// single `n`-wire processing unit, using the calibrated
/// [`coruscant_racetrack::params::EnergyParams`].
pub fn add_energy_pj(trd: usize, bits: usize) -> f64 {
    let e = coruscant_racetrack::params::EnergyParams::PAPER;
    let n = bits as f64;
    let (k, writes_per_step) = if trd >= 4 {
        ((trd - 2) as f64, 3.0)
    } else {
        ((trd - 1) as f64, 2.0)
    };
    let shifts = if trd >= 4 { k } else { k - 1.0 };
    n * k * e.write
        + n * shifts * e.shift_per_step
        + n * (e.transverse_read(trd) + writes_per_step * e.write)
}

/// Measured costs of the CORUSCANT operation set at one TRD, produced by
/// running the functional simulators (8-bit operands, as Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MeasuredCosts {
    /// Transverse-read distance.
    pub trd: usize,
    /// Two-operand 8-bit addition.
    pub add2: Cost,
    /// Maximum-operand (TRD − 2) 8-bit addition.
    pub add_max: Cost,
    /// Two-operand 8-bit multiplication (carry-save strategy).
    pub mult: Cost,
    /// Two-operand 8-bit multiplication (repeated-addition strategy).
    pub mult_arbitrary: Cost,
    /// Seven-operand (or TRD-operand) bulk-bitwise operation.
    pub bulk: Cost,
    /// Max over TRD 8-bit words (with transverse writes).
    pub max: Cost,
}

impl MeasuredCosts {
    /// Runs the functional simulators at `trd` and records their costs.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (none are expected for the supported
    /// TRD values 3, 5, 7).
    pub fn measure(trd: usize) -> Result<MeasuredCosts> {
        // Table III compares single processing units: an 8-bit adder is an
        // 8-wire slice, an 8-bit multiplier a 16-wire slice (double-width
        // product lane). Cycle counts are width-independent; energies are
        // per-unit at these widths.
        let mut add_config = MemoryConfig::tiny().with_trd(trd);
        add_config.nanowires_per_dbc = 8;
        let mut mul_config = MemoryConfig::tiny().with_trd(trd);
        mul_config.nanowires_per_dbc = 16;
        let max_ops = add_config.max_add_operands();

        let row8 = |v: u64| Row::pack(8, 8, &[v]);
        let row16 = |v: u64| Row::pack(16, 16, &[v]);

        // 2-operand add.
        let mut dbc = Dbc::pim_enabled(&add_config);
        let adder = MultiOperandAdder::new(&add_config);
        let mut m = CostMeter::new();
        adder.add_rows(&mut dbc, &[row8(201), row8(99)], 8, &mut m)?;
        let add2 = m.total();

        // Max-operand add.
        let mut dbc = Dbc::pim_enabled(&add_config);
        let ops: Vec<Row> = (1..=max_ops as u64).map(row8).collect();
        let mut m = CostMeter::new();
        if ops.len() >= 2 {
            adder.add_rows(&mut dbc, &ops, 8, &mut m)?;
        }
        let add_max = m.total();

        // Multiplications (8-bit operands in 16-bit lanes).
        let mut dbc = Dbc::pim_enabled(&mul_config);
        let mult = Multiplier::new(&mul_config);
        let mut m = CostMeter::new();
        mult.multiply_packed(&mut dbc, &row16(173), &row16(219), 8, &mut m)?;
        let mult_cost = m.total();

        let mut dbc = Dbc::pim_enabled(&mul_config);
        let mult_arb = Multiplier::new(&mul_config).with_strategy(MultStrategy::Arbitrary);
        let mut m = CostMeter::new();
        mult_arb.multiply_packed(&mut dbc, &row16(173), &row16(219), 8, &mut m)?;
        let mult_arbitrary = m.total();

        // Bulk-bitwise over the full segment (8-bit unit).
        let mut dbc = Dbc::pim_enabled(&add_config);
        let exec = BulkExecutor::new(&add_config);
        let operands: Vec<Row> = (0..trd as u64).map(|k| row8(k * 17)).collect();
        let mut m = CostMeter::new();
        exec.execute(&mut dbc, BulkOp::Or, &operands, &mut m)?;
        let bulk = m.total();

        // Max over TRD 8-bit words.
        let mut dbc = Dbc::pim_enabled(&add_config);
        let maxe = MaxExecutor::new(&add_config);
        let cands: Vec<Row> = (0..trd as u64).map(|k| row8(k * 31)).collect();
        let mut m = CostMeter::new();
        maxe.max_rows(&mut dbc, &cands, 8, &mut m)?;
        let max = m.total();

        Ok(MeasuredCosts {
            trd,
            add2,
            add_max,
            mult: mult_cost,
            mult_arbitrary,
            bulk,
            max,
        })
    }
}

/// One row of the paper's Table III (speed in cycles, energy in pJ, area
/// in µm² at 32 nm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Table3Entry {
    /// Operation label.
    pub unit: &'static str,
    /// Latency in device cycles.
    pub cycles: u64,
    /// Energy in pJ.
    pub energy_pj: f64,
    /// Area in µm².
    pub area_um2: f64,
}

/// The paper's reported CORUSCANT column of Table III.
pub const TABLE3_CORUSCANT: [Table3Entry; 5] = [
    Table3Entry {
        unit: "2op add (TR=3)",
        cycles: 19,
        energy_pj: 10.15,
        area_um2: 2.16,
    },
    Table3Entry {
        unit: "2op add (TR=7)",
        cycles: 26,
        energy_pj: 22.14,
        area_um2: 3.60,
    },
    Table3Entry {
        unit: "5op add (TR=7)",
        cycles: 26,
        energy_pj: 22.14,
        area_um2: 4.94,
    },
    Table3Entry {
        unit: "mult (TR=3)",
        cycles: 105,
        energy_pj: 92.01,
        area_um2: 3.80,
    },
    Table3Entry {
        unit: "mult (TR=7)",
        cycles: 64,
        energy_pj: 57.39,
        area_um2: 5.07,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_add_matches_table3() {
        assert_eq!(add_cycles(3, 8), 19);
        assert_eq!(add_cycles(7, 8), 26);
        assert!((add_energy_pj(3, 8) - 10.15).abs() < 0.01);
        assert!((add_energy_pj(7, 8) - 22.14).abs() < 0.01);
    }

    #[test]
    fn measured_add_matches_closed_form() {
        for trd in [3usize, 5, 7] {
            let mc = MeasuredCosts::measure(trd).unwrap();
            if trd >= 4 {
                assert_eq!(mc.add_max.cycles, add_cycles(trd, 8), "trd {trd}");
            } else {
                assert_eq!(mc.add2.cycles, add_cycles(trd, 8));
            }
        }
    }

    #[test]
    fn measured_mult_shape_matches_table3() {
        // We do not require exact agreement with the paper's 105/64 cycle
        // counts (scheduling details differ) but the shape must hold:
        // TRD = 7 multiplication is substantially faster than TRD = 3, and
        // both are within 2x of the paper's values.
        let m3 = MeasuredCosts::measure(3).unwrap();
        let m7 = MeasuredCosts::measure(7).unwrap();
        assert!(m7.mult.cycles < m3.mult.cycles);
        let ratio = m3.mult.cycles as f64 / m7.mult.cycles as f64;
        assert!(ratio > 1.2, "TRD-7 speedup ratio {ratio}");
        assert!(
            (m7.mult.cycles as f64) < 2.0 * 64.0 && (m7.mult.cycles as f64) > 0.5 * 64.0,
            "TR7 mult {} vs paper 64",
            m7.mult.cycles
        );
        assert!(
            (m3.mult.cycles as f64) < 2.0 * 105.0 && (m3.mult.cycles as f64) > 0.5 * 105.0,
            "TR3 mult {} vs paper 105",
            m3.mult.cycles
        );
    }

    #[test]
    fn csa_beats_arbitrary_in_measured_costs() {
        let m7 = MeasuredCosts::measure(7).unwrap();
        assert!(m7.mult.cycles < m7.mult_arbitrary.cycles);
    }

    #[test]
    fn bulk_is_single_tr_after_placement() {
        let m7 = MeasuredCosts::measure(7).unwrap();
        // 7 writes + 6 shifts + 1 TR.
        assert_eq!(m7.bulk.cycles, 14);
    }

    #[test]
    fn energy_grows_with_trd_for_add() {
        assert!(add_energy_pj(3, 8) < add_energy_pj(5, 8));
        assert!(add_energy_pj(5, 8) < add_energy_pj(7, 8));
    }

    #[test]
    fn paper_table_entries_consistent() {
        assert_eq!(TABLE3_CORUSCANT.len(), 5);
        assert!(TABLE3_CORUSCANT.iter().all(|e| e.cycles > 0));
    }
}
