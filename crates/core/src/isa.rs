//! The `cpim` instruction set (paper §III-E).
//!
//! CORUSCANT reserves part of the physical address space for PIM and adds
//! one instruction family, `cpim op, src, blocksize`, that the CPU hands
//! to the memory controller. `src` names the DBC and the row to align to
//! the leftmost access port, `op` selects the PIM-block output multiplexer,
//! and `blocksize` programs the carry-chain masking for packed arithmetic.
//!
//! This module defines the instruction, its operand validation, and a
//! compact 64-bit binary encoding so traces can be stored and replayed.

use crate::{PimError, Result};
use coruscant_mem::{DbcLocation, RowAddress};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation field of a `cpim` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CpimOpcode {
    /// Multi-operand AND.
    And = 0,
    /// Multi-operand NAND.
    Nand = 1,
    /// Multi-operand OR.
    Or = 2,
    /// Multi-operand NOR.
    Nor = 3,
    /// Multi-operand XOR.
    Xor = 4,
    /// Multi-operand XNOR.
    Xnor = 5,
    /// Bitwise NOT.
    Not = 6,
    /// Multi-operand addition.
    Add = 7,
    /// Carry-save 7→3 (or 3→2) reduction.
    Reduce = 8,
    /// Two-operand multiplication.
    Mult = 9,
    /// Max across operand words.
    Max = 10,
    /// ReLU (predicated row refresh on the lane MSB).
    Relu = 11,
    /// Majority vote over replicated results (N = operand count).
    Vote = 12,
    /// Row copy through the row-buffer hierarchy.
    Copy = 13,
    /// Two-operand subtraction (two's complement via the NOT path).
    Sub = 14,
    /// Min across operand words (inverted max).
    Min = 15,
}

impl CpimOpcode {
    /// Decodes an opcode field.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadInstruction`] for unknown values.
    pub fn from_bits(v: u8) -> Result<CpimOpcode> {
        use CpimOpcode::*;
        Ok(match v {
            0 => And,
            1 => Nand,
            2 => Or,
            3 => Nor,
            4 => Xor,
            5 => Xnor,
            6 => Not,
            7 => Add,
            8 => Reduce,
            9 => Mult,
            10 => Max,
            11 => Relu,
            12 => Vote,
            13 => Copy,
            14 => Sub,
            15 => Min,
            other => return Err(PimError::BadInstruction(format!("opcode {other}"))),
        })
    }
}

impl fmt::Display for CpimOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CpimOpcode::And => "and",
            CpimOpcode::Nand => "nand",
            CpimOpcode::Or => "or",
            CpimOpcode::Nor => "nor",
            CpimOpcode::Xor => "xor",
            CpimOpcode::Xnor => "xnor",
            CpimOpcode::Not => "not",
            CpimOpcode::Add => "add",
            CpimOpcode::Reduce => "reduce",
            CpimOpcode::Mult => "mult",
            CpimOpcode::Max => "max",
            CpimOpcode::Relu => "relu",
            CpimOpcode::Vote => "vote",
            CpimOpcode::Copy => "copy",
            CpimOpcode::Sub => "sub",
            CpimOpcode::Min => "min",
        };
        write!(f, "cpim.{s}")
    }
}

/// A validated block size: a power of two in `8..=512` (paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockSize(u16);

impl BlockSize {
    /// Creates a block size.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadBlockSize`] unless `v` is a power of two in
    /// `8..=512`.
    pub fn new(v: usize) -> Result<BlockSize> {
        if v.is_power_of_two() && (8..=512).contains(&v) {
            Ok(BlockSize(v as u16))
        } else {
            Err(PimError::BadBlockSize(v))
        }
    }

    /// The width in bits.
    pub fn bits(self) -> usize {
        self.0 as usize
    }

    /// Encodes as `log2(bits) - 3` (0..=6).
    fn to_field(self) -> u64 {
        (self.0.trailing_zeros() - 3) as u64
    }

    fn from_field(f: u64) -> Result<BlockSize> {
        if f > 6 {
            return Err(PimError::BadInstruction(format!("blocksize field {f}")));
        }
        BlockSize::new(1usize << (f + 3))
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// One `cpim` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpimInstr {
    /// The operation.
    pub opcode: CpimOpcode,
    /// Source: the DBC and the row aligned to the leftmost access port;
    /// operands occupy consecutive rows from here.
    pub src: RowAddress,
    /// Operand count (1..=7; interpretation depends on the opcode).
    pub operands: u8,
    /// Block size for packed arithmetic / predication.
    pub blocksize: BlockSize,
    /// Optional destination row (result write-back or copy target).
    pub dst: Option<RowAddress>,
}

impl CpimInstr {
    /// Creates an instruction with validation.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadInstruction`] for a zero or >7 operand
    /// count.
    pub fn new(
        opcode: CpimOpcode,
        src: RowAddress,
        operands: u8,
        blocksize: BlockSize,
        dst: Option<RowAddress>,
    ) -> Result<CpimInstr> {
        if operands == 0 || operands > 7 {
            return Err(PimError::BadInstruction(format!(
                "operand count {operands}"
            )));
        }
        Ok(CpimInstr {
            opcode,
            src,
            operands,
            blocksize,
            dst,
        })
    }

    /// The bank this instruction occupies while it executes (schedulers
    /// key their per-bank FIFOs on this).
    pub fn target_bank(&self) -> usize {
        self.src.location.bank
    }

    /// Coarse planning estimate of the internal operation latency in
    /// device cycles at transverse-read distance `trd`, following the
    /// paper's Table III anchors (2/5-op add = 19 cycles at TRD 3, 26 at
    /// TRD 7; mult = 105 / 64). Schedulers use this to order issue before
    /// the exact cost is known; functional execution reports the exact
    /// cost afterwards.
    pub fn estimated_device_cycles(&self, trd: usize) -> u64 {
        let add = crate::cost_model::add_cycles(trd, self.blocksize.bits().min(64));
        match self.opcode {
            // One transverse read resolves the whole operand stack, plus
            // the sense/write-back step.
            CpimOpcode::And
            | CpimOpcode::Nand
            | CpimOpcode::Or
            | CpimOpcode::Nor
            | CpimOpcode::Xor
            | CpimOpcode::Xnor
            | CpimOpcode::Not => 3,
            CpimOpcode::Add | CpimOpcode::Reduce => add,
            CpimOpcode::Sub => add + 2,
            CpimOpcode::Mult => {
                if trd >= 7 {
                    64
                } else {
                    105
                }
            }
            // Bit-serial scans walk the block width.
            CpimOpcode::Max | CpimOpcode::Min => self.blocksize.bits() as u64 + 2,
            CpimOpcode::Relu => 2,
            CpimOpcode::Vote => 3,
            CpimOpcode::Copy => 4,
        }
    }

    fn encode_addr(a: RowAddress) -> u64 {
        // bank:5 | subarray:6 | tile:4 | dbc:4 | row:5 = 24 bits.
        ((a.location.bank as u64) << 19)
            | ((a.location.subarray as u64) << 13)
            | ((a.location.tile as u64) << 9)
            | ((a.location.dbc as u64) << 5)
            | a.row as u64
    }

    fn decode_addr(v: u64) -> RowAddress {
        RowAddress::new(
            DbcLocation::new(
                (v >> 19 & 0x1F) as usize,
                (v >> 13 & 0x3F) as usize,
                (v >> 9 & 0xF) as usize,
                (v >> 5 & 0xF) as usize,
            ),
            (v & 0x1F) as usize,
        )
    }

    /// Packs the instruction into 64 bits:
    /// `opcode:4 | operands:3 | blocksize:3 | dst_valid:1 | src:24 | dst:24`.
    pub fn encode(&self) -> u64 {
        let mut v = (self.opcode as u64) << 55;
        v |= u64::from(self.operands) << 52;
        v |= self.blocksize.to_field() << 49;
        v |= u64::from(self.dst.is_some()) << 48;
        v |= Self::encode_addr(self.src) << 24;
        if let Some(d) = self.dst {
            v |= Self::encode_addr(d);
        }
        v
    }

    /// Unpacks a 64-bit encoding.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadInstruction`] for unknown opcode or field
    /// values.
    pub fn decode(v: u64) -> Result<CpimInstr> {
        let opcode = CpimOpcode::from_bits((v >> 55 & 0xF) as u8)?;
        let operands = (v >> 52 & 0x7) as u8;
        let blocksize = BlockSize::from_field(v >> 49 & 0x7)?;
        let dst_valid = v >> 48 & 1 == 1;
        let src = Self::decode_addr(v >> 24 & 0xFF_FFFF);
        let dst = dst_valid.then(|| Self::decode_addr(v & 0xFF_FFFF));
        CpimInstr::new(opcode, src, operands, blocksize, dst)
    }
}

impl fmt::Display for CpimInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} x{} {}",
            self.opcode, self.src, self.operands, self.blocksize
        )?;
        if let Some(d) = self.dst {
            write!(f, " -> {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(bank: usize, row: usize) -> RowAddress {
        RowAddress::new(DbcLocation::new(bank, 7, 3, 0), row)
    }

    #[test]
    fn blocksize_validation() {
        for good in [8usize, 16, 32, 64, 128, 256, 512] {
            assert_eq!(BlockSize::new(good).unwrap().bits(), good);
        }
        for bad in [0usize, 1, 4, 7, 24, 1024] {
            assert!(BlockSize::new(bad).is_err(), "blocksize {bad}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            CpimInstr::new(
                CpimOpcode::Add,
                addr(5, 12),
                5,
                BlockSize::new(8).unwrap(),
                None,
            )
            .unwrap(),
            CpimInstr::new(
                CpimOpcode::Mult,
                addr(31, 31),
                2,
                BlockSize::new(512).unwrap(),
                Some(addr(0, 0)),
            )
            .unwrap(),
            CpimInstr::new(
                CpimOpcode::Xor,
                addr(0, 0),
                7,
                BlockSize::new(64).unwrap(),
                Some(addr(17, 9)),
            )
            .unwrap(),
        ];
        for instr in cases {
            let enc = instr.encode();
            let dec = CpimInstr::decode(enc).unwrap();
            assert_eq!(dec, instr);
        }
    }

    #[test]
    fn operand_count_validated() {
        assert!(CpimInstr::new(
            CpimOpcode::Or,
            addr(0, 0),
            0,
            BlockSize::new(8).unwrap(),
            None
        )
        .is_err());
        assert!(CpimInstr::new(
            CpimOpcode::Or,
            addr(0, 0),
            8,
            BlockSize::new(8).unwrap(),
            None
        )
        .is_err());
    }

    #[test]
    fn bad_encodings_rejected() {
        // Opcode 16 does not fit the 4-bit field; 255 is out of range.
        assert!(CpimOpcode::from_bits(16).is_err());
        assert!(CpimOpcode::from_bits(255).is_err());
    }

    #[test]
    fn opcode_roundtrip() {
        for v in 0..=15u8 {
            let op = CpimOpcode::from_bits(v).unwrap();
            assert_eq!(op as u8, v);
        }
    }

    #[test]
    fn display_forms() {
        let i = CpimInstr::new(
            CpimOpcode::Add,
            addr(1, 2),
            5,
            BlockSize::new(8).unwrap(),
            Some(addr(2, 3)),
        )
        .unwrap();
        let s = i.to_string();
        assert!(s.contains("cpim.add"));
        assert!(s.contains("->"));
        assert!(s.contains("b8"));
    }
}
