//! Executes `cpim` instructions against the memory system.
//!
//! The [`PimMachine`] plays the memory controller's role from §III-E: it
//! decodes a [`CpimInstr`], gathers the operand rows from the target DBC,
//! runs the corresponding PIM algorithm functionally (charging device
//! cycles and energy), accounts the operation's bank occupancy in the
//! command-level controller, and optionally writes the result back.

use crate::add::MultiOperandAdder;
use crate::bulk::{BulkExecutor, BulkOp};
use crate::isa::{CpimInstr, CpimOpcode};
use crate::maxpool::MaxExecutor;
use crate::mult::{CsaReducer, Multiplier};
use crate::nmr::NmrVoter;
use crate::relu::relu_row;
use crate::{PimError, Result};
use coruscant_mem::controller::Request;
use coruscant_mem::{MemoryConfig, MemoryController, Row};
use coruscant_racetrack::{Cost, CostMeter};

/// The outcome of executing one instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// The produced row, if the operation yields one.
    pub result: Option<Row>,
    /// Device-level cost of the operation.
    pub cost: Cost,
    /// Completion time at the memory controller, in memory cycles.
    pub completion: u64,
}

/// A memory system with CORUSCANT PIM execution.
#[derive(Debug)]
pub struct PimMachine {
    ctrl: MemoryController,
}

impl PimMachine {
    /// Creates a machine over a fresh DWM memory.
    pub fn new(config: MemoryConfig) -> PimMachine {
        PimMachine {
            ctrl: MemoryController::new(config),
        }
    }

    /// Creates a machine whose memory runs under seeded, per-bank fault
    /// injection (see [`coruscant_mem::FaultPlan`]): every DBC the
    /// machine touches materializes with fault injectors attached, so
    /// whole programs execute under the paper's §V-F fault model.
    pub fn with_faults(config: MemoryConfig, plan: coruscant_mem::FaultPlan) -> PimMachine {
        PimMachine {
            ctrl: MemoryController::with_faults(config, plan),
        }
    }

    /// Wraps an existing controller.
    pub fn from_controller(ctrl: MemoryController) -> PimMachine {
        PimMachine { ctrl }
    }

    /// The underlying controller.
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Mutable access to the underlying controller (loading data, reading
    /// results, submitting plain requests).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.ctrl
    }

    /// Executes one `cpim` instruction.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::NotPim`] when the source DBC lacks PIM
    /// capability, instruction-validation errors, or memory errors.
    pub fn execute(&mut self, instr: &CpimInstr) -> Result<ExecOutcome> {
        let config = self.ctrl.config().clone();
        instr
            .src
            .location
            .validate(&config)
            .map_err(PimError::from)?;
        if instr.opcode != CpimOpcode::Copy && !instr.src.location.is_pim(&config) {
            return Err(PimError::NotPim);
        }

        let mut meter = CostMeter::new();
        let k = instr.operands as usize;
        let base = instr.src.row;
        let bs = instr.blocksize.bits().min(config.nanowires_per_dbc);

        let result: Option<Row> = match instr.opcode {
            CpimOpcode::And
            | CpimOpcode::Nand
            | CpimOpcode::Or
            | CpimOpcode::Nor
            | CpimOpcode::Xor
            | CpimOpcode::Xnor
            | CpimOpcode::Not => {
                let op = match instr.opcode {
                    CpimOpcode::And => BulkOp::And,
                    CpimOpcode::Nand => BulkOp::Nand,
                    CpimOpcode::Or => BulkOp::Or,
                    CpimOpcode::Nor => BulkOp::Nor,
                    CpimOpcode::Xor => BulkOp::Xor,
                    CpimOpcode::Xnor => BulkOp::Xnor,
                    _ => BulkOp::Not,
                };
                let operands = self.gather(instr, k, &mut meter)?;
                let exec = BulkExecutor::new(&config);
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                Some(exec.execute(dbc, op, &operands, &mut meter)?)
            }
            CpimOpcode::Add => {
                let operands = self.gather(instr, k, &mut meter)?;
                let adder = MultiOperandAdder::new(&config);
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                Some(adder.add_rows(dbc, &operands, bs, &mut meter)?)
            }
            CpimOpcode::Reduce => {
                let reducer = CsaReducer::new(config.trd);
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                let out = reducer.reduce(dbc, base.max(1), k, bs, &mut meter)?;
                Some(dbc.peek_row(out.s)?)
            }
            CpimOpcode::Mult => {
                if k != 2 {
                    return Err(PimError::BadInstruction(format!(
                        "mult needs 2 operands, got {k}"
                    )));
                }
                let operands = self.gather(instr, 2, &mut meter)?;
                let mult = Multiplier::new(&config);
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                Some(mult.multiply_packed(dbc, &operands[0], &operands[1], bs / 2, &mut meter)?)
            }
            CpimOpcode::Max => {
                let operands = self.gather(instr, k, &mut meter)?;
                let max = MaxExecutor::new(&config);
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                Some(max.max_rows(dbc, &operands, bs, &mut meter)?)
            }
            CpimOpcode::Relu => {
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                Some(relu_row(dbc, base, bs, &mut meter)?)
            }
            CpimOpcode::Vote => {
                let operands = self.gather(instr, k, &mut meter)?;
                let voter = NmrVoter::new(&config);
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                Some(voter.vote_rows(dbc, &operands, &mut meter)?)
            }
            CpimOpcode::Sub => {
                if k != 2 {
                    return Err(PimError::BadInstruction(format!(
                        "sub needs 2 operands, got {k}"
                    )));
                }
                let operands = self.gather(instr, 2, &mut meter)?;
                let unit = crate::arith::ArithmeticUnit::new(&config);
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                Some(unit.subtract(dbc, &operands[0], &operands[1], bs, &mut meter)?)
            }
            CpimOpcode::Min => {
                let operands = self.gather(instr, k, &mut meter)?;
                let unit = crate::arith::ArithmeticUnit::new(&config);
                let dbc = self.ctrl.dbc_mut(instr.src.location)?;
                Some(unit.min_rows(dbc, &operands, bs, &mut meter)?)
            }
            CpimOpcode::Copy => {
                let dst = instr
                    .dst
                    .ok_or_else(|| PimError::BadInstruction("copy needs a destination".into()))?;
                coruscant_mem::transfer::copy_row(&mut self.ctrl, instr.src, dst, &mut meter)?;
                None
            }
        };

        // Write back if a destination was named (and the op produced data).
        if let (Some(dst), Some(data)) = (instr.dst, result.as_ref()) {
            if instr.opcode != CpimOpcode::Copy {
                self.ctrl.store_row(dst, data, &mut meter)?;
            }
        }

        let cost = meter.total();
        let completion = self
            .ctrl
            .submit(Request::Pim {
                location: instr.src.location,
                device_cycles: cost.cycles,
                energy_pj: cost.energy_pj,
            })
            .map_err(PimError::from)?;

        Ok(ExecOutcome {
            result,
            cost,
            completion,
        })
    }

    /// Reads the `k` operand rows starting at the instruction's source.
    fn gather(&mut self, instr: &CpimInstr, k: usize, meter: &mut CostMeter) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let dbc = self.ctrl.dbc_mut(instr.src.location)?;
            out.push(dbc.read_row(instr.src.row + i, meter)?);
        }
        Ok(out)
    }

    /// Executes a batch of instructions in the *high-throughput* dispatch
    /// style (paper §V-C): each instruction's bank occupancy is accounted
    /// by the controller, so operations targeting different banks overlap
    /// while same-bank operations queue. Returns the per-instruction
    /// outcomes plus the batch completion time (the max completion).
    ///
    /// # Errors
    ///
    /// Stops at the first failing instruction and returns its error.
    pub fn execute_batch(&mut self, instrs: &[CpimInstr]) -> Result<(Vec<ExecOutcome>, u64)> {
        let mut outcomes = Vec::with_capacity(instrs.len());
        let mut finish = 0;
        for instr in instrs {
            let out = self.execute(instr)?;
            finish = finish.max(out.completion);
            outcomes.push(out);
        }
        Ok((outcomes, finish))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::BlockSize;
    use coruscant_mem::{DbcLocation, RowAddress};

    fn machine() -> PimMachine {
        PimMachine::new(MemoryConfig::tiny())
    }

    fn pim_addr(row: usize) -> RowAddress {
        RowAddress::new(DbcLocation::new(0, 0, 0, 0), row)
    }

    fn load(m: &mut PimMachine, row: usize, values: &[u64], bs: usize) {
        let data = Row::pack(64, bs, values);
        let mut meter = CostMeter::new();
        m.controller_mut()
            .store_row(pim_addr(row), &data, &mut meter)
            .unwrap();
    }

    #[test]
    fn add_instruction_end_to_end() {
        let mut m = machine();
        for (i, v) in [[10u64; 8], [20; 8], [30; 8]].iter().enumerate() {
            load(&mut m, 8 + i, v, 8);
        }
        let instr = CpimInstr::new(
            CpimOpcode::Add,
            pim_addr(8),
            3,
            BlockSize::new(8).unwrap(),
            Some(pim_addr(20)),
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        let result = out.result.unwrap();
        assert_eq!(result.unpack(8), vec![60; 8]);
        assert!(out.cost.cycles > 0);
        assert!(out.completion > 0);
        // Written back to the destination row.
        let mut meter = CostMeter::new();
        let stored = m
            .controller_mut()
            .load_row(pim_addr(20), &mut meter)
            .unwrap();
        assert_eq!(stored.unpack(8), vec![60; 8]);
    }

    #[test]
    fn bulk_and_instruction() {
        let mut m = machine();
        load(&mut m, 5, &[0xFF, 0xF0, 0x0F, 0xAA, 0, 0, 0, 0], 8);
        load(&mut m, 6, &[0x0F, 0xF0, 0xFF, 0x55, 0, 0, 0, 0], 8);
        let instr = CpimInstr::new(
            CpimOpcode::And,
            pim_addr(5),
            2,
            BlockSize::new(8).unwrap(),
            None,
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        assert_eq!(
            out.result.unwrap().unpack(8),
            vec![0x0F, 0xF0, 0x0F, 0x00, 0, 0, 0, 0]
        );
    }

    #[test]
    fn mult_instruction() {
        let mut m = machine();
        load(&mut m, 8, &[7, 250, 3, 0], 16);
        load(&mut m, 9, &[6, 250, 99, 1], 16);
        let instr = CpimInstr::new(
            CpimOpcode::Mult,
            pim_addr(8),
            2,
            BlockSize::new(16).unwrap(),
            None,
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        assert_eq!(out.result.unwrap().unpack(16), vec![42, 62500, 297, 0]);
    }

    #[test]
    fn max_instruction() {
        let mut m = machine();
        load(&mut m, 10, &[9, 1, 200, 0, 0, 0, 0, 0], 8);
        load(&mut m, 11, &[8, 250, 100, 0, 0, 0, 0, 0], 8);
        let instr = CpimInstr::new(
            CpimOpcode::Max,
            pim_addr(10),
            2,
            BlockSize::new(8).unwrap(),
            None,
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        let r = out.result.unwrap().unpack(8);
        assert_eq!(&r[..3], &[9, 250, 200]);
    }

    #[test]
    fn vote_instruction() {
        let mut m = machine();
        load(&mut m, 3, &[0xAB; 8], 8);
        load(&mut m, 4, &[0xAB; 8], 8);
        load(&mut m, 5, &[0xAA; 8], 8);
        let instr = CpimInstr::new(
            CpimOpcode::Vote,
            pim_addr(3),
            3,
            BlockSize::new(8).unwrap(),
            None,
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        assert_eq!(out.result.unwrap().unpack(8), vec![0xAB; 8]);
    }

    #[test]
    fn copy_instruction_to_storage_dbc() {
        let mut m = machine();
        load(&mut m, 2, &[0x77; 8], 8);
        let dst = RowAddress::new(DbcLocation::new(0, 0, 0, 1), 9);
        let instr = CpimInstr::new(
            CpimOpcode::Copy,
            pim_addr(2),
            1,
            BlockSize::new(8).unwrap(),
            Some(dst),
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        assert!(out.result.is_none());
        let mut meter = CostMeter::new();
        assert_eq!(
            m.controller_mut()
                .load_row(dst, &mut meter)
                .unwrap()
                .unpack(8),
            vec![0x77; 8]
        );
    }

    #[test]
    fn pim_on_storage_dbc_rejected() {
        let mut m = machine();
        let storage = RowAddress::new(DbcLocation::new(0, 0, 0, 2), 0);
        let instr =
            CpimInstr::new(CpimOpcode::Or, storage, 2, BlockSize::new(8).unwrap(), None).unwrap();
        assert!(matches!(m.execute(&instr), Err(PimError::NotPim)));
    }

    #[test]
    fn copy_without_destination_rejected() {
        let mut m = machine();
        let instr = CpimInstr::new(
            CpimOpcode::Copy,
            pim_addr(0),
            1,
            BlockSize::new(8).unwrap(),
            None,
        )
        .unwrap();
        assert!(matches!(
            m.execute(&instr),
            Err(PimError::BadInstruction(_))
        ));
    }

    #[test]
    fn batch_overlaps_across_banks() {
        // The same add issued to PIM DBCs in different banks overlaps;
        // issued twice to the same bank it queues.
        let mut m = machine();
        let mut meter = CostMeter::new();
        let mk_addr =
            |bank: usize, row: usize| RowAddress::new(DbcLocation::new(bank, 0, 0, 0), row);
        for bank in 0..2 {
            for (i, v) in [[7u64; 8], [9; 8]].iter().enumerate() {
                m.controller_mut()
                    .store_row(mk_addr(bank, 4 + i), &Row::pack(64, 8, v), &mut meter)
                    .unwrap();
            }
        }
        let cross_bank: Vec<CpimInstr> = (0..2)
            .map(|bank| {
                CpimInstr::new(
                    CpimOpcode::Add,
                    mk_addr(bank, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    None,
                )
                .unwrap()
            })
            .collect();
        let (outs, finish_parallel) = m.execute_batch(&cross_bank).unwrap();
        assert!(outs
            .iter()
            .all(|o| o.result.as_ref().unwrap().unpack(8) == vec![16; 8]));

        // Same-bank pair on a fresh machine.
        let mut m2 = machine();
        let mut meter = CostMeter::new();
        for (i, v) in [[7u64; 8], [9; 8], [7; 8], [9; 8]].iter().enumerate() {
            m2.controller_mut()
                .store_row(mk_addr(0, 4 + i), &Row::pack(64, 8, v), &mut meter)
                .unwrap();
        }
        let same_bank = [
            CpimInstr::new(
                CpimOpcode::Add,
                mk_addr(0, 4),
                2,
                BlockSize::new(8).unwrap(),
                None,
            )
            .unwrap(),
            CpimInstr::new(
                CpimOpcode::Add,
                mk_addr(0, 6),
                2,
                BlockSize::new(8).unwrap(),
                None,
            )
            .unwrap(),
        ];
        let (_, finish_serial) = m2.execute_batch(&same_bank).unwrap();
        assert!(
            finish_serial > finish_parallel,
            "same-bank {finish_serial} vs cross-bank {finish_parallel}"
        );
    }

    #[test]
    fn sub_instruction() {
        let mut m = machine();
        load(&mut m, 8, &[100, 5, 0, 200, 1, 2, 3, 4], 8);
        load(&mut m, 9, &[55, 9, 1, 100, 1, 2, 3, 4], 8);
        let instr = CpimInstr::new(
            CpimOpcode::Sub,
            pim_addr(8),
            2,
            BlockSize::new(8).unwrap(),
            None,
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        assert_eq!(
            out.result.unwrap().unpack(8),
            vec![45, 252, 255, 100, 0, 0, 0, 0],
            "two's complement per lane"
        );
    }

    #[test]
    fn min_instruction() {
        let mut m = machine();
        load(&mut m, 12, &[9, 250, 7, 0, 0, 0, 0, 0], 8);
        load(&mut m, 13, &[8, 251, 7, 1, 0, 0, 0, 0], 8);
        load(&mut m, 14, &[10, 249, 6, 2, 0, 0, 0, 0], 8);
        let instr = CpimInstr::new(
            CpimOpcode::Min,
            pim_addr(12),
            3,
            BlockSize::new(8).unwrap(),
            None,
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        let r = out.result.unwrap().unpack(8);
        assert_eq!(&r[..4], &[8, 249, 6, 0]);
    }

    #[test]
    fn faulty_machine_corrupts_results_reproducibly() {
        use coruscant_mem::FaultPlan;
        use coruscant_racetrack::FaultConfig;
        let run = |plan: Option<FaultPlan>| {
            let mut m = match plan {
                Some(p) => PimMachine::with_faults(MemoryConfig::tiny(), p),
                None => machine(),
            };
            load(&mut m, 4, &[0x35; 8], 8);
            load(&mut m, 5, &[0x12; 8], 8);
            let instr = CpimInstr::new(
                CpimOpcode::Add,
                pim_addr(4),
                2,
                BlockSize::new(8).unwrap(),
                Some(pim_addr(20)),
            )
            .unwrap();
            m.execute(&instr).unwrap().result.unwrap().unpack(8)
        };
        let clean = run(None);
        assert_eq!(clean, vec![0x47; 8]);
        let storm = FaultConfig::NONE.with_tr_fault_rate(0.5);
        let faulty = run(Some(FaultPlan::uniform(storm, 3).unwrap()));
        assert_ne!(faulty, clean, "a 50% TR fault storm must corrupt the sum");
        let again = run(Some(FaultPlan::uniform(storm, 3).unwrap()));
        assert_eq!(faulty, again, "seeded campaigns reproduce exactly");
    }

    #[test]
    fn relu_instruction() {
        let mut m = machine();
        load(&mut m, 7, &[0x90, 0x05, 0xFF, 0x7F, 0, 0, 0, 0], 8);
        let instr = CpimInstr::new(
            CpimOpcode::Relu,
            pim_addr(7),
            1,
            BlockSize::new(8).unwrap(),
            None,
        )
        .unwrap();
        let out = m.execute(&instr).unwrap();
        assert_eq!(
            out.result.unwrap().unpack(8),
            vec![0, 0x05, 0, 0x7F, 0, 0, 0, 0]
        );
    }
}
