//! CORUSCANT: processing-in-memory for Domain-Wall (Racetrack) Memory.
//!
//! This crate implements the paper's primary contribution: treating a
//! segment of DWM nanowire between two access ports as a *polymorphic
//! gate*. A transverse read (TR) senses the number of ones in the segment;
//! a seven-level sense amplifier ([`sense::SenseLevels`]) exposes the
//! thresholds, and a small logic block ([`pimblock::PimBlock`]) derives
//! multi-operand logic and arithmetic outputs from them:
//!
//! * bulk-bitwise AND/NAND/OR/NOR/XOR/XNOR/NOT over up to TRD operand rows
//!   in a single sense ([`bulk`]);
//! * multi-operand addition with a spatial carry chain — sum `S`, carry
//!   `C`, and super-carry `C'` routed to neighbouring nanowires
//!   ([`add`], paper Fig. 6);
//! * two-operand multiplication built from logical shifting, predicated
//!   partial products, and carry-save `7 → 3` reductions ([`mult`]);
//! * a max function using transverse writes and predicated row-buffer
//!   resets ([`maxpool`]), plus ReLU ([`relu`]);
//! * N-modular redundancy voting through the super-carry majority
//!   ([`nmr`], paper §III-F);
//! * the `cpim` instruction set and a memory-controller-level executor
//!   ([`isa`], [`dispatch`]);
//! * closed-form cycle/energy/area models calibrated to the paper's
//!   Tables I–III ([`cost_model`], [`area`]).
//!
//! # Example: five-operand addition in one pass
//!
//! ```
//! use coruscant_core::add::MultiOperandAdder;
//! use coruscant_mem::{Dbc, MemoryConfig, Row};
//! use coruscant_racetrack::CostMeter;
//!
//! # fn main() -> Result<(), coruscant_core::PimError> {
//! let config = MemoryConfig::tiny(); // 64-bit rows, TRD = 7
//! let mut dbc = Dbc::pim_enabled(&config);
//! let adder = MultiOperandAdder::new(&config);
//!
//! // Five rows of packed 8-bit integers, added lane-wise in one pass.
//! let operands: Vec<Row> = (1..=5u64)
//!     .map(|k| Row::pack(64, 8, &[k, 10 * k, 7, 30, 2, 0, 1, 100]))
//!     .collect();
//! let mut meter = CostMeter::new();
//! let sum = adder.add_rows(&mut dbc, &operands, 8, &mut meter)?;
//! assert_eq!(sum.unpack(8)[0], 1 + 2 + 3 + 4 + 5);
//! assert_eq!(meter.total().cycles, 26, "Table III: 5-op 8-bit add = 26 cycles");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod add;
pub mod area;
pub mod arith;
pub mod bulk;
pub mod cost_model;
pub mod dispatch;
pub mod isa;
pub mod maxpool;
pub mod mult;
pub mod nmr;
pub mod pimblock;
pub mod program;
pub mod relu;
pub mod sense;
pub mod shift_logic;

mod error;

pub use error::PimError;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, PimError>;
