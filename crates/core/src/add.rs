//! Multi-operand addition with a spatial carry chain (paper §III-C, Fig. 6).
//!
//! Operand rows are stacked in the inter-port segment so that nanowire `w`
//! holds bit `w` of every operand. The addition walks the nanowires of each
//! block in order; at step `j` a transverse read of nanowire `j` senses
//! `operand bits + C_{j-1} + C'_{j-2}`, and the PIM block emits the binary
//! digits of that count: sum `S_j` (written back through the left port of
//! wire `j`), carry `C_j` (routed to the right port of wire `j+1`), and
//! super-carry `C'_j` (routed to the left port of wire `j+2`). The ports of
//! each wire double as the carry landing slots, which is why a TRD of 7
//! supports at most 7 − 2 = 5 operands (at TRD = 3 no super-carry can occur
//! and only the right port is reserved, allowing 2 operands).
//!
//! One step costs 2 cycles (TR + simultaneous writes); an `n`-bit block
//! takes `2n` cycles after operand placement, giving the paper's Table III
//! numbers: 19 cycles for an 8-bit 2-operand add at TRD = 3 and 26 cycles
//! for an 8-bit 5-operand add at TRD = 7 — independent of how many blocks
//! are packed in the row, since all blocks advance in lock step.

use crate::pimblock::PimBlock;
use crate::sense::SenseLevels;
use crate::{PimError, Result};
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::{CostMeter, PortId};

/// Validates a block size: a power of two in `8..=512` (paper §III-E).
pub fn validate_blocksize(blocksize: usize, width: usize) -> Result<()> {
    let ok = blocksize.is_power_of_two() && (8..=512).contains(&blocksize);
    if !ok || blocksize > width || !width.is_multiple_of(blocksize) {
        return Err(PimError::BadBlockSize(blocksize));
    }
    Ok(())
}

/// Executes multi-operand additions on a PIM-enabled DBC.
#[derive(Debug, Clone)]
pub struct MultiOperandAdder {
    trd: usize,
}

impl MultiOperandAdder {
    /// Creates an adder for the configuration's TRD.
    pub fn new(config: &MemoryConfig) -> MultiOperandAdder {
        MultiOperandAdder { trd: config.trd }
    }

    /// Creates an adder for an explicit TRD.
    pub fn with_trd(trd: usize) -> MultiOperandAdder {
        MultiOperandAdder { trd }
    }

    /// The configured transverse-read distance.
    pub fn trd(&self) -> usize {
        self.trd
    }

    /// Maximum simultaneous operands: `TRD − 2` (both ports reserved for
    /// `C` and `C'`), except `TRD − 1` at TRD = 3 where no super-carry
    /// exists.
    pub fn max_operands(&self) -> usize {
        if self.trd <= 3 {
            self.trd - 1
        } else {
            self.trd - 2
        }
    }

    /// Segment position of operand `i` (0-based) in the addition layout.
    fn operand_position(&self, i: usize) -> usize {
        if self.trd <= 3 {
            i
        } else {
            i + 1
        }
    }

    /// Places `k` operand rows into the segment for addition: one port
    /// write plus one domain shift per operand (the final shift is skipped
    /// at TRD = 3 where operands may sit on the left port), then presets
    /// the carry slots to `0` (pre-populated rows, paper Fig. 7b).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::NotPim`], [`PimError::TooManyOperands`] /
    /// [`PimError::TooFewOperands`], or a memory error.
    pub fn place_operands(
        &self,
        dbc: &mut Dbc,
        operands: &[Row],
        meter: &mut CostMeter,
    ) -> Result<()> {
        self.place_operands_impl(dbc, operands, None, meter)
    }

    /// Like [`MultiOperandAdder::place_operands`], but first aligns the
    /// wires so the addition scratches exactly rows
    /// `base..base + TRD` — required when other DBC rows (e.g. a
    /// partial-product pool) must survive the operation.
    ///
    /// # Errors
    ///
    /// As [`MultiOperandAdder::place_operands`].
    pub fn place_operands_at(
        &self,
        dbc: &mut Dbc,
        operands: &[Row],
        base: usize,
        meter: &mut CostMeter,
    ) -> Result<()> {
        self.place_operands_impl(dbc, operands, Some(base), meter)
    }

    fn place_operands_impl(
        &self,
        dbc: &mut Dbc,
        operands: &[Row],
        base: Option<usize>,
        meter: &mut CostMeter,
    ) -> Result<()> {
        if !dbc.is_pim() {
            return Err(PimError::NotPim);
        }
        let k = operands.len();
        if k < 2 {
            return Err(PimError::TooFewOperands {
                requested: k,
                min: 2,
            });
        }
        if k > self.max_operands() {
            return Err(PimError::TooManyOperands {
                requested: k,
                max: self.max_operands(),
            });
        }
        // Ensure slack for the placement shifts (one per operand, minus
        // one at TRD = 3 where operands may rest on the left port).
        let shifts = if self.trd >= 4 { k } else { k - 1 };
        match base {
            Some(b) => {
                // Align so that, after the placement shifts, the left port
                // covers row `b` (the write under the port lands in the
                // row currently beneath it, and the written bits travel
                // with their row as the wires shift).
                let first_row = b + shifts;
                dbc.align_row(first_row, coruscant_racetrack::PortId::LEFT, meter)
                    .map_err(PimError::from)?;
            }
            None => crate::bulk::ensure_right_slack(dbc, shifts as isize, meter)?,
        }
        for (i, op) in operands.iter().enumerate() {
            if op.width() != dbc.width() {
                return Err(PimError::Mem(coruscant_mem::MemError::WidthMismatch {
                    got: op.width(),
                    expected: dbc.width(),
                }));
            }
            let writes: Vec<(usize, PortId, bool)> = op
                .iter()
                .enumerate()
                .map(|(w, b)| (w, PortId::LEFT, b))
                .collect();
            dbc.write_bits(&writes, meter)?;
            let last = i + 1 == k;
            if !last || self.trd >= 4 {
                dbc.shift_all(1, meter)?;
            }
        }
        // Preset every non-operand segment position (carry slots and any
        // unused operand slots) to the all-zero padding row.
        let zero = Row::zeros(dbc.width());
        let occupied: Vec<usize> = (0..k).map(|i| self.operand_position(i)).collect();
        for s in 0..self.trd {
            if !occupied.contains(&s) {
                dbc.poke_segment_row(s, &zero)?;
            }
        }
        Ok(())
    }

    /// Runs the carry chain over operands already resident in the segment
    /// (placed by [`MultiOperandAdder::place_operands`]). Each block of
    /// `blocksize` wires forms an independent chain; all blocks advance
    /// together, so the latency is `2 × blocksize` cycles.
    ///
    /// Returns the sum row (each lane holds the operand sum modulo
    /// `2^blocksize`; carries past the block boundary are dropped, the
    /// standard truncation the paper's packed layout implies).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::BadBlockSize`] or a memory/device error.
    pub fn add_in_place(
        &self,
        dbc: &mut Dbc,
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        validate_blocksize(blocksize, dbc.width())?;
        let width = dbc.width();
        let blocks = width / blocksize;
        let block_logic = PimBlock::new();

        for j in 0..blocksize {
            // Parallel TR of wire j in every block.
            let wires: Vec<usize> = (0..blocks).map(|b| b * blocksize + j).collect();
            let outcomes = dbc.transverse_read_wires(&wires, meter)?;

            // Compute S/C/C' per active wire and collect the simultaneous
            // writes (to three different wires, all distinct per block).
            let mut writes: Vec<(usize, PortId, bool)> = Vec::with_capacity(3 * blocks);
            for (b, tr) in outcomes.into_iter().enumerate() {
                let w = b * blocksize + j;
                let o = block_logic.evaluate(SenseLevels::from_tr(tr));
                writes.push((w, PortId::LEFT, o.sum));
                if j + 1 < blocksize {
                    writes.push((w + 1, PortId::RIGHT, o.carry));
                }
                if self.trd >= 4 && j + 2 < blocksize {
                    writes.push((w + 2, PortId::LEFT, o.super_carry));
                }
            }
            dbc.write_bits(&writes, meter)?;
        }

        // The sum sits at the left-port position of every wire; it is
        // forwarded directly through the sense path (no extra access).
        Ok(dbc.peek_segment_rows().remove(0))
    }

    /// Full multi-operand addition: placement + carry chain.
    ///
    /// # Errors
    ///
    /// As [`MultiOperandAdder::place_operands`] and
    /// [`MultiOperandAdder::add_in_place`].
    pub fn add_rows(
        &self,
        dbc: &mut Dbc,
        operands: &[Row],
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        validate_blocksize(blocksize, dbc.width())?;
        self.place_operands(dbc, operands, meter)?;
        self.add_in_place(dbc, blocksize, meter)
    }

    /// Full multi-operand addition confined to the row window starting at
    /// `base` (see [`MultiOperandAdder::place_operands_at`]).
    ///
    /// # Errors
    ///
    /// As [`MultiOperandAdder::add_rows`].
    pub fn add_rows_at(
        &self,
        dbc: &mut Dbc,
        operands: &[Row],
        base: usize,
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        validate_blocksize(blocksize, dbc.width())?;
        self.place_operands_at(dbc, operands, base, meter)?;
        self.add_in_place(dbc, blocksize, meter)
    }

    /// Reference addition (oracle): lane-wise sum modulo `2^blocksize`.
    pub fn reference(operands: &[Row], blocksize: usize) -> Row {
        let width = operands[0].width();
        let lanes = width / blocksize;
        let mask = if blocksize == 64 {
            u64::MAX
        } else {
            (1u64 << blocksize) - 1
        };
        let mut sums = vec![0u64; lanes];
        for op in operands {
            for (lane, v) in op.unpack(blocksize).into_iter().enumerate() {
                sums[lane] = (sums[lane] + v) & mask;
            }
        }
        Row::pack(width, blocksize, &sums)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(trd: usize) -> (Dbc, MultiOperandAdder) {
        let config = MemoryConfig::tiny().with_trd(trd);
        (Dbc::pim_enabled(&config), MultiOperandAdder::new(&config))
    }

    fn packed(values: &[u64], blocksize: usize) -> Row {
        Row::pack(64, blocksize, values)
    }

    #[test]
    fn five_operand_add_matches_reference() {
        let (mut dbc, adder) = setup(7);
        let ops: Vec<Row> = [
            &[3u64, 250, 17, 0, 99, 1, 2, 200][..],
            &[5, 250, 18, 0, 99, 1, 2, 200],
            &[7, 250, 19, 0, 99, 1, 2, 200],
            &[11, 250, 20, 255, 99, 1, 2, 200],
            &[13, 250, 21, 255, 99, 1, 2, 200],
        ]
        .iter()
        .map(|v| packed(v, 8))
        .collect();
        let mut m = CostMeter::new();
        let got = adder.add_rows(&mut dbc, &ops, 8, &mut m).unwrap();
        assert_eq!(got, MultiOperandAdder::reference(&ops, 8));
        // First lane: 3+5+7+11+13 = 39.
        assert_eq!(got.unpack(8)[0], 39);
        // Second lane overflows: 5*250 mod 256 = 1250 mod 256 = 226.
        assert_eq!(got.unpack(8)[1], 1250 % 256);
    }

    #[test]
    fn table3_cycle_counts() {
        // 5-op add, TRD = 7, 8-bit: 10 setup + 16 chain = 26 cycles.
        let (mut dbc, adder) = setup(7);
        let ops: Vec<Row> = (1..=5u64).map(|k| packed(&[k; 8], 8)).collect();
        let mut m = CostMeter::new();
        adder.add_rows(&mut dbc, &ops, 8, &mut m).unwrap();
        assert_eq!(m.total().cycles, 26);

        // 2-op add, TRD = 3, 8-bit: 3 setup + 16 chain = 19 cycles.
        let (mut dbc, adder) = setup(3);
        let ops: Vec<Row> = (1..=2u64).map(|k| packed(&[k; 8], 8)).collect();
        let mut m = CostMeter::new();
        adder.add_rows(&mut dbc, &ops, 8, &mut m).unwrap();
        assert_eq!(m.total().cycles, 19);
    }

    #[test]
    fn trd3_two_operand_add() {
        let (mut dbc, adder) = setup(3);
        let a = packed(&[100, 7, 255, 1, 0, 200, 50, 128], 8);
        let b = packed(&[55, 8, 1, 2, 0, 100, 50, 128], 8);
        let got = adder
            .add_rows(&mut dbc, &[a.clone(), b.clone()], 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, MultiOperandAdder::reference(&[a, b], 8));
    }

    #[test]
    fn trd5_three_operand_add() {
        let (mut dbc, adder) = setup(5);
        assert_eq!(adder.max_operands(), 3);
        let ops: Vec<Row> = [[200u64, 1, 99], [100, 2, 99], [55, 3, 99]]
            .iter()
            .map(|v| {
                let mut vals = [0u64; 8];
                vals[..3].copy_from_slice(v);
                packed(&vals, 8)
            })
            .collect();
        let got = adder
            .add_rows(&mut dbc, &ops, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, MultiOperandAdder::reference(&ops, 8));
    }

    #[test]
    fn wide_blocks_work() {
        let (mut dbc, adder) = setup(7);
        let ops: Vec<Row> = [0xFFFF_FF00u64, 0x0000_0100, 0x1234_5678]
            .iter()
            .map(|&v| packed(&[v, v >> 1], 32))
            .collect();
        let got = adder
            .add_rows(&mut dbc, &ops, 32, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, MultiOperandAdder::reference(&ops, 32));
    }

    #[test]
    fn full_row_single_block() {
        let (mut dbc, adder) = setup(7);
        let ops = vec![packed(&[u64::MAX], 64), packed(&[1], 64)];
        let got = adder
            .add_rows(&mut dbc, &ops, 64, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.unpack(64)[0], 0, "wrap-around");
    }

    #[test]
    fn operand_count_limits() {
        let (mut dbc, adder) = setup(7);
        assert_eq!(adder.max_operands(), 5);
        let six: Vec<Row> = (0..6u64).map(|k| packed(&[k; 8], 8)).collect();
        assert!(matches!(
            adder.add_rows(&mut dbc, &six, 8, &mut CostMeter::new()),
            Err(PimError::TooManyOperands { max: 5, .. })
        ));
        let one = vec![packed(&[1; 8], 8)];
        assert!(matches!(
            adder.add_rows(&mut dbc, &one, 8, &mut CostMeter::new()),
            Err(PimError::TooFewOperands { .. })
        ));
    }

    #[test]
    fn bad_blocksizes_rejected() {
        let (mut dbc, adder) = setup(7);
        let ops: Vec<Row> = (1..=2u64).map(|k| packed(&[k; 8], 8)).collect();
        for bs in [0usize, 3, 7, 12, 128] {
            // 128 > row width of the tiny config (64).
            assert!(matches!(
                adder.add_rows(&mut dbc, &ops, bs, &mut CostMeter::new()),
                Err(PimError::BadBlockSize(_))
            ));
        }
    }

    #[test]
    fn storage_dbc_rejected() {
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::storage(&config);
        let adder = MultiOperandAdder::new(&config);
        let ops: Vec<Row> = (1..=2u64).map(|k| packed(&[k; 8], 8)).collect();
        assert!(matches!(
            adder.add_rows(&mut dbc, &ops, 8, &mut CostMeter::new()),
            Err(PimError::NotPim)
        ));
    }

    #[test]
    fn latency_independent_of_block_count() {
        // All 8-bit blocks advance in lock step: 8 lanes cost the same
        // cycles as 1 lane (energy differs).
        let (mut dbc, adder) = setup(7);
        let ops: Vec<Row> = (1..=5u64).map(|k| packed(&[k; 8], 8)).collect();
        let mut m_full = CostMeter::new();
        adder.add_rows(&mut dbc, &ops, 8, &mut m_full).unwrap();

        let (mut dbc1, _) = setup(7);
        let ops1: Vec<Row> = (1..=5u64).map(|k| packed(&[k], 8)).collect();
        let mut m_one = CostMeter::new();
        adder.add_rows(&mut dbc1, &ops1, 8, &mut m_one).unwrap();

        assert_eq!(m_full.total().cycles, m_one.total().cycles);
        assert!(m_full.total().energy_pj >= m_one.total().energy_pj);
    }
}
