//! Multi-operand bulk-bitwise operations (paper §III-B, Fig. 5).
//!
//! Up to TRD operand rows sit in the inter-port segment of a PIM DBC; one
//! transverse read per nanowire — all nanowires in parallel — senses the
//! per-bitline ones-count, and the PIM block turns it into OR/NOR, AND/
//! NAND, XOR/XNOR or NOT. Operating on fewer than TRD operands pads the
//! unused segment positions with preset constants (paper Fig. 7): `1`s for
//! AND/NAND, `0`s for the rest.

use crate::pimblock::{PimBlock, PimOutputs};
use crate::sense::SenseLevels;
use crate::{PimError, Result};
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::CostMeter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bulk-bitwise operation selectable at the PIM output multiplexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BulkOp {
    /// Multi-operand AND.
    And,
    /// Multi-operand NAND.
    Nand,
    /// Multi-operand OR.
    Or,
    /// Multi-operand NOR.
    Nor,
    /// Multi-operand XOR (parity).
    Xor,
    /// Multi-operand XNOR.
    Xnor,
    /// Bitwise NOT of a single operand (zero-padded NOR).
    Not,
}

/// Shifts the DBC left (costed) so that at least `needed` domain shifts to
/// the right remain available — placement loops shift right once per
/// operand, and a previous operation may have left the wires near the
/// extremity.
pub(crate) fn ensure_right_slack(
    dbc: &mut Dbc,
    needed: isize,
    meter: &mut CostMeter,
) -> Result<()> {
    let (_, right) = dbc.wire(0).shift_slack();
    if right < needed {
        dbc.shift_all(-(needed - right), meter)?;
    }
    Ok(())
}

impl BulkOp {
    /// The padding constant preset into unused segment positions
    /// (paper Fig. 7: `1`s for AND/NAND, `0`s otherwise).
    pub fn padding(self) -> bool {
        matches!(self, BulkOp::And | BulkOp::Nand)
    }

    /// Selects this operation's bit from the PIM block outputs.
    pub fn select(self, outputs: PimOutputs) -> bool {
        match self {
            BulkOp::And => outputs.and,
            BulkOp::Nand => outputs.nand,
            BulkOp::Or => outputs.or,
            BulkOp::Nor => outputs.nor,
            BulkOp::Xor => outputs.xor,
            BulkOp::Xnor => outputs.xnor,
            BulkOp::Not => outputs.nor,
        }
    }

    /// Reference implementation: folds the operand bits with this
    /// operation (the oracle the hardware must match).
    pub fn reference(self, bits: &[bool]) -> bool {
        match self {
            BulkOp::And => bits.iter().all(|&b| b),
            BulkOp::Nand => !bits.iter().all(|&b| b),
            BulkOp::Or => bits.iter().any(|&b| b),
            BulkOp::Nor => !bits.iter().any(|&b| b),
            BulkOp::Xor => bits.iter().fold(false, |a, &b| a ^ b),
            BulkOp::Xnor => !bits.iter().fold(false, |a, &b| a ^ b),
            BulkOp::Not => !bits[0],
        }
    }

    /// Maximum operand count for this operation at a given TRD (NOT is
    /// unary; everything else can fill the whole segment).
    pub fn max_operands(self, trd: usize) -> usize {
        match self {
            BulkOp::Not => 1,
            _ => trd,
        }
    }
}

impl fmt::Display for BulkOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BulkOp::And => "AND",
            BulkOp::Nand => "NAND",
            BulkOp::Or => "OR",
            BulkOp::Nor => "NOR",
            BulkOp::Xor => "XOR",
            BulkOp::Xnor => "XNOR",
            BulkOp::Not => "NOT",
        };
        write!(f, "{s}")
    }
}

/// Executes bulk-bitwise operations on a PIM-enabled DBC.
#[derive(Debug, Clone)]
pub struct BulkExecutor {
    trd: usize,
}

impl BulkExecutor {
    /// Creates an executor for the configuration's TRD.
    pub fn new(config: &MemoryConfig) -> BulkExecutor {
        BulkExecutor { trd: config.trd }
    }

    /// The configured transverse-read distance.
    pub fn trd(&self) -> usize {
        self.trd
    }

    /// Places `k` operand rows into the segment through the left port
    /// (write + domain shift per operand, the costed placement of
    /// §V-B) and presets the remaining positions with the operation's
    /// padding constant (pre-populated, paper Fig. 7 — no cost).
    ///
    /// After placement the operands occupy segment positions `0..k` in
    /// reverse write order, which is immaterial for these commutative
    /// operations.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::NotPim`] for a storage DBC,
    /// [`PimError::TooManyOperands`] past the TRD, or a memory error.
    pub fn place_operands(
        &self,
        dbc: &mut Dbc,
        operands: &[Row],
        padding: bool,
        meter: &mut CostMeter,
    ) -> Result<()> {
        if !dbc.is_pim() {
            return Err(PimError::NotPim);
        }
        let k = operands.len();
        if k > self.trd {
            return Err(PimError::TooManyOperands {
                requested: k,
                max: self.trd,
            });
        }
        if k == 0 {
            return Err(PimError::TooFewOperands {
                requested: 0,
                min: 1,
            });
        }
        // Ensure enough shift slack for the placement (realign left if a
        // previous operation left the wire near its right extremity).
        ensure_right_slack(dbc, k as isize - 1, meter)?;
        // Preset padding (pre-populated constants, Fig. 7).
        let pad_row = if padding {
            Row::ones(dbc.width())
        } else {
            Row::zeros(dbc.width())
        };
        for s in 0..self.trd {
            dbc.poke_segment_row(s, &pad_row)?;
        }
        // Costed placement: write at the left port, then shift one domain,
        // for every operand except the last (which can stay at the port).
        for (i, op) in operands.iter().enumerate() {
            self.write_segment_row_via_port(dbc, op, meter)?;
            if i + 1 < k {
                dbc.shift_all(1, meter)?;
            }
        }
        // Restore the padding constant on any position the shifts exposed
        // (the preloaded constant rows extend past the ports, Fig. 7).
        for s in k..self.trd {
            dbc.poke_segment_row(s, &pad_row)?;
        }
        Ok(())
    }

    fn write_segment_row_via_port(
        &self,
        dbc: &mut Dbc,
        row: &Row,
        meter: &mut CostMeter,
    ) -> Result<()> {
        if row.width() != dbc.width() {
            return Err(PimError::Mem(coruscant_mem::MemError::WidthMismatch {
                got: row.width(),
                expected: dbc.width(),
            }));
        }
        let writes: Vec<(usize, coruscant_racetrack::PortId, bool)> = row
            .iter()
            .enumerate()
            .map(|(w, b)| (w, coruscant_racetrack::PortId::LEFT, b))
            .collect();
        dbc.write_bits(&writes, meter)?;
        Ok(())
    }

    /// Executes `op` over the segment as currently populated, treating it
    /// as `k` operands plus padding: one parallel transverse read, PIM
    /// block evaluation, and the selected output row.
    ///
    /// # Errors
    ///
    /// Returns a device error for TR failures.
    pub fn execute_in_place(
        &self,
        dbc: &mut Dbc,
        op: BulkOp,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        let block = PimBlock::new();
        let outs = dbc.transverse_read_all(meter)?;
        Ok(outs
            .into_iter()
            .map(|tr| op.select(block.evaluate(SenseLevels::from_tr(tr))))
            .collect())
    }

    /// Full bulk-bitwise operation: placement + single-TR evaluation.
    ///
    /// # Errors
    ///
    /// As [`BulkExecutor::place_operands`] and
    /// [`BulkExecutor::execute_in_place`]; NOT additionally requires
    /// exactly one operand.
    pub fn execute(
        &self,
        dbc: &mut Dbc,
        op: BulkOp,
        operands: &[Row],
        meter: &mut CostMeter,
    ) -> Result<Row> {
        let max = op.max_operands(self.trd);
        if operands.len() > max {
            return Err(PimError::TooManyOperands {
                requested: operands.len(),
                max,
            });
        }
        self.place_operands(dbc, operands, op.padding(), meter)?;
        self.execute_in_place(dbc, op, meter)
    }

    /// Reference row-level fold (oracle).
    pub fn reference(op: BulkOp, operands: &[Row]) -> Row {
        let width = operands[0].width();
        (0..width)
            .map(|i| {
                let bits: Vec<bool> = operands.iter().map(|r| r.get(i).unwrap()).collect();
                op.reference(&bits)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Dbc, BulkExecutor) {
        let config = MemoryConfig::tiny();
        (Dbc::pim_enabled(&config), BulkExecutor::new(&config))
    }

    fn rows(patterns: &[u64]) -> Vec<Row> {
        patterns
            .iter()
            .map(|&p| Row::from_u64_words(64, &[p]))
            .collect()
    }

    #[test]
    fn all_ops_match_reference_for_three_operands() {
        let ops = [
            BulkOp::And,
            BulkOp::Nand,
            BulkOp::Or,
            BulkOp::Nor,
            BulkOp::Xor,
            BulkOp::Xnor,
        ];
        let operands = rows(&[0xF0F0_A5A5, 0xFF00_C3C3, 0x0FF0_9999]);
        for op in ops {
            let (mut dbc, exec) = setup();
            let mut m = CostMeter::new();
            let got = exec.execute(&mut dbc, op, &operands, &mut m).unwrap();
            let want = BulkExecutor::reference(op, &operands);
            assert_eq!(got, want, "{op}");
        }
    }

    #[test]
    fn seven_operand_or_single_tr() {
        let (mut dbc, exec) = setup();
        let operands = rows(&[1, 2, 4, 8, 16, 32, 64]);
        let mut m = CostMeter::new();
        let got = exec
            .execute(&mut dbc, BulkOp::Or, &operands, &mut m)
            .unwrap();
        assert_eq!(got.to_u64_words()[0], 127);
        // Placement: 7 writes + 6 shifts; evaluation: 1 TR.
        assert_eq!(m.total().cycles, 7 + 6 + 1);
    }

    #[test]
    fn two_operand_and_uses_one_padding() {
        let (mut dbc, exec) = setup();
        let a = 0xDEAD_BEEF_u64;
        let b = 0xF0F0_F0F0_u64;
        let got = exec
            .execute(&mut dbc, BulkOp::And, &rows(&[a, b]), &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.to_u64_words()[0], a & b);
    }

    #[test]
    fn not_is_unary() {
        let (mut dbc, exec) = setup();
        let a = 0x1234_5678_9ABC_DEF0_u64;
        let got = exec
            .execute(&mut dbc, BulkOp::Not, &rows(&[a]), &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.to_u64_words()[0], !a);

        let err = exec
            .execute(&mut dbc, BulkOp::Not, &rows(&[a, a]), &mut CostMeter::new())
            .unwrap_err();
        assert!(matches!(err, PimError::TooManyOperands { max: 1, .. }));
    }

    #[test]
    fn too_many_operands_rejected() {
        let (mut dbc, exec) = setup();
        let operands = rows(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let err = exec
            .execute(&mut dbc, BulkOp::Or, &operands, &mut CostMeter::new())
            .unwrap_err();
        assert!(matches!(err, PimError::TooManyOperands { max: 7, .. }));
    }

    #[test]
    fn zero_operands_rejected() {
        let (mut dbc, exec) = setup();
        let err = exec
            .execute(&mut dbc, BulkOp::Or, &[], &mut CostMeter::new())
            .unwrap_err();
        assert!(matches!(err, PimError::TooFewOperands { .. }));
    }

    #[test]
    fn storage_dbc_rejected() {
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::storage(&config);
        let exec = BulkExecutor::new(&config);
        let err = exec
            .execute(&mut dbc, BulkOp::Or, &rows(&[1]), &mut CostMeter::new())
            .unwrap_err();
        assert!(matches!(err, PimError::NotPim));
    }

    #[test]
    fn xor_of_five_operands() {
        let (mut dbc, exec) = setup();
        let vals = [0xAAAA, 0x5555, 0xF00F, 0x1234, 0x8001];
        let got = exec
            .execute(&mut dbc, BulkOp::Xor, &rows(&vals), &mut CostMeter::new())
            .unwrap();
        let want = vals.iter().fold(0u64, |a, &b| a ^ b);
        assert_eq!(got.to_u64_words()[0], want);
    }

    #[test]
    fn smaller_trd_configs_work() {
        for trd in [3usize, 5] {
            let config = MemoryConfig::tiny().with_trd(trd);
            let mut dbc = Dbc::pim_enabled(&config);
            let exec = BulkExecutor::new(&config);
            let operands = rows(&[0xFF00, 0x0FF0, 0x00FF][..trd.min(3)]);
            let got = exec
                .execute(&mut dbc, BulkOp::Or, &operands, &mut CostMeter::new())
                .unwrap();
            assert_eq!(got, BulkExecutor::reference(BulkOp::Or, &operands));
        }
    }
}
