use std::fmt;

/// Errors produced by CORUSCANT PIM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PimError {
    /// A memory-layer error bubbled up.
    Mem(coruscant_mem::MemError),
    /// Too many operands for the configured transverse-read distance.
    TooManyOperands {
        /// Requested operand count.
        requested: usize,
        /// Maximum for this operation at the configured TRD.
        max: usize,
    },
    /// The operation needs at least this many operands.
    TooFewOperands {
        /// Requested operand count.
        requested: usize,
        /// Minimum for this operation.
        min: usize,
    },
    /// The block size is not one of the supported power-of-two widths.
    BadBlockSize(usize),
    /// The target DBC is not PIM-enabled.
    NotPim,
    /// Operand bit-width too large for the requested lane layout.
    WidthOverflow {
        /// Operand bits requested.
        bits: usize,
        /// Lane width available.
        lane: usize,
    },
    /// An instruction failed to decode.
    BadInstruction(String),
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::Mem(e) => write!(f, "memory error: {e}"),
            PimError::TooManyOperands { requested, max } => {
                write!(
                    f,
                    "{requested} operands exceed the maximum of {max} at this TRD"
                )
            }
            PimError::TooFewOperands { requested, min } => {
                write!(f, "{requested} operands below the minimum of {min}")
            }
            PimError::BadBlockSize(b) => write!(
                f,
                "block size {b} unsupported (expected a power of two in 8..=512)"
            ),
            PimError::NotPim => write!(f, "target DBC is not PIM-enabled"),
            PimError::WidthOverflow { bits, lane } => {
                write!(f, "{bits}-bit operands do not fit a {lane}-bit lane")
            }
            PimError::BadInstruction(s) => write!(f, "bad cpim instruction: {s}"),
        }
    }
}

impl std::error::Error for PimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PimError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<coruscant_mem::MemError> for PimError {
    fn from(e: coruscant_mem::MemError) -> Self {
        PimError::Mem(e)
    }
}

impl From<coruscant_racetrack::Error> for PimError {
    fn from(e: coruscant_racetrack::Error) -> Self {
        PimError::Mem(coruscant_mem::MemError::Device(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let cases = [
            PimError::Mem(coruscant_mem::MemError::BadConfig("x".into())),
            PimError::TooManyOperands {
                requested: 9,
                max: 5,
            },
            PimError::TooFewOperands {
                requested: 0,
                min: 1,
            },
            PimError::BadBlockSize(13),
            PimError::NotPim,
            PimError::WidthOverflow { bits: 16, lane: 8 },
            PimError::BadInstruction("opcode 31".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_chain() {
        use std::error::Error as _;
        let e: PimError = coruscant_racetrack::Error::UnknownPort(2).into();
        assert!(e.source().is_some());
    }
}
