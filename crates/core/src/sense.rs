//! The seven-level transverse-read sense amplifier (paper Fig. 4a).
//!
//! A transverse read senses an aggregate resistance that encodes the number
//! of `1` domains in the spanned segment, akin to a multi-level STT-MRAM
//! cell. The CORUSCANT sense amplifier extension compares that resistance
//! against seven references and outputs threshold bits `SA[j]` with
//! `SA[j] = 1` iff the segment holds at least `j` ones, `j ∈ 1..=7`.

use coruscant_racetrack::TrOutcome;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The threshold outputs of one sense amplifier after a transverse read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SenseLevels {
    count: u8,
    span: u8,
}

impl SenseLevels {
    /// Builds the levels from a raw transverse-read outcome.
    pub fn from_tr(tr: TrOutcome) -> SenseLevels {
        SenseLevels {
            count: tr.value,
            span: tr.span,
        }
    }

    /// Builds the levels from an explicit ones-count and span.
    ///
    /// # Panics
    ///
    /// Panics if `count > span` or `span > 7` (the sense amplifier has
    /// seven references).
    pub fn new(count: u8, span: u8) -> SenseLevels {
        assert!(span <= 7, "seven-level sense amplifier");
        assert!(count <= span, "count cannot exceed span");
        SenseLevels { count, span }
    }

    /// The sensed ones-count.
    pub fn count(&self) -> u8 {
        self.count
    }

    /// The number of domains spanned by the read.
    pub fn span(&self) -> u8 {
        self.span
    }

    /// Threshold output `SA[j]`: whether at least `j` ones were sensed.
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or exceeds 7.
    pub fn at_least(&self, j: u8) -> bool {
        assert!((1..=7).contains(&j), "SA levels are 1..=7");
        self.count >= j
    }

    /// All seven threshold bits, `[SA[1], ..., SA[7]]`.
    pub fn bits(&self) -> [bool; 7] {
        let mut out = [false; 7];
        for (j, bit) in out.iter_mut().enumerate() {
            *bit = self.count >= (j as u8 + 1);
        }
        out
    }
}

impl fmt::Display for SenseLevels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} of {} ones", self.count, self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_monotone() {
        for c in 0..=7u8 {
            let s = SenseLevels::new(c, 7);
            let bits = s.bits();
            for j in 1..7 {
                assert!(!bits[j] || bits[j - 1], "SA thresholds must be monotone");
            }
            assert_eq!(bits.iter().filter(|&&b| b).count() as u8, c);
        }
    }

    #[test]
    fn at_least_matches_bits() {
        let s = SenseLevels::new(4, 7);
        for j in 1..=7u8 {
            assert_eq!(s.at_least(j), s.bits()[(j - 1) as usize]);
        }
    }

    #[test]
    fn from_tr_outcome() {
        let tr = TrOutcome { value: 3, span: 5 };
        let s = SenseLevels::from_tr(tr);
        assert_eq!(s.count(), 3);
        assert_eq!(s.span(), 5);
        assert!(s.at_least(3));
        assert!(!s.at_least(4));
    }

    #[test]
    #[should_panic(expected = "count cannot exceed span")]
    fn rejects_count_over_span() {
        SenseLevels::new(5, 4);
    }

    #[test]
    #[should_panic(expected = "SA levels are 1..=7")]
    fn rejects_level_zero() {
        SenseLevels::new(1, 7).at_least(0);
    }

    #[test]
    fn display() {
        assert_eq!(SenseLevels::new(2, 7).to_string(), "2 of 7 ones");
    }
}
