//! The per-bitline PIM logic block (paper Fig. 4b).
//!
//! Fed by the seven sense-amplifier threshold outputs, the block derives
//! every CORUSCANT output in one cycle:
//!
//! * `OR` — at least one `1` (`SA[1]`); `NOR` its inversion. With a single
//!   operand padded by zeros this doubles as `NOT`.
//! * `AND` — all `k` operand positions are `1` (`SA[k]` when padding is
//!   `1`-preset so the whole segment counts); `NAND` its inversion.
//! * `XOR` — the ones-count is odd (the "odd TR levels"); `XNOR` its
//!   inversion.
//! * `S` (sum) — identical to `XOR`: bit 0 of the ones-count.
//! * `C` (carry) — bit 1 of the ones-count: levels {2,3} ∪ {6,7}, i.e.
//!   "above two and not above four, or above six".
//! * `C'` (super-carry) — bit 2 of the ones-count: level ≥ 4. The same
//!   circuit serves as the majority function for N-modular voting.

use crate::sense::SenseLevels;
use serde::{Deserialize, Serialize};

/// All outputs of the PIM logic block for one bitline after one TR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimOutputs {
    /// Multi-operand OR (`SA[1]`).
    pub or: bool,
    /// Multi-operand NOR.
    pub nor: bool,
    /// Multi-operand AND over the full span.
    pub and: bool,
    /// Multi-operand NAND over the full span.
    pub nand: bool,
    /// Multi-operand XOR (odd ones-count).
    pub xor: bool,
    /// Multi-operand XNOR.
    pub xnor: bool,
    /// Addition sum bit (= XOR).
    pub sum: bool,
    /// Addition carry bit (bit 1 of the ones-count).
    pub carry: bool,
    /// Addition super-carry bit (bit 2 of the ones-count); also the
    /// majority output used by N-modular voting.
    pub super_carry: bool,
}

/// The combinational PIM block: maps sense levels to [`PimOutputs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PimBlock;

impl PimBlock {
    /// Creates the block.
    pub fn new() -> PimBlock {
        PimBlock
    }

    /// Evaluates every output from the sensed levels.
    ///
    /// The AND output compares against the full span: callers that AND
    /// fewer than `span` operands must preset the unused positions to `1`
    /// (paper Fig. 7a).
    pub fn evaluate(&self, levels: SenseLevels) -> PimOutputs {
        let count = levels.count();
        let span = levels.span();
        let or = count >= 1;
        let and = count == span;
        let xor = count & 1 == 1;
        PimOutputs {
            or,
            nor: !or,
            and,
            nand: !and,
            xor,
            xnor: !xor,
            sum: xor,
            carry: count & 0b10 != 0,
            super_carry: count & 0b100 != 0,
        }
    }

    /// The carry expression exactly as the paper words it — "a function of
    /// TR levels above two and not above four or above six" — used to
    /// cross-check the bit-1 shortcut.
    pub fn carry_from_levels(&self, levels: SenseLevels) -> bool {
        let ge = |j: u8| levels.count() >= j;
        (ge(2) && !ge(4)) || ge(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs(count: u8, span: u8) -> PimOutputs {
        PimBlock::new().evaluate(SenseLevels::new(count, span))
    }

    #[test]
    fn sum_carry_supercarry_are_binary_digits_of_count() {
        for span in [3u8, 5, 7] {
            for count in 0..=span {
                let o = outputs(count, span);
                assert_eq!(o.sum, count & 1 == 1, "S is bit 0 of {count}");
                assert_eq!(o.carry, count & 2 != 0, "C is bit 1 of {count}");
                assert_eq!(o.super_carry, count & 4 != 0, "C' is bit 2 of {count}");
                // S + 2C + 4C' reconstructs the count (count <= 7).
                let recon = u8::from(o.sum) + 2 * u8::from(o.carry) + 4 * u8::from(o.super_carry);
                assert_eq!(recon, count);
            }
        }
    }

    #[test]
    fn carry_matches_paper_level_expression() {
        let block = PimBlock::new();
        for count in 0..=7u8 {
            let levels = SenseLevels::new(count, 7);
            assert_eq!(
                block.evaluate(levels).carry,
                block.carry_from_levels(levels),
                "count {count}"
            );
        }
    }

    #[test]
    fn logic_outputs_match_folds() {
        // Enumerate all 2^7 segment patterns and compare against bitwise
        // folds over the operands.
        let block = PimBlock::new();
        for pattern in 0u32..128 {
            let bits: Vec<bool> = (0..7).map(|i| pattern >> i & 1 == 1).collect();
            let count = bits.iter().filter(|&&b| b).count() as u8;
            let o = block.evaluate(SenseLevels::new(count, 7));
            let and = bits.iter().all(|&b| b);
            let or = bits.iter().any(|&b| b);
            let xor = bits.iter().fold(false, |a, &b| a ^ b);
            assert_eq!(o.and, and);
            assert_eq!(o.nand, !and);
            assert_eq!(o.or, or);
            assert_eq!(o.nor, !or);
            assert_eq!(o.xor, xor);
            assert_eq!(o.xnor, !xor);
        }
    }

    #[test]
    fn not_via_zero_padding() {
        // NOT a: store a alone with zero padding; NOR reports !a.
        for a in [false, true] {
            let o = outputs(u8::from(a), 7);
            assert_eq!(o.nor, !a);
        }
    }

    #[test]
    fn and_with_one_padding_shrinks_cardinality() {
        // AND of k=2 operands with 5 positions preset to '1': the output is
        // a & b exactly when count == span.
        for a in [false, true] {
            for b in [false, true] {
                let count = u8::from(a) + u8::from(b) + 5;
                let o = outputs(count, 7);
                assert_eq!(o.and, a && b);
            }
        }
    }

    #[test]
    fn supercarry_is_majority_of_seven() {
        // C' doubles as the 7-input majority voter (paper §III-F).
        for count in 0..=7u8 {
            assert_eq!(outputs(count, 7).super_carry, count >= 4);
        }
    }
}
