//! Logical (inter-nanowire) shifting (paper §III-D, brown paths of Fig. 4a).
//!
//! CORUSCANT distinguishes **logical shifts**, which move bits *between*
//! nanowires through the neighbour-forwarding interconnect (a multiply by
//! two per position), from **DW shifts**, which move the domain trains
//! along the wires to reach different rows. A logical shift by one is a
//! read of the source row forwarded one bitline over and written back; a
//! shift by `k` chains `k` such read/write pairs.

use crate::add::validate_blocksize;
use crate::Result;
use coruscant_mem::{Dbc, Row};
use coruscant_racetrack::CostMeter;

/// Pure logical shift of a row: within each `blocksize` lane, bit `i`
/// moves to bit `i + by`; vacated bits fill with zero and bits shifted
/// past the lane top are dropped. This is the per-lane `<< by`.
pub fn shift_row_left(row: &Row, by: usize, blocksize: usize) -> Row {
    let width = row.width();
    let mut out = Row::zeros(width);
    for i in 0..width {
        let lane = i / blocksize;
        let pos = i % blocksize;
        if pos >= by {
            if let Some(true) = row.get(lane * blocksize + (pos - by)) {
                out.set(i, true);
            }
        }
    }
    out
}

/// Device-level shifted copy: materializes `src << by` (per `blocksize`
/// lane) into row `dst` of the DBC, charging one read plus one
/// neighbour-forwarded write per shift position (plus DW-shift alignment),
/// exactly the paper's "to write `A << k` requires `k` shifted read and
/// write operations". A `by` of zero is a plain copy (one read/write pair).
///
/// # Errors
///
/// Returns a block-size or memory error.
pub fn write_shifted_copy(
    dbc: &mut Dbc,
    src: usize,
    dst: usize,
    by: usize,
    blocksize: usize,
    meter: &mut CostMeter,
) -> Result<()> {
    validate_blocksize(blocksize, dbc.width())?;
    if by == 0 {
        let data = dbc.read_row(src, meter)?;
        dbc.write_row(dst, &data, meter)?;
        return Ok(());
    }
    // First pair: src -> dst shifted by one; remaining pairs refine dst in
    // place (read, forward one bitline, write back).
    let mut cur = dbc.read_row(src, meter)?;
    cur = shift_row_left(&cur, 1, blocksize);
    dbc.write_row(dst, &cur, meter)?;
    for _ in 1..by {
        let data = dbc.read_row(dst, meter)?;
        let shifted = shift_row_left(&data, 1, blocksize);
        dbc.write_row(dst, &shifted, meter)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_mem::MemoryConfig;

    #[test]
    fn pure_shift_matches_u64_shift_per_lane() {
        let vals = [0x0123u64, 0x00FF, 0x8001, 0xFFFF];
        let row = Row::pack(64, 16, &vals);
        for by in 0..16 {
            let got = shift_row_left(&row, by, 16).unpack(16);
            for (lane, &v) in vals.iter().enumerate() {
                assert_eq!(got[lane], (v << by) & 0xFFFF, "lane {lane} by {by}");
            }
        }
    }

    #[test]
    fn shift_by_zero_is_identity() {
        let row = Row::from_u64_words(64, &[0xDEAD_BEEF]);
        assert_eq!(shift_row_left(&row, 0, 8), row);
    }

    #[test]
    fn bits_do_not_cross_lanes() {
        // A bit at the top of lane 0 must vanish, not enter lane 1.
        let row = Row::pack(64, 8, &[0x80, 0x00, 0, 0, 0, 0, 0, 0]);
        let out = shift_row_left(&row, 1, 8);
        assert_eq!(out.popcount(), 0);
    }

    #[test]
    fn device_level_shifted_copy() {
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::pim_enabled(&config);
        let vals = [7u64, 200, 1, 128, 0, 3, 99, 255];
        let a = Row::pack(64, 8, &vals);
        dbc.poke_row(2, &a).unwrap();
        let mut m = CostMeter::new();
        write_shifted_copy(&mut dbc, 2, 5, 3, 8, &mut m).unwrap();
        let got = dbc.peek_row(5).unwrap().unpack(8);
        for (lane, &v) in vals.iter().enumerate() {
            assert_eq!(got[lane], (v << 3) & 0xFF, "lane {lane}");
        }
        // 3 read/write pairs plus alignment shifts.
        assert!(m.total().cycles >= 6);
    }

    #[test]
    fn copy_when_by_is_zero() {
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::pim_enabled(&config);
        let a = Row::from_u64_words(64, &[42]);
        dbc.poke_row(0, &a).unwrap();
        write_shifted_copy(&mut dbc, 0, 9, 0, 8, &mut CostMeter::new()).unwrap();
        assert_eq!(dbc.peek_row(9).unwrap(), a);
    }

    #[test]
    fn source_row_is_preserved() {
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::pim_enabled(&config);
        let a = Row::pack(64, 8, &[9; 8]);
        dbc.poke_row(1, &a).unwrap();
        write_shifted_copy(&mut dbc, 1, 3, 2, 8, &mut CostMeter::new()).unwrap();
        assert_eq!(dbc.peek_row(1).unwrap(), a);
    }
}
