//! Derived arithmetic built from the CORUSCANT primitives: subtraction,
//! comparisons, min, large-cardinality accumulation, and dot products.
//!
//! The paper's conclusion points at "other intrinsic operations required
//! for accelerated on-line training"; this module composes them from the
//! primitives §III provides — two's-complement negation through the
//! inverted sense path (`NOT x + 1`), the multi-operand adder, the
//! carry-save reducer, and the max function:
//!
//! * `a − b` = `a + NOT b + 1` (the `+1` rides in a free operand slot,
//!   exactly like the constant-multiplication example's `−515A`);
//! * `a ≥ b` reads the borrow out of a double-width subtraction;
//! * `min` = `NOT (max (NOT a, NOT b))`;
//! * big sums use repeated `TRD → 3` reductions — the "large cardinality
//!   additions found in many scientific and machine learning algorithms"
//!   (§III-D3).

use crate::add::MultiOperandAdder;
use crate::maxpool::MaxExecutor;
use crate::mult::{CsaReducer, Multiplier};
use crate::{PimError, Result};
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::CostMeter;

/// Executes derived arithmetic on a PIM-enabled DBC.
#[derive(Debug, Clone)]
pub struct ArithmeticUnit {
    trd: usize,
}

impl ArithmeticUnit {
    /// Creates a unit for the configuration's TRD.
    pub fn new(config: &MemoryConfig) -> ArithmeticUnit {
        ArithmeticUnit { trd: config.trd }
    }

    /// The configured TRD.
    pub fn trd(&self) -> usize {
        self.trd
    }

    fn max_add_operands(&self) -> usize {
        if self.trd <= 3 {
            self.trd - 1
        } else {
            self.trd - 2
        }
    }

    /// Lane-wise subtraction `a − b` (mod `2^blocksize`): `b` is inverted
    /// through the NOT sense path (one read/write pair) and the `+1`
    /// enters as a preset constant row.
    ///
    /// # Errors
    ///
    /// Returns block-size, capacity, or memory errors.
    pub fn subtract(
        &self,
        dbc: &mut Dbc,
        a: &Row,
        b: &Row,
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        crate::add::validate_blocksize(blocksize, dbc.width())?;
        let adder = MultiOperandAdder::with_trd(self.trd);
        let width = dbc.width();
        let lanes = width / blocksize;
        let not_b = {
            // The inverted value comes from the NOT output of the sense
            // path: stage b, read it inverted (1 read + 1 write).
            let stage = self.trd + 1;
            dbc.write_row(stage, b, meter)?;
            let read = dbc.read_row(stage, meter)?;
            !&read
        };
        let ones = Row::pack(width, blocksize, &vec![1u64; lanes]);
        if self.max_add_operands() >= 3 {
            adder.add_rows_at(dbc, &[a.clone(), not_b, ones], 1, blocksize, meter)
        } else {
            // TRD = 3: two chained 2-operand adds.
            let t = adder.add_rows_at(dbc, &[a.clone(), not_b], 1, blocksize, meter)?;
            adder.add_rows_at(dbc, &[t, ones], 1, blocksize, meter)
        }
    }

    /// Lane-wise `a ≥ b` (0/1 per lane): the borrow bit of a double-width
    /// subtraction. Requires `2 × blocksize` lanes to fit the row.
    ///
    /// # Errors
    ///
    /// Returns block-size/capacity errors.
    pub fn compare_ge(
        &self,
        dbc: &mut Dbc,
        a: &Row,
        b: &Row,
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        let wide = 2 * blocksize;
        crate::add::validate_blocksize(wide, dbc.width())?;
        let width = dbc.width();
        // Re-pack the operands into double-width lanes, zero-extended.
        let av = a.unpack(blocksize);
        let bv = b.unpack(blocksize);
        let lanes = width / wide;
        let a_wide = Row::pack(width, wide, &av[..lanes.min(av.len())]);
        // 2^bs - 1 - b per wide lane.
        let mask = (1u64 << blocksize) - 1;
        let nb: Vec<u64> = bv.iter().take(lanes).map(|&v| mask - v).collect();
        let b_wide = Row::pack(width, wide, &nb);
        let ones = Row::pack(width, wide, &vec![1u64; lanes]);

        let adder = MultiOperandAdder::with_trd(self.trd);
        let sum = if self.max_add_operands() >= 3 {
            adder.add_rows_at(dbc, &[a_wide, b_wide, ones], 1, wide, meter)?
        } else {
            let t = adder.add_rows_at(dbc, &[a_wide, b_wide], 1, wide, meter)?;
            adder.add_rows_at(dbc, &[t, ones], 1, wide, meter)?
        };
        // Bit `blocksize` of each wide lane is the >= flag.
        let flags: Vec<u64> = sum
            .unpack(wide)
            .into_iter()
            .map(|v| v >> blocksize & 1)
            .collect();
        Ok(Row::pack(width, wide, &flags))
    }

    /// Lane-wise minimum across up to TRD candidate rows:
    /// `NOT (max (NOT c_i))`, using the inverted sense path around the
    /// TW max function.
    ///
    /// # Errors
    ///
    /// As [`MaxExecutor::max_rows`].
    pub fn min_rows(
        &self,
        dbc: &mut Dbc,
        candidates: &[Row],
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        let maxer = MaxExecutor::new(&probe_config(dbc, self.trd));
        let inverted: Vec<Row> = candidates.iter().map(|c| !c).collect();
        // The inversions ride the NOT path during placement: one extra
        // cycle per candidate.
        meter.charge(coruscant_racetrack::Cost::cycles(candidates.len() as u64));
        let inv_max = maxer.max_rows(dbc, &inverted, blocksize, meter)?;
        Ok(!&inv_max)
    }

    /// Sums an arbitrary number of rows lane-wise (mod `2^blocksize`)
    /// with carry-save `TRD → 3` reductions followed by one chained
    /// addition — the paper's accelerated "large cardinality addition".
    ///
    /// # Errors
    ///
    /// Returns capacity errors if the DBC cannot stage the rows
    /// (`rows.len()` beyond the pool) or block-size/memory errors.
    pub fn sum_rows(
        &self,
        dbc: &mut Dbc,
        rows: &[Row],
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        crate::add::validate_blocksize(blocksize, dbc.width())?;
        if rows.is_empty() {
            return Err(PimError::TooFewOperands {
                requested: 0,
                min: 1,
            });
        }
        if rows.len() == 1 {
            return Ok(rows[0].clone());
        }
        let adder = MultiOperandAdder::with_trd(self.trd);
        let reducer = CsaReducer::new(self.trd);
        let max_ops = self.max_add_operands();
        let window_base = 1;
        let pool = self.trd + 1;
        let pool_slots = dbc.rows() - pool;

        // Work queue of row VALUES; reductions run in the window, spilled
        // inputs stage through the pool in batches.
        let mut pending: Vec<Row> = rows.to_vec();
        while pending.len() > max_ops {
            let t = self.trd.min(pending.len());
            if t < 3 || pool_slots == 0 {
                break;
            }
            // Stage t rows into the window (one write each after align).
            let chunk: Vec<Row> = pending.drain(..t).collect();
            for (i, r) in chunk.iter().enumerate() {
                dbc.write_row(window_base + i, r, meter)?;
            }
            let zero = Row::zeros(dbc.width());
            for s in t..self.trd {
                dbc.write_row(window_base + s, &zero, meter)?;
            }
            let out = reducer.reduce(dbc, window_base, t, blocksize, meter)?;
            for r in out.rows() {
                pending.insert(0, dbc.peek_row(r)?);
            }
        }
        // Final chained additions.
        let mut acc: Option<Row> = None;
        while !pending.is_empty() || acc.as_ref().is_some_and(|_| false) {
            let reserved = usize::from(acc.is_some());
            let take = (max_ops - reserved).min(pending.len());
            if take == 0 {
                break;
            }
            let mut ops: Vec<Row> = Vec::with_capacity(max_ops);
            if let Some(a) = acc.take() {
                ops.push(a);
            }
            ops.extend(pending.drain(..take));
            acc = Some(if ops.len() == 1 {
                ops.pop().expect("nonempty")
            } else {
                adder.add_rows_at(dbc, &ops, 1, blocksize, meter)?
            });
        }
        acc.ok_or(PimError::TooFewOperands {
            requested: 0,
            min: 1,
        })
    }

    /// Dot product of two packed vectors: lane-parallel multiplication
    /// followed by a carry-save accumulation of the products.
    ///
    /// # Errors
    ///
    /// Returns width/capacity errors if a value exceeds `bits` or the
    /// vectors do not fit the row.
    pub fn dot(
        &self,
        dbc: &mut Dbc,
        a: &[u64],
        b: &[u64],
        bits: usize,
        meter: &mut CostMeter,
    ) -> Result<u64> {
        let mult = Multiplier::new(&probe_config(dbc, self.trd));
        let products = mult.multiply_values(dbc, a, b, bits, meter)?;
        // Accumulate the products in 2*bits-wide lanes via sum_rows, one
        // product per row (lane 0).
        let lane = (2 * bits).max(8).next_power_of_two();
        let wide = (lane * 2).clamp(32, 64); // headroom for the sum
        let rows: Vec<Row> = products
            .iter()
            .map(|&p| Row::pack(dbc.width(), wide, &[p]))
            .collect();
        let total = self.sum_rows(dbc, &rows, wide, meter)?;
        Ok(total.unpack(wide)[0])
    }

    /// Reference lane-wise subtraction (oracle).
    pub fn reference_sub(a: &Row, b: &Row, blocksize: usize) -> Row {
        let mask = if blocksize == 64 {
            u64::MAX
        } else {
            (1u64 << blocksize) - 1
        };
        let vals: Vec<u64> = a
            .unpack(blocksize)
            .into_iter()
            .zip(b.unpack(blocksize))
            .map(|(x, y)| x.wrapping_sub(y) & mask)
            .collect();
        Row::pack(a.width(), blocksize, &vals)
    }
}

/// Rebuilds a minimal config describing an existing DBC (the executors
/// only read `trd` and `nanowires_per_dbc`).
fn probe_config(dbc: &Dbc, trd: usize) -> MemoryConfig {
    let mut c = MemoryConfig::tiny().with_trd(trd);
    c.nanowires_per_dbc = dbc.width();
    c.rows_per_dbc = dbc.rows();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(trd: usize) -> (Dbc, ArithmeticUnit) {
        let config = MemoryConfig::tiny().with_trd(trd);
        (Dbc::pim_enabled(&config), ArithmeticUnit::new(&config))
    }

    #[test]
    fn subtraction_matches_reference() {
        for trd in [3usize, 5, 7] {
            let (mut dbc, unit) = setup(trd);
            let a = Row::pack(64, 8, &[200, 5, 0, 255, 100, 1, 128, 77]);
            let b = Row::pack(64, 8, &[55, 9, 0, 255, 101, 255, 128, 7]);
            let got = unit
                .subtract(&mut dbc, &a, &b, 8, &mut CostMeter::new())
                .unwrap();
            assert_eq!(got, ArithmeticUnit::reference_sub(&a, &b, 8), "trd {trd}");
        }
    }

    #[test]
    fn subtraction_wraps_like_twos_complement() {
        let (mut dbc, unit) = setup(7);
        let a = Row::pack(64, 8, &[0; 8]);
        let b = Row::pack(64, 8, &[1; 8]);
        let got = unit
            .subtract(&mut dbc, &a, &b, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.unpack(8), vec![0xFF; 8]);
    }

    #[test]
    fn compare_ge_all_orderings() {
        let (mut dbc, unit) = setup(7);
        let a = Row::pack(64, 8, &[5, 9, 200, 0]);
        let b = Row::pack(64, 8, &[5, 10, 100, 1]);
        let got = unit
            .compare_ge(&mut dbc, &a, &b, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.unpack(16), vec![1, 0, 1, 0]);
    }

    #[test]
    fn compare_ge_at_trd3() {
        let (mut dbc, unit) = setup(3);
        let a = Row::pack(64, 8, &[17, 0, 255, 128]);
        let b = Row::pack(64, 8, &[17, 1, 0, 129]);
        let got = unit
            .compare_ge(&mut dbc, &a, &b, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got.unpack(16), vec![1, 0, 1, 0]);
    }

    #[test]
    fn min_is_dual_of_max() {
        let (mut dbc, unit) = setup(7);
        let candidates = vec![
            Row::pack(64, 8, &[9, 200, 3, 255, 0, 13, 100, 50]),
            Row::pack(64, 8, &[10, 100, 3, 254, 1, 12, 101, 50]),
            Row::pack(64, 8, &[8, 150, 4, 253, 2, 14, 99, 51]),
        ];
        let got = unit
            .min_rows(&mut dbc, &candidates, 8, &mut CostMeter::new())
            .unwrap();
        let want: Vec<u64> = (0..8)
            .map(|l| candidates.iter().map(|c| c.unpack(8)[l]).min().unwrap())
            .collect();
        assert_eq!(got.unpack(8), want);
    }

    #[test]
    fn sum_of_many_rows() {
        for trd in [3usize, 5, 7] {
            let (mut dbc, unit) = setup(trd);
            let rows: Vec<Row> = (1..=20u64)
                .map(|k| Row::pack(64, 16, &[k, 100 * k, 7, 1]))
                .collect();
            let got = unit
                .sum_rows(&mut dbc, &rows, 16, &mut CostMeter::new())
                .unwrap();
            let s: u64 = (1..=20).sum();
            assert_eq!(got.unpack(16)[0], s, "trd {trd}");
            assert_eq!(got.unpack(16)[1], (100 * s) & 0xFFFF);
            assert_eq!(got.unpack(16)[2], 7 * 20);
        }
    }

    #[test]
    fn sum_rows_edge_cases() {
        let (mut dbc, unit) = setup(7);
        let single = vec![Row::pack(64, 8, &[42; 8])];
        assert_eq!(
            unit.sum_rows(&mut dbc, &single, 8, &mut CostMeter::new())
                .unwrap(),
            single[0]
        );
        assert!(matches!(
            unit.sum_rows(&mut dbc, &[], 8, &mut CostMeter::new()),
            Err(PimError::TooFewOperands { .. })
        ));
    }

    #[test]
    fn carry_save_accumulation_beats_chained_adds() {
        // The §III-D3 claim: reductions accelerate large sums.
        let rows: Vec<Row> = (1..=30u64).map(|k| Row::pack(64, 16, &[k; 4])).collect();
        let (mut dbc, unit) = setup(7);
        let mut m_csa = CostMeter::new();
        unit.sum_rows(&mut dbc, &rows, 16, &mut m_csa).unwrap();

        // Chained 5-op adds only (simulate by summing in chunks without
        // the reducer).
        let (mut dbc2, _) = setup(7);
        let adder = MultiOperandAdder::with_trd(7);
        let mut m_add = CostMeter::new();
        let mut acc: Option<Row> = None;
        let mut pending = rows.clone();
        while !pending.is_empty() {
            let reserved = usize::from(acc.is_some());
            let take = (5 - reserved).min(pending.len());
            let mut ops = Vec::new();
            if let Some(a) = acc.take() {
                ops.push(a);
            }
            ops.extend(pending.drain(..take));
            acc = Some(if ops.len() == 1 {
                ops.pop().unwrap()
            } else {
                adder
                    .add_rows_at(&mut dbc2, &ops, 1, 16, &mut m_add)
                    .unwrap()
            });
        }
        let want: u64 = (1..=30).sum();
        assert_eq!(acc.unwrap().unpack(16)[0], want);
        assert!(
            m_csa.total().cycles < m_add.total().cycles,
            "csa {} vs chained {}",
            m_csa.total().cycles,
            m_add.total().cycles
        );
    }

    #[test]
    fn dot_product() {
        let (mut dbc, unit) = setup(7);
        let a = [3u64, 5, 7, 11];
        let b = [2u64, 4, 6, 8];
        let got = unit
            .dot(&mut dbc, &a, &b, 8, &mut CostMeter::new())
            .unwrap();
        let want: u64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(got, want);
    }
}
