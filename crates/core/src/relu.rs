//! ReLU via predicated row refresh (paper §IV-C).
//!
//! The fully-connected layer ends with `ReLU(Wx + b)`: values whose sign
//! bit is `1` (negative in two's complement) are replaced with zero. In
//! CORUSCANT this is a predicated row refresh keyed on the MSB of each
//! lane: the row is read, lanes with a set MSB are reset in the row
//! buffer, and the row is written back.

use crate::Result;
use coruscant_mem::{Dbc, Row};
use coruscant_racetrack::CostMeter;

/// Applies ReLU to row `r` of a DBC, treating it as signed two's-complement
/// lanes of `blocksize` bits. Cost: one row read plus one row write (plus
/// alignment shifts).
///
/// Returns the rectified row.
///
/// # Errors
///
/// Returns a block-size or memory error.
pub fn relu_row(dbc: &mut Dbc, r: usize, blocksize: usize, meter: &mut CostMeter) -> Result<Row> {
    crate::add::validate_blocksize(blocksize, dbc.width())?;
    let word = dbc.read_row(r, meter)?;
    let rectified = relu_reference(&word, blocksize);
    dbc.write_row(r, &rectified, meter)?;
    Ok(rectified)
}

/// Pure ReLU on a packed row (oracle): lanes whose MSB is set become zero.
pub fn relu_reference(row: &Row, blocksize: usize) -> Row {
    let lanes = row.width() / blocksize;
    let mut out = row.clone();
    for l in 0..lanes {
        let msb = l * blocksize + blocksize - 1;
        if row.get(msb).unwrap_or(false) {
            for w in l * blocksize..(l + 1) * blocksize {
                out.set(w, false);
            }
        }
    }
    out
}

/// Interprets an unsigned lane value as signed two's complement of
/// `blocksize` bits (test helper for the signed semantics).
pub fn lane_as_signed(value: u64, blocksize: usize) -> i64 {
    debug_assert!(blocksize <= 64);
    let shift = 64 - blocksize;
    ((value << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_mem::MemoryConfig;

    #[test]
    fn negative_lanes_become_zero() {
        // 8-bit lanes: 0x80..0xFF are negative.
        let vals = [5u64, 0x80, 0xFF, 0x7F, 0, 0xC3, 1, 0xFE];
        let row = Row::pack(64, 8, &vals);
        let got = relu_reference(&row, 8).unpack(8);
        for (l, &v) in vals.iter().enumerate() {
            let want = if lane_as_signed(v, 8) < 0 { 0 } else { v };
            assert_eq!(got[l], want, "lane {l}");
        }
    }

    #[test]
    fn device_level_relu() {
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::pim_enabled(&config);
        let vals = [0x90u64, 3, 0x7F, 0xFF, 0, 0x81, 100, 200];
        dbc.poke_row(4, &Row::pack(64, 8, &vals)).unwrap();
        let mut m = CostMeter::new();
        let got = relu_row(&mut dbc, 4, 8, &mut m).unwrap();
        assert_eq!(got, relu_reference(&Row::pack(64, 8, &vals), 8));
        assert_eq!(dbc.peek_row(4).unwrap(), got, "written back in place");
        assert!(m.total().cycles >= 2);
    }

    #[test]
    fn positive_rows_unchanged() {
        let row = Row::pack(64, 16, &[1, 0x7FFF, 0, 1234]);
        assert_eq!(relu_reference(&row, 16), row);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(lane_as_signed(0xFF, 8), -1);
        assert_eq!(lane_as_signed(0x80, 8), -128);
        assert_eq!(lane_as_signed(0x7F, 8), 127);
        assert_eq!(lane_as_signed(0xFFFF, 16), -1);
    }
}
