//! The PIM program/job model: a sequence of [`Step`]s (data loads, `cpim`
//! instructions, result readouts) with explicit data placement.
//!
//! Programs are what clients hand to the execution runtime: the compiler
//! (or a user) builds a [`PimProgram`], and either [`execute`] replays it
//! on a fresh [`PimMachine`] or the
//! `coruscant-runtime` scheduler retargets it onto a PIM unit and runs it
//! bank-parallel (paper §V-C). Placement is first-class: a program can be
//! [retargeted](PimProgram::retarget) onto any PIM-enabled DBC, and its
//! [target banks](PimProgram::target_banks) tell the scheduler which bank
//! FIFOs it occupies.

use crate::dispatch::PimMachine;
use crate::isa::CpimInstr;
use crate::Result;
use coruscant_mem::{DbcLocation, MemoryConfig, Row, RowAddress};
use coruscant_racetrack::CostMeter;
use serde::{Deserialize, Serialize};

/// One program step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Load lane-packed values into a row before the next instruction.
    Load {
        /// Destination row.
        addr: RowAddress,
        /// Lane-packed values.
        values: Vec<u64>,
        /// Lane width in bits.
        lane: usize,
    },
    /// Execute a `cpim` instruction.
    Exec(CpimInstr),
    /// Read a result row out and record it under a label.
    Readout {
        /// Result label.
        label: String,
        /// Source row.
        addr: RowAddress,
        /// Lane width for unpacking.
        lane: usize,
    },
}

impl Step {
    /// The DBC this step touches (the source DBC for instructions).
    pub fn target(&self) -> DbcLocation {
        match self {
            Step::Load { addr, .. } | Step::Readout { addr, .. } => addr.location,
            Step::Exec(i) => i.src.location,
        }
    }

    /// The same step re-placed onto `location`, preserving row offsets.
    /// Instruction destinations move with the source.
    pub fn retarget(&self, location: DbcLocation) -> Step {
        let mv = |a: &RowAddress| RowAddress::new(location, a.row);
        match self {
            Step::Load { addr, values, lane } => Step::Load {
                addr: mv(addr),
                values: values.clone(),
                lane: *lane,
            },
            Step::Exec(i) => {
                let mut i = *i;
                i.src = mv(&i.src);
                i.dst = i.dst.map(|d| mv(&d));
                Step::Exec(i)
            }
            Step::Readout { label, addr, lane } => Step::Readout {
                label: label.clone(),
                addr: mv(addr),
                lane: *lane,
            },
        }
    }
}

/// A compiled PIM program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PimProgram {
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl PimProgram {
    /// The program's `cpim` instructions in order, skipping loads and
    /// readouts (data movement, not instructions). The single source of
    /// truth behind [`instruction_count`](PimProgram::instruction_count),
    /// [`estimated_device_cycles`](PimProgram::estimated_device_cycles)
    /// and [`encode_instructions`](PimProgram::encode_instructions).
    pub fn instructions(&self) -> impl Iterator<Item = &CpimInstr> {
        self.steps.iter().filter_map(|s| match s {
            Step::Exec(i) => Some(i),
            _ => None,
        })
    }

    /// Number of `cpim` instructions in the program.
    pub fn instruction_count(&self) -> usize {
        self.instructions().count()
    }

    /// Whether the program has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The program with every step re-placed onto `location` (data
    /// placement: operands, instructions, and readouts move together so
    /// the program runs self-contained on one PIM unit).
    #[must_use]
    pub fn retarget(&self, location: DbcLocation) -> PimProgram {
        PimProgram {
            steps: self.steps.iter().map(|s| s.retarget(location)).collect(),
        }
    }

    /// The distinct banks this program's steps touch, ascending.
    pub fn target_banks(&self) -> Vec<usize> {
        let mut banks: Vec<usize> = self.steps.iter().map(|s| s.target().bank).collect();
        banks.sort_unstable();
        banks.dedup();
        banks
    }

    /// Coarse planning estimate of the program's internal PIM latency in
    /// device cycles (the sum of its instructions' estimates; loads and
    /// readouts are data movement accounted at the controller).
    pub fn estimated_device_cycles(&self, trd: usize) -> u64 {
        self.instructions()
            .map(|i| i.estimated_device_cycles(trd))
            .sum()
    }

    /// Encodes the instruction stream to its 64-bit trace form (loads and
    /// readouts are data movement, not instructions).
    pub fn encode_instructions(&self) -> Vec<u64> {
        self.instructions().map(|i| i.encode()).collect()
    }

    /// Decodes a trace back into instructions.
    ///
    /// # Errors
    ///
    /// Returns an ISA error on malformed words.
    pub fn decode_instructions(words: &[u64]) -> Result<Vec<CpimInstr>> {
        words.iter().map(|&w| CpimInstr::decode(w)).collect()
    }
}

/// The outcome of executing a program.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProgramOutcome {
    /// Labeled readouts, in program order.
    pub outputs: Vec<(String, Vec<u64>)>,
    /// Total device cycles across the instructions.
    pub device_cycles: u64,
    /// Controller completion time (memory cycles).
    pub completion: u64,
}

/// Executes a program on a fresh machine.
///
/// # Errors
///
/// Propagates placement and execution errors.
pub fn execute(program: &PimProgram, config: &MemoryConfig) -> Result<ProgramOutcome> {
    let mut machine = PimMachine::new(config.clone());
    execute_on(program, &mut machine)
}

/// Executes a program on an existing machine (the runtime's shard
/// executors reuse one machine across many programs).
///
/// # Errors
///
/// Propagates placement and execution errors.
pub fn execute_on(program: &PimProgram, machine: &mut PimMachine) -> Result<ProgramOutcome> {
    let mut meter = CostMeter::new();
    let width = machine.controller().config().nanowires_per_dbc;
    let mut outputs = Vec::new();
    let mut device_cycles = 0;
    let mut completion = 0;
    for step in &program.steps {
        match step {
            Step::Load { addr, values, lane } => {
                let row = Row::pack(width, *lane, values);
                machine
                    .controller_mut()
                    .store_row(*addr, &row, &mut meter)?;
            }
            Step::Exec(instr) => {
                let out = machine.execute(instr)?;
                device_cycles += out.cost.cycles;
                completion = completion.max(out.completion);
            }
            Step::Readout { label, addr, lane } => {
                let row = machine.controller_mut().load_row(*addr, &mut meter)?;
                outputs.push((label.clone(), row.unpack(*lane)));
            }
        }
    }
    Ok(ProgramOutcome {
        outputs,
        device_cycles,
        completion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BlockSize, CpimOpcode};

    fn sample_program(loc: DbcLocation) -> PimProgram {
        let bs = BlockSize::new(8).unwrap();
        PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc, 4),
                    values: vec![3; 8],
                    lane: 8,
                },
                Step::Load {
                    addr: RowAddress::new(loc, 5),
                    values: vec![4; 8],
                    lane: 8,
                },
                Step::Exec(
                    CpimInstr::new(
                        CpimOpcode::Add,
                        RowAddress::new(loc, 4),
                        2,
                        bs,
                        Some(RowAddress::new(loc, 20)),
                    )
                    .unwrap(),
                ),
                Step::Readout {
                    label: "sum".into(),
                    addr: RowAddress::new(loc, 20),
                    lane: 8,
                },
            ],
        }
    }

    #[test]
    fn retarget_moves_every_step() {
        let src = DbcLocation::new(0, 0, 0, 0);
        let dst = DbcLocation::new(1, 0, 0, 0);
        let p = sample_program(src).retarget(dst);
        assert_eq!(p.target_banks(), vec![1]);
        for step in &p.steps {
            assert_eq!(step.target(), dst);
        }
        // Instruction destination moved with the source.
        let Step::Exec(i) = &p.steps[2] else {
            panic!("expected exec")
        };
        assert_eq!(i.dst.unwrap().location, dst);
        assert_eq!(i.dst.unwrap().row, 20, "row offsets preserved");
    }

    #[test]
    fn retargeted_program_computes_the_same_result() {
        let config = MemoryConfig::tiny();
        let a = execute(&sample_program(DbcLocation::new(0, 0, 0, 0)), &config).unwrap();
        let b = execute(
            &sample_program(DbcLocation::new(0, 0, 0, 0)).retarget(DbcLocation::new(1, 0, 0, 0)),
            &config,
        )
        .unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.outputs[0].1[0], 7);
        assert_eq!(a.device_cycles, b.device_cycles);
    }

    #[test]
    fn estimated_cycles_are_positive_for_instructions() {
        let p = sample_program(DbcLocation::new(0, 0, 0, 0));
        assert!(p.estimated_device_cycles(7) > 0);
        assert_eq!(PimProgram::default().estimated_device_cycles(7), 0);
    }

    #[test]
    fn program_estimate_is_pinned_to_instruction_estimates() {
        // The program-level estimate must stay the sum of the
        // instruction-level estimates for every opcode and TRD — the two
        // views share one instruction iterator and must never drift.
        use CpimOpcode::*;
        let loc = DbcLocation::new(0, 0, 0, 0);
        let bs = BlockSize::new(8).unwrap();
        let steps: Vec<Step> = [
            And, Nand, Or, Nor, Xor, Xnor, Not, Add, Reduce, Mult, Max, Relu, Vote, Copy, Sub, Min,
        ]
        .into_iter()
        .map(|op| {
            let operands = match op {
                Not | Relu | Copy => 1,
                Vote => 3,
                _ => 2,
            };
            Step::Exec(
                CpimInstr::new(
                    op,
                    RowAddress::new(loc, 4),
                    operands,
                    bs,
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            )
        })
        .collect();
        let program = PimProgram { steps };
        for trd in [3, 5, 7] {
            let per_instr: u64 = program
                .instructions()
                .map(|i| i.estimated_device_cycles(trd))
                .sum();
            assert_eq!(program.estimated_device_cycles(trd), per_instr, "trd={trd}");
            assert!(per_instr > 0);
        }
        assert_eq!(program.instruction_count(), 16);
        assert_eq!(program.encode_instructions().len(), 16);
    }
}
