//! Two-operand multiplication (paper §III-D).
//!
//! CORUSCANT multiplies by summing shifted copies of the multiplicand:
//!
//! * **Constant multiplication** ([`constant`]) recodes a compile-time
//!   multiplier in canonical signed digits and resolves it in a handful of
//!   grouped additions.
//! * **Arbitrary multiplication** generates one partial product per
//!   multiplier bit (a shifted copy of `A`, zeroed per lane where the
//!   corresponding bit of `B` is `0` — the predicated copy of §III-D2)
//!   and sums the survivors with repeated multi-operand additions.
//! * **Optimized multiplication** ([`csa`]) instead collapses the partial
//!   products with O(1) carry-save `7 → 3` reductions until at most
//!   `TRD − 2` remain, then performs a single chained addition — making
//!   multiplication O(n) instead of O(n log n) in operand width.

pub mod constant;
pub mod csa;

pub use constant::{csd_digits, csd_terms, ConstantMultiplier, ConstantPlan, CsdTerm};
pub use csa::{CsaReducer, Reduced};

use crate::add::MultiOperandAdder;
use crate::shift_logic::shift_row_left;
use crate::{PimError, Result};
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::CostMeter;
use serde::{Deserialize, Serialize};

/// Partial-product summation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultStrategy {
    /// Repeated multi-operand additions over the retained partial
    /// products (paper §III-D2).
    Arbitrary,
    /// Carry-save `7 → 3` reductions, then one final addition
    /// (paper §III-D3).
    CarrySave,
}

/// Executes two-operand multiplications on a PIM-enabled DBC.
///
/// Operands are packed integers of `bits` bits living in lanes of
/// `2 × bits` so the full product fits. The DBC scratch layout uses row 0
/// as the super-carry landing slot, rows `1..=trd` as the reduction/add
/// window, and rows above that for the partial-product pool.
#[derive(Debug, Clone)]
pub struct Multiplier {
    trd: usize,
    strategy: MultStrategy,
}

impl Multiplier {
    /// Creates a carry-save multiplier for the configuration's TRD.
    pub fn new(config: &MemoryConfig) -> Multiplier {
        Multiplier {
            trd: config.trd,
            strategy: MultStrategy::CarrySave,
        }
    }

    /// Selects the summation strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: MultStrategy) -> Multiplier {
        self.strategy = strategy;
        self
    }

    /// The configured TRD.
    pub fn trd(&self) -> usize {
        self.trd
    }

    /// The active strategy.
    pub fn strategy(&self) -> MultStrategy {
        self.strategy
    }

    fn max_add_operands(&self) -> usize {
        if self.trd <= 3 {
            self.trd - 1
        } else {
            self.trd - 2
        }
    }

    /// Multiplies lane-packed operands: `a` and `b` hold `bits`-bit values
    /// in `2 × bits`-bit lanes; the returned row holds the full products
    /// in the same lanes.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::WidthOverflow`] if the values exceed `bits`,
    /// [`PimError::NotPim`], a block-size error, or a memory error.
    pub fn multiply_packed(
        &self,
        dbc: &mut Dbc,
        a: &Row,
        b: &Row,
        bits: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        let lane = 2 * bits;
        crate::add::validate_blocksize(lane, dbc.width())?;
        if !dbc.is_pim() {
            return Err(PimError::NotPim);
        }
        for (lane_idx, v) in a
            .unpack(lane)
            .iter()
            .chain(b.unpack(lane).iter())
            .enumerate()
        {
            if bits < 64 && *v >> bits != 0 {
                let _ = lane_idx;
                return Err(PimError::WidthOverflow { bits, lane: bits });
            }
        }

        // ---- Partial-product generation (§III-D2) ----
        // Scratch layout: window rows 1..=trd reserved; PP pool above.
        let pool = self.trd + 1;
        let n = bits;
        if pool + n + 1 > dbc.rows() {
            return Err(PimError::Mem(coruscant_mem::MemError::RowOutOfRange {
                row: pool + n,
                rows: dbc.rows(),
            }));
        }
        // A arrives through the row buffer and is held at the drivers;
        // each partial product is one shifted write through the
        // neighbour-forwarding interconnect (brown paths of Fig. 4a), with
        // the predicated zeroing on B's bit applied in the row buffer
        // before write-back. Cost per PP: one DW alignment shift plus one
        // (shifted, predicated) write — the paper's "k shifted read and
        // write operations and k DW shifts" accounting.
        let b_lanes = b.unpack(lane);
        let mut cur = a.clone();
        for i in 0..n {
            let mut masked = cur.clone();
            for (l, bv) in b_lanes.iter().enumerate() {
                if bv >> i & 1 == 0 {
                    for w in l * lane..(l + 1) * lane {
                        masked.set(w, false);
                    }
                }
            }
            dbc.write_row(pool + i, &masked, meter)?;
            cur = shift_row_left(&cur, 1, lane);
        }

        let mut live: Vec<usize> = (pool..pool + n).collect();

        // ---- Summation ----
        match self.strategy {
            MultStrategy::CarrySave => {
                self.reduce_with_csa(dbc, &mut live, lane, meter)?;
            }
            MultStrategy::Arbitrary => { /* handled below by the adder */ }
        }

        // Final (or repeated, for Arbitrary) multi-operand additions. The
        // partial sum parks in a dedicated slot above the pool; it is
        // always re-consumed at the head of the next chunk, so rewriting
        // the slot never clobbers live data.
        let adder = MultiOperandAdder::with_trd(self.trd);
        let max_ops = self.max_add_operands();
        let slot = pool + n;
        while live.len() > 1 {
            let take = max_ops.min(live.len());
            let mut chunk = Vec::with_capacity(take);
            for r in live.drain(..take) {
                chunk.push(dbc.read_row(r, meter)?);
            }
            // Confine the addition's scratch rows to the reserved window
            // (rows 1..=trd) so the live pool rows survive.
            let sum = adder.add_rows_at(dbc, &chunk, 1, lane, meter)?;
            dbc.write_row(slot, &sum, meter)?;
            live.insert(0, slot);
        }
        let result_row = live[0];
        dbc.peek_row(result_row).map_err(PimError::from)
    }

    /// Collapses the live rows with carry-save reductions until at most
    /// `TRD − 2` remain.
    fn reduce_with_csa(
        &self,
        dbc: &mut Dbc,
        live: &mut Vec<usize>,
        lane: usize,
        meter: &mut CostMeter,
    ) -> Result<()> {
        let reducer = CsaReducer::new(self.trd);
        let max_ops = self.max_add_operands();
        while live.len() > max_ops {
            let t = self.trd.min(live.len());
            if t < 3 {
                break;
            }
            // Fast path: a full window of contiguous live rows (with the
            // super-carry landing row free below it) reduces in place with
            // no data movement — the common case right after partial-
            // product generation, where the pool is contiguous.
            let in_place = t == self.trd
                && live[..t].windows(2).all(|w| w[1] == w[0] + 1)
                && live[0] >= 1
                && !live.contains(&(live[0] - 1));
            let (base, t) = if in_place {
                let b = live[0];
                live.drain(..t);
                (b, t)
            } else {
                // Overlap-aware gather: choose the window position whose
                // span already contains the most chosen rows, so only the
                // stragglers pay a read/write move. The window must not
                // clobber surviving live rows and its super-carry landing
                // slot (base − 1) must be free.
                let chosen: Vec<usize> = live.drain(..t).collect();
                let base = self.best_window(dbc.rows(), &chosen, live);
                let span = base..base + self.trd;
                // Slot occupancy: chosen rows inside the window keep their
                // position; movers fill the free slots.
                let mut occupied = vec![false; self.trd];
                let mut movers = Vec::new();
                for &r in &chosen {
                    if span.contains(&r) {
                        occupied[r - base] = true;
                    } else {
                        movers.push(r);
                    }
                }
                let mut free: Vec<usize> = (0..self.trd).filter(|&s| !occupied[s]).collect();
                free.reverse(); // pop() hands slots out in ascending order
                for r in movers {
                    let s = free.pop().expect("window has room for every mover");
                    let data = dbc.read_row(r, meter)?;
                    dbc.write_row(base + s, &data, meter)?;
                    occupied[s] = true;
                }
                // Zero any slot no operand landed in (one write each).
                let zero = Row::zeros(dbc.width());
                for (s, filled) in occupied.iter().enumerate() {
                    if !filled {
                        dbc.write_row(base + s, &zero, meter)?;
                    }
                }
                // With zero padding the reduction spans the full window.
                (base, self.trd)
            };
            let out = reducer.reduce(dbc, base, t, lane, meter)?;
            // Outputs go to the FRONT of the live list so the next
            // reduction consumes them first — this guarantees the C'
            // landing row is re-read before any later reduction overwrites
            // it.
            for r in out.rows().into_iter().rev() {
                live.insert(0, r);
            }
        }
        Ok(())
    }

    /// Picks the reduction-window base that overlaps the most chosen rows
    /// while keeping surviving live rows and the super-carry slot
    /// (`base − 1`) out of harm's way. Falls back to the fixed scratch
    /// window when no position qualifies.
    fn best_window(&self, rows: usize, chosen: &[usize], remaining: &[usize]) -> usize {
        let fixed = 1usize;
        let mut best = fixed;
        let mut best_hits = 0usize;
        for b in 1..=rows.saturating_sub(self.trd) {
            let span = b..b + self.trd;
            // The window must not clobber surviving live rows, and the C'
            // landing slot must not hold one either.
            if remaining.iter().any(|r| span.contains(r) || *r + 1 == b) {
                continue;
            }
            let hits = chosen.iter().filter(|r| span.contains(r)).count();
            if hits > best_hits {
                best_hits = hits;
                best = b;
            }
        }
        // The fallback must also be safe; the fixed window's span only
        // holds scratch rows in the layouts this multiplier builds, but
        // verify against survivors anyway.
        if best == fixed {
            let span = fixed..fixed + self.trd;
            if remaining
                .iter()
                .any(|r| span.contains(r) || *r + 1 == fixed)
            {
                // Find the first safe position (always exists: the pool
                // region above the survivors).
                for b in 1..=rows.saturating_sub(self.trd) {
                    let span = b..b + self.trd;
                    if !remaining.iter().any(|r| span.contains(r) || *r + 1 == b) {
                        return b;
                    }
                }
            }
        }
        best
    }

    /// Convenience: multiplies slices of values, packing them into lanes
    /// of `2 × bits` across as many rows as needed (here: one row).
    ///
    /// # Errors
    ///
    /// As [`Multiplier::multiply_packed`]; also if more values are passed
    /// than fit one row.
    pub fn multiply_values(
        &self,
        dbc: &mut Dbc,
        a: &[u64],
        b: &[u64],
        bits: usize,
        meter: &mut CostMeter,
    ) -> Result<Vec<u64>> {
        let lane = 2 * bits;
        let lanes = dbc.width() / lane;
        if a.len() > lanes || b.len() > lanes || a.len() != b.len() {
            return Err(PimError::WidthOverflow {
                bits: a.len().max(b.len()) * lane,
                lane: dbc.width(),
            });
        }
        let ra = Row::pack(dbc.width(), lane, a);
        let rb = Row::pack(dbc.width(), lane, b);
        let product = self.multiply_packed(dbc, &ra, &rb, bits, meter)?;
        Ok(product.unpack(lane).into_iter().take(a.len()).collect())
    }

    /// Reference product (oracle): lane-wise `a * b` (never overflows the
    /// double-width lane).
    pub fn reference(a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter().zip(b).map(|(&x, &y)| x * y).collect()
    }
}

/// Pure-model partial products of `a * b` for `bits`-bit operands: entry
/// `i` is `a << i` when bit `i` of `b` is set, else zero — the oracle for
/// the predicated-copy stage.
pub fn partial_products(a: &Row, b: &Row, bits: usize, lane: usize) -> Vec<Row> {
    let b_lanes = b.unpack(lane);
    (0..bits)
        .map(|i| {
            let mut pp = shift_row_left(a, i, lane);
            for (l, bv) in b_lanes.iter().enumerate() {
                if bv >> i & 1 == 0 {
                    for w in l * lane..(l + 1) * lane {
                        pp.set(w, false);
                    }
                }
            }
            pp
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(trd: usize) -> (Dbc, Multiplier) {
        let config = MemoryConfig::tiny().with_trd(trd);
        (Dbc::pim_enabled(&config), Multiplier::new(&config))
    }

    #[test]
    fn eight_bit_products_carry_save() {
        let (mut dbc, mult) = setup(7);
        let a = [3u64, 255, 17, 128];
        let b = [5u64, 255, 0, 2];
        let mut m = CostMeter::new();
        let got = mult.multiply_values(&mut dbc, &a, &b, 8, &mut m).unwrap();
        assert_eq!(got, Multiplier::reference(&a, &b));
        assert!(m.total().cycles > 0);
    }

    #[test]
    fn eight_bit_products_arbitrary() {
        let (mut dbc, mult) = setup(7);
        let mult = mult.with_strategy(MultStrategy::Arbitrary);
        let a = [99u64, 200, 1, 77];
        let b = [44u64, 201, 255, 0];
        let got = mult
            .multiply_values(&mut dbc, &a, &b, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, Multiplier::reference(&a, &b));
    }

    #[test]
    fn carry_save_beats_arbitrary_latency() {
        // The O(n) CSA pipeline must be faster than the O(n log n)
        // repeated additions (the core claim of §III-D3).
        let a = [251u64, 13, 99, 255];
        let b = [253u64, 240, 187, 255];
        let (mut dbc, mult) = setup(7);
        let mut m_csa = CostMeter::new();
        mult.multiply_values(&mut dbc, &a, &b, 8, &mut m_csa)
            .unwrap();

        let (mut dbc2, mult2) = setup(7);
        let mult2 = mult2.with_strategy(MultStrategy::Arbitrary);
        let mut m_arb = CostMeter::new();
        mult2
            .multiply_values(&mut dbc2, &a, &b, 8, &mut m_arb)
            .unwrap();

        assert!(
            m_csa.total().cycles < m_arb.total().cycles,
            "csa {} vs arbitrary {}",
            m_csa.total().cycles,
            m_arb.total().cycles
        );
    }

    #[test]
    fn trd3_multiplication_works() {
        let (mut dbc, mult) = setup(3);
        let a = [7u64, 250, 3, 100];
        let b = [9u64, 250, 0, 255];
        let got = mult
            .multiply_values(&mut dbc, &a, &b, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, Multiplier::reference(&a, &b));
    }

    #[test]
    fn trd5_multiplication_works() {
        let (mut dbc, mult) = setup(5);
        let a = [31u64, 2, 255, 64];
        let b = [31u64, 128, 255, 3];
        let got = mult
            .multiply_values(&mut dbc, &a, &b, 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, Multiplier::reference(&a, &b));
    }

    #[test]
    fn latency_ordering_across_trd() {
        // Larger TRD -> fewer reductions -> fewer cycles (Table III:
        // 105 cycles at TRD = 3 vs 64 at TRD = 7).
        let a = [173u64; 4];
        let b = [219u64; 4];
        let mut cycles = Vec::new();
        for trd in [3usize, 5, 7] {
            let (mut dbc, mult) = setup(trd);
            let mut m = CostMeter::new();
            mult.multiply_values(&mut dbc, &a, &b, 8, &mut m).unwrap();
            cycles.push(m.total().cycles);
        }
        assert!(
            cycles[0] > cycles[1] && cycles[1] > cycles[2],
            "cycles by TRD: {cycles:?}"
        );
    }

    #[test]
    fn four_bit_products() {
        let (mut dbc, mult) = setup(7);
        let a: Vec<u64> = (0..8).collect();
        let b: Vec<u64> = (8..16).map(|x| x % 16).collect();
        let got = mult
            .multiply_values(&mut dbc, &a, &b, 4, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, Multiplier::reference(&a, &b));
    }

    #[test]
    fn oversized_operands_rejected() {
        let (mut dbc, mult) = setup(7);
        let err = mult
            .multiply_values(&mut dbc, &[256], &[1], 8, &mut CostMeter::new())
            .unwrap_err();
        assert!(matches!(err, PimError::WidthOverflow { .. }));
    }

    #[test]
    fn partial_products_oracle() {
        let a = Row::pack(64, 16, &[0x00FF, 0x0003, 0, 0]);
        let b = Row::pack(64, 16, &[0x0005, 0x00FF, 0, 0]);
        let pps = partial_products(&a, &b, 8, 16);
        assert_eq!(pps.len(), 8);
        // Sum of PPs equals the product, lane-wise.
        let mut sums = [0u64; 4];
        for pp in &pps {
            for (l, v) in pp.unpack(16).into_iter().enumerate() {
                sums[l] = (sums[l] + v) & 0xFFFF;
            }
        }
        assert_eq!(sums[0], 0xFF * 5);
        assert_eq!(sums[1], 3 * 0xFF);
    }

    #[test]
    fn zero_multiplier_gives_zero() {
        let (mut dbc, mult) = setup(7);
        let got = mult
            .multiply_values(&mut dbc, &[123, 45], &[0, 0], 8, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, vec![0, 0]);
    }
}
