//! Carry-save `7 → 3` operand reduction (paper §III-D3).
//!
//! A classic carry-save adder reduces three operands to two with no carry
//! propagation. The CORUSCANT polymorphic gate generalizes this: one
//! transverse read across up to TRD stacked rows yields, per bitline, the
//! three binary digits of the ones-count — a sum row `S`, a carry row `C`
//! (weight 2, routed one bitline left) and a super-carry row `C'` (weight
//! 4, routed two bitlines left). Seven rows collapse to three in O(1),
//! with **no sequential carry chain**, and the reduction can ingest its own
//! previous outputs until at most `TRD − 2` operands remain for a final
//! chained addition. This is what makes CORUSCANT multiplication O(n).
//!
//! At TRD = 3 the gate degenerates to the classic `3 → 2` carry-save step
//! (no super-carry is possible).
//!
//! Cost: 1 TR + 1 simultaneous `S`/`C` port write + 1 domain shift + 1
//! `C'` write = 4 cycles for TRD ≥ 4 (the paper's 4-cycle O(1) reduction),
//! or 2 cycles for the `3 → 2` step.

use crate::pimblock::PimBlock;
use crate::sense::SenseLevels;
use crate::{PimError, Result};
use coruscant_mem::{Dbc, Row};
use coruscant_racetrack::{CostMeter, PortId};

/// The output rows of one reduction step (DBC row indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reduced {
    /// Row holding the sum bits (weight 1).
    pub s: usize,
    /// Row holding the carry bits (weight 2, already shifted one bitline).
    pub c: usize,
    /// Row holding the super-carry bits (weight 4, already shifted two
    /// bitlines); absent at TRD = 3.
    pub cp: Option<usize>,
}

impl Reduced {
    /// The live output rows as a vector.
    pub fn rows(&self) -> Vec<usize> {
        let mut v = vec![self.s, self.c];
        if let Some(cp) = self.cp {
            v.push(cp);
        }
        v
    }
}

/// Executes carry-save reductions on a PIM-enabled DBC.
#[derive(Debug, Clone)]
pub struct CsaReducer {
    trd: usize,
}

impl CsaReducer {
    /// Creates a reducer for the given TRD.
    pub fn new(trd: usize) -> CsaReducer {
        CsaReducer { trd }
    }

    /// How many rows one reduction consumes (up to TRD) and produces
    /// (3, or 2 at TRD = 3).
    pub fn outputs(&self) -> usize {
        if self.trd >= 4 {
            3
        } else {
            2
        }
    }

    /// Reduces the `t` rows at `base..base + t` to `S`/`C`/`C'` rows:
    /// `S` lands at row `base` (left port), `C` at row `base + trd − 1`
    /// (right port), and `C'` at row `base − 1` (left port after a domain
    /// shift). Unused segment positions `base + t..base + trd − 1` must
    /// hold zeros.
    ///
    /// Carries are routed with the logical-shift interconnect: the carry
    /// computed at bitline `w` lands at bitline `w + 1` of the `C` row
    /// (weight 2) and the super-carry at `w + 2` of the `C'` row, dropped
    /// at `blocksize` lane boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::TooManyOperands`] if `t > trd`,
    /// [`PimError::TooFewOperands`] if `t < 3`, a block-size error, or a
    /// memory error (including `base == 0` at TRD ≥ 4, where the
    /// super-carry row `base − 1` does not exist).
    pub fn reduce(
        &self,
        dbc: &mut Dbc,
        base: usize,
        t: usize,
        blocksize: usize,
        meter: &mut CostMeter,
    ) -> Result<Reduced> {
        crate::add::validate_blocksize(blocksize, dbc.width())?;
        if !dbc.is_pim() {
            return Err(PimError::NotPim);
        }
        if t > self.trd {
            return Err(PimError::TooManyOperands {
                requested: t,
                max: self.trd,
            });
        }
        if t < 3 {
            return Err(PimError::TooFewOperands {
                requested: t,
                min: 3,
            });
        }
        let needs_cp = self.trd >= 4;
        if needs_cp && base == 0 {
            return Err(PimError::Mem(coruscant_mem::MemError::RowOutOfRange {
                row: 0,
                rows: dbc.rows(),
            }));
        }

        // Align the window: row `base` under the left port.
        dbc.align_row(base, PortId::LEFT, meter)?;

        // One parallel transverse read across the window.
        let counts = dbc.transverse_read_all(meter)?;
        let block = PimBlock::new();
        let width = dbc.width();

        let mut s = Row::zeros(width);
        let mut c = Row::zeros(width);
        let mut cp = Row::zeros(width);
        for (w, tr) in counts.iter().enumerate() {
            let o = block.evaluate(SenseLevels::from_tr(*tr));
            if o.sum {
                s.set(w, true);
            }
            // Route carries one/two bitlines over, masked at lane tops.
            let lane_top = (w / blocksize + 1) * blocksize;
            if o.carry && w + 1 < lane_top {
                c.set(w + 1, true);
            }
            if needs_cp && o.super_carry && w + 2 < lane_top {
                cp.set(w + 2, true);
            }
        }

        // Simultaneous S (left port) and C (right port) writes: 1 cycle.
        let mut writes: Vec<(usize, PortId, bool)> = Vec::with_capacity(2 * width);
        for w in 0..width {
            writes.push((w, PortId::LEFT, s.get(w).unwrap()));
            writes.push((w, PortId::RIGHT, c.get(w).unwrap()));
        }
        dbc.write_bits(&writes, meter)?;

        let c_row = base + self.trd - 1;
        if !needs_cp {
            return Ok(Reduced {
                s: base,
                c: c_row,
                cp: None,
            });
        }

        // Shift one domain so the left port covers row base − 1, then
        // write the super-carry row.
        dbc.shift_all(1, meter)?;
        let cp_writes: Vec<(usize, PortId, bool)> = (0..width)
            .map(|w| (w, PortId::LEFT, cp.get(w).unwrap()))
            .collect();
        dbc.write_bits(&cp_writes, meter)?;

        Ok(Reduced {
            s: base,
            c: c_row,
            cp: Some(base - 1),
        })
    }

    /// Reference model: the lane-wise arithmetic sum of the input rows
    /// must equal `S + C + C'` lane-wise (mod `2^blocksize`).
    pub fn reference_sum(rows: &[Row], blocksize: usize) -> Vec<u64> {
        let lanes = rows[0].width() / blocksize;
        let mask = if blocksize == 64 {
            u64::MAX
        } else {
            (1u64 << blocksize) - 1
        };
        let mut sums = vec![0u64; lanes];
        for r in rows {
            for (lane, v) in r.unpack(blocksize).into_iter().enumerate() {
                sums[lane] = sums[lane].wrapping_add(v) & mask;
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_mem::MemoryConfig;

    fn setup(trd: usize) -> (Dbc, CsaReducer) {
        let config = MemoryConfig::tiny().with_trd(trd);
        (Dbc::pim_enabled(&config), CsaReducer::new(trd))
    }

    fn place(dbc: &mut Dbc, base: usize, rows: &[Row], trd: usize) {
        for (i, r) in rows.iter().enumerate() {
            dbc.poke_row(base + i, r).unwrap();
        }
        for i in rows.len()..trd {
            dbc.poke_row(base + i, &Row::zeros(dbc.width())).unwrap();
        }
    }

    #[test]
    fn seven_to_three_preserves_sum() {
        let (mut dbc, red) = setup(7);
        let inputs: Vec<Row> = [
            [200u64, 1, 50, 255, 0, 99, 3, 128],
            [100, 2, 50, 255, 1, 99, 3, 128],
            [55, 3, 50, 255, 2, 99, 3, 128],
            [12, 4, 50, 0, 3, 99, 3, 128],
            [7, 5, 50, 0, 4, 99, 3, 128],
            [3, 6, 50, 0, 5, 99, 3, 128],
            [1, 7, 50, 0, 6, 99, 3, 128],
        ]
        .iter()
        .map(|v| Row::pack(64, 8, v))
        .collect();
        place(&mut dbc, 2, &inputs, 7);
        // Pre-align so the meter sees only the reduction itself (in steady
        // state the window is already at the ports).
        dbc.align_row(2, PortId::LEFT, &mut CostMeter::new())
            .unwrap();
        let mut m = CostMeter::new();
        let out = red.reduce(&mut dbc, 2, 7, 8, &mut m).unwrap();
        assert_eq!(m.total().cycles, 4, "O(1) reduction is 4 cycles");

        let s = dbc.peek_row(out.s).unwrap().unpack(8);
        let c = dbc.peek_row(out.c).unwrap().unpack(8);
        let cp = dbc.peek_row(out.cp.unwrap()).unwrap().unpack(8);
        let want = CsaReducer::reference_sum(&inputs, 8);
        for lane in 0..8 {
            let got = (s[lane] + c[lane] + cp[lane]) & 0xFF;
            assert_eq!(got, want[lane], "lane {lane}");
        }
    }

    #[test]
    fn reduction_accepts_fewer_rows_with_zero_padding() {
        let (mut dbc, red) = setup(7);
        let inputs: Vec<Row> = (1..=4u64).map(|k| Row::pack(64, 8, &[k * 31; 8])).collect();
        place(&mut dbc, 3, &inputs, 7);
        let out = red
            .reduce(&mut dbc, 3, 4, 8, &mut CostMeter::new())
            .unwrap();
        let s = dbc.peek_row(out.s).unwrap().unpack(8);
        let c = dbc.peek_row(out.c).unwrap().unpack(8);
        let cp = dbc.peek_row(out.cp.unwrap()).unwrap().unpack(8);
        let want = CsaReducer::reference_sum(&inputs, 8);
        for lane in 0..8 {
            assert_eq!((s[lane] + c[lane] + cp[lane]) & 0xFF, want[lane]);
        }
    }

    #[test]
    fn three_to_two_at_trd3() {
        let (mut dbc, red) = setup(3);
        assert_eq!(red.outputs(), 2);
        let inputs: Vec<Row> = [[77u64; 8], [88; 8], [99; 8]]
            .iter()
            .map(|v| Row::pack(64, 8, v))
            .collect();
        place(&mut dbc, 4, &inputs, 3);
        dbc.align_row(4, PortId::LEFT, &mut CostMeter::new())
            .unwrap();
        let mut m = CostMeter::new();
        let out = red.reduce(&mut dbc, 4, 3, 8, &mut m).unwrap();
        assert_eq!(out.cp, None);
        assert_eq!(m.total().cycles, 2, "3→2 step: TR + S/C write");
        let s = dbc.peek_row(out.s).unwrap().unpack(8);
        let c = dbc.peek_row(out.c).unwrap().unpack(8);
        for lane in 0..8 {
            assert_eq!((s[lane] + c[lane]) & 0xFF, (77 + 88 + 99) & 0xFF);
        }
    }

    #[test]
    fn repeated_reduction_converges() {
        // Feed outputs back in: 7 rows -> 3, pad with 4 fresh rows -> 7 -> 3.
        let (mut dbc, red) = setup(7);
        let batch1: Vec<Row> = (1..=7u64)
            .map(|k| Row::pack(64, 16, &[k * 1000; 4]))
            .collect();
        place(&mut dbc, 2, &batch1, 7);
        let out1 = red
            .reduce(&mut dbc, 2, 7, 16, &mut CostMeter::new())
            .unwrap();

        // Gather outputs and 4 fresh rows into a new window at base 10.
        let fresh: Vec<Row> = (8..=11u64)
            .map(|k| Row::pack(64, 16, &[k * 1000; 4]))
            .collect();
        let mut all_inputs = batch1.clone();
        all_inputs.extend(fresh.iter().cloned());

        let mut window = Vec::new();
        for r in out1.rows() {
            window.push(dbc.peek_row(r).unwrap());
        }
        window.extend(fresh);
        place(&mut dbc, 10, &window, 7);
        let out2 = red
            .reduce(&mut dbc, 10, 7, 16, &mut CostMeter::new())
            .unwrap();

        let s = dbc.peek_row(out2.s).unwrap().unpack(16);
        let c = dbc.peek_row(out2.c).unwrap().unpack(16);
        let cp = dbc.peek_row(out2.cp.unwrap()).unwrap().unpack(16);
        let want = CsaReducer::reference_sum(&all_inputs, 16);
        for lane in 0..4 {
            assert_eq!((s[lane] + c[lane] + cp[lane]) & 0xFFFF, want[lane]);
        }
    }

    #[test]
    fn errors() {
        let (mut dbc, red) = setup(7);
        let mut m = CostMeter::new();
        assert!(matches!(
            red.reduce(&mut dbc, 1, 8, 8, &mut m),
            Err(PimError::TooManyOperands { .. })
        ));
        assert!(matches!(
            red.reduce(&mut dbc, 1, 2, 8, &mut m),
            Err(PimError::TooFewOperands { .. })
        ));
        // base 0 leaves nowhere for C'.
        assert!(red.reduce(&mut dbc, 0, 7, 8, &mut m).is_err());
        // Storage DBC.
        let mut st = Dbc::storage(&MemoryConfig::tiny());
        assert!(matches!(
            red.reduce(&mut st, 1, 7, 8, &mut m),
            Err(PimError::NotPim)
        ));
    }
}
