//! Constant multiplication via canonical-signed-digit decomposition
//! (paper §III-D1).
//!
//! When the multiplier is a compile-time constant, it is recoded in the
//! canonical signed-digit (CSD / Booth-style) form with digits in
//! {−1, 0, +1} ("N", "O", "P" in the paper), which minimizes the nonzero
//! terms. The nonzero digits are then grouped into chunks of at most
//! `TRD − 2` terms, each chunk resolved by one multi-operand addition of
//! (possibly negated) shifted copies of the multiplicand. Negated terms
//! cost no extra addition: `−X` enters the chunk as `NOT X` plus a `+1` in
//! a free operand slot (two's complement), as the paper's 20061·A example
//! shows — two addition steps instead of twenty thousand.

use crate::add::MultiOperandAdder;
use crate::shift_logic::{shift_row_left, write_shifted_copy};
use crate::{PimError, Result};
use coruscant_mem::{Dbc, Row};
use coruscant_racetrack::CostMeter;
use serde::{Deserialize, Serialize};

/// One signed power-of-two term of a decomposition: `sign * (x << shift)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsdTerm {
    /// `+1` or `-1`.
    pub sign: i8,
    /// Left-shift amount.
    pub shift: u32,
}

/// Recodes `c` into canonical signed-digit form, least-significant first.
///
/// The returned digits `d_i ∈ {−1, 0, 1}` satisfy `c = Σ d_i · 2^i` and no
/// two adjacent digits are both nonzero (the canonical property, which
/// guarantees the minimal nonzero count).
pub fn csd_digits(c: u64) -> Vec<i8> {
    let mut digits = Vec::new();
    let mut x = u128::from(c);
    while x != 0 {
        if x & 1 == 1 {
            // Choose +1 or -1 so the remaining value becomes even with a
            // trailing zero run: look at the next bit.
            if x & 2 == 2 {
                digits.push(-1);
                x += 1; // consumed a -1: add it back
            } else {
                digits.push(1);
                x -= 1;
            }
        } else {
            digits.push(0);
        }
        x >>= 1;
    }
    digits
}

/// The nonzero terms of the CSD form of `c`.
pub fn csd_terms(c: u64) -> Vec<CsdTerm> {
    csd_digits(c)
        .into_iter()
        .enumerate()
        .filter(|&(_, d)| d != 0)
        .map(|(i, d)| CsdTerm {
            sign: d,
            shift: i as u32,
        })
        .collect()
}

/// A compiled plan for multiplying by a constant: a sequence of
/// multi-operand addition steps over shifted/negated copies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstantPlan {
    constant: u64,
    terms: Vec<CsdTerm>,
    max_operands: usize,
}

impl ConstantPlan {
    /// Compiles a plan for `constant` on a machine that can add
    /// `max_operands` values per step (`TRD − 2`).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::TooFewOperands`] if `max_operands < 2`.
    pub fn compile(constant: u64, max_operands: usize) -> Result<ConstantPlan> {
        if max_operands < 2 {
            return Err(PimError::TooFewOperands {
                requested: max_operands,
                min: 2,
            });
        }
        Ok(ConstantPlan {
            constant,
            terms: csd_terms(constant),
            max_operands,
        })
    }

    /// The constant this plan computes.
    pub fn constant(&self) -> u64 {
        self.constant
    }

    /// The signed power-of-two terms.
    pub fn terms(&self) -> &[CsdTerm] {
        &self.terms
    }

    /// Number of nonzero CSD terms.
    pub fn nonzero_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of multi-operand addition steps the plan needs: each step
    /// folds up to `max_operands − 1` new terms into the running partial
    /// result (the first step takes `max_operands` fresh terms).
    pub fn addition_steps(&self) -> usize {
        let t = self.terms.len();
        match t {
            0 | 1 => 0,
            _ => {
                let first = self.max_operands.min(t);
                let rest = t - first;
                1 + rest.div_ceil(self.max_operands - 1)
            }
        }
    }

    /// Evaluates the plan arithmetically (the functional model): computes
    /// `constant * x (mod 2^bits)` by the planned sequence of grouped
    /// signed additions.
    pub fn evaluate(&self, x: u64, bits: u32) -> u64 {
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let term_val = |t: &CsdTerm| -> u64 {
            let shifted = if t.shift >= 64 {
                0
            } else {
                x.wrapping_shl(t.shift)
            } & mask;
            if t.sign > 0 {
                shifted
            } else {
                // Two's complement negation within the lane.
                (!shifted).wrapping_add(1) & mask
            }
        };
        if self.terms.is_empty() {
            return 0;
        }
        let mut acc = 0u64;
        let mut i = 0;
        let mut first = true;
        while i < self.terms.len() {
            let take = if first {
                self.max_operands.min(self.terms.len() - i)
            } else {
                (self.max_operands - 1).min(self.terms.len() - i)
            };
            for t in &self.terms[i..i + take] {
                acc = acc.wrapping_add(term_val(t)) & mask;
            }
            i += take;
            first = false;
        }
        acc
    }
}

/// Executes a [`ConstantPlan`] on a PIM-enabled DBC: shifted copies of
/// the multiplicand are materialized through the neighbour-forwarding
/// interconnect, negative terms enter as `NOT X` with a merged `+1`
/// constant row (two's complement), and the grouped multi-operand
/// additions fold everything into the product — the paper's two-step
/// `20061·A` schedule, on real rows.
#[derive(Debug, Clone)]
pub struct ConstantMultiplier {
    trd: usize,
}

impl ConstantMultiplier {
    /// Creates an executor for the configuration's TRD.
    pub fn new(config: &coruscant_mem::MemoryConfig) -> ConstantMultiplier {
        ConstantMultiplier { trd: config.trd }
    }

    /// Creates an executor for an explicit TRD.
    pub fn with_trd(trd: usize) -> ConstantMultiplier {
        ConstantMultiplier { trd }
    }

    fn max_add_operands(&self) -> usize {
        if self.trd <= 3 {
            self.trd - 1
        } else {
            self.trd - 2
        }
    }

    /// Computes `plan.constant() * a` per `lane`-bit lane on the DBC.
    ///
    /// DBC scratch layout: rows `0..=trd` are the addition window, rows
    /// above stage the multiplicand and the current chunk's term rows.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::NotPim`], a block-size error, or a memory
    /// error if the DBC has too few rows for the staging area.
    pub fn execute(
        &self,
        dbc: &mut Dbc,
        plan: &ConstantPlan,
        a: &Row,
        lane: usize,
        meter: &mut CostMeter,
    ) -> Result<Row> {
        crate::add::validate_blocksize(lane, dbc.width())?;
        if !dbc.is_pim() {
            return Err(PimError::NotPim);
        }
        let width = dbc.width();
        let lanes = width / lane;
        let max_ops = self.max_add_operands();

        // Trivial constants: 0 and powers of two need no addition.
        match plan.terms() {
            [] => return Ok(Row::zeros(width)),
            [t] if t.sign > 0 => {
                // One shifted copy; bill the shifted writes.
                let a_row = self.trd + 1;
                dbc.write_row(a_row, a, meter)?;
                let out = self.trd + 2;
                write_shifted_copy(dbc, a_row, out, t.shift as usize, lane, meter)?;
                return dbc.peek_row(out).map_err(PimError::from);
            }
            _ => {}
        }

        // Stage the multiplicand once.
        let a_row = self.trd + 1;
        let term_base = self.trd + 2;
        if term_base + max_ops + 1 > dbc.rows() {
            return Err(PimError::Mem(coruscant_mem::MemError::RowOutOfRange {
                row: term_base + max_ops,
                rows: dbc.rows(),
            }));
        }
        dbc.write_row(a_row, a, meter)?;

        let adder = MultiOperandAdder::with_trd(self.trd);
        let mut partial: Option<Row> = None;
        let mut remaining = plan.terms().to_vec();

        while !remaining.is_empty() {
            // Slots available this chunk: the partial sum takes one.
            let reserved = usize::from(partial.is_some());
            // Decide how many terms fit: negatives need one shared
            // constant-row slot.
            let mut take = (max_ops - reserved).min(remaining.len());
            loop {
                let negs = remaining[..take].iter().filter(|t| t.sign < 0).count();
                let needs_const = usize::from(negs > 0);
                if reserved + take + needs_const <= max_ops || take == 1 {
                    break;
                }
                take -= 1;
            }
            let chunk: Vec<CsdTerm> = remaining.drain(..take).collect();
            let negs = chunk.iter().filter(|t| t.sign < 0).count();

            // Materialize the chunk's operand rows.
            let mut operands: Vec<Row> = Vec::with_capacity(max_ops);
            if let Some(p) = partial.take() {
                operands.push(p);
            }
            for (i, t) in chunk.iter().enumerate() {
                let dst = term_base + i;
                write_shifted_copy(dbc, a_row, dst, t.shift as usize, lane, meter)?;
                let mut row = dbc.peek_row(dst)?;
                if t.sign < 0 {
                    // NOT through the inverted sense path: one extra
                    // read/write pair.
                    row = !&row;
                    dbc.write_row(dst, &row, meter)?;
                }
                operands.push(row);
            }
            if negs > 0 {
                // The merged two's-complement "+1"s: value = #negatives
                // in every lane (a preset constant row).
                operands.push(Row::pack(width, lane, &vec![negs as u64; lanes]));
            }

            partial = Some(if operands.len() == 1 {
                operands.pop().expect("nonempty")
            } else {
                adder.add_rows_at(dbc, &operands, 1, lane, meter)?
            });
        }
        Ok(partial.expect("nonzero constant has terms"))
    }

    /// Reference: `c * x` per lane, truncated (oracle).
    pub fn reference(c: u64, a: &Row, lane: usize) -> Row {
        let mask = if lane >= 64 {
            u64::MAX
        } else {
            (1u64 << lane) - 1
        };
        let vals: Vec<u64> = a
            .unpack(lane)
            .into_iter()
            .map(|x| c.wrapping_mul(x) & mask)
            .collect();
        Row::pack(a.width(), lane, &vals)
    }
}

/// Device-level sanity helper: the pure logical shift used by the
/// executor matches the plan's arithmetic term evaluation.
pub fn shifted_term(a: &Row, t: CsdTerm, lane: usize) -> Row {
    let s = shift_row_left(a, t.shift as usize, lane);
    if t.sign > 0 {
        s
    } else {
        // Two's complement = NOT + 1 handled by the caller's constant row.
        !&s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_reconstruct_constant() {
        for c in [0u64, 1, 2, 3, 20061, 515, 0xFFFF, 0xAAAA, u32::MAX as u64] {
            let digits = csd_digits(c);
            let mut v: i128 = 0;
            for (i, d) in digits.iter().enumerate() {
                v += i128::from(*d) << i;
            }
            assert_eq!(v, c as i128, "constant {c}");
        }
    }

    #[test]
    fn csd_has_no_adjacent_nonzeros() {
        for c in [20061u64, 515, 0b111111, 0xDEAD, 12345678] {
            let d = csd_digits(c);
            for w in d.windows(2) {
                assert!(
                    w[0] == 0 || w[1] == 0,
                    "adjacent nonzero digits for {c}: {d:?}"
                );
            }
        }
    }

    #[test]
    fn csd_beats_or_ties_binary_weight() {
        for c in 1u64..2000 {
            let nz = csd_terms(c).len();
            assert!(nz <= c.count_ones() as usize, "constant {c}");
        }
    }

    #[test]
    fn paper_example_20061_takes_two_steps() {
        // The paper computes 20061·A in two addition steps at TRD = 7
        // (max 5 operands), using a 7-nonzero-digit signed encoding
        // ("POPOONOPONOONOP"). Our NAF recoding also yields 7 nonzero
        // digits — better than the 9 ones of plain binary — and the same
        // two-step schedule: the first add folds 5 terms, the second folds
        // the remaining 2 into the running sum.
        let plan = ConstantPlan::compile(20061, 5).unwrap();
        assert_eq!(plan.nonzero_terms(), 7);
        assert!(plan.nonzero_terms() < 20061u64.count_ones() as usize + 2);
        assert_eq!(plan.addition_steps(), 2);
    }

    #[test]
    fn evaluate_matches_product() {
        for c in [0u64, 1, 3, 20061, 515, 255, 4096, 77777] {
            let plan = ConstantPlan::compile(c, 5).unwrap();
            for x in [0u64, 1, 2, 7, 100, 255, 1000, 65535] {
                let got = plan.evaluate(x, 32);
                let want = c.wrapping_mul(x) & 0xFFFF_FFFF;
                assert_eq!(got, want, "c={c} x={x}");
            }
        }
    }

    #[test]
    fn evaluate_matches_product_at_trd3() {
        // max_operands = 2: plain binary chain of signed adds.
        for c in [9u64, 20061, 1023] {
            let plan = ConstantPlan::compile(c, 2).unwrap();
            for x in [1u64, 3, 250] {
                assert_eq!(plan.evaluate(x, 32), c.wrapping_mul(x) & 0xFFFF_FFFF);
            }
        }
    }

    #[test]
    fn steps_scale_inversely_with_operand_count() {
        let c = 0x5555_5555u64; // many nonzero digits
        let s2 = ConstantPlan::compile(c, 2).unwrap().addition_steps();
        let s3 = ConstantPlan::compile(c, 3).unwrap().addition_steps();
        let s5 = ConstantPlan::compile(c, 5).unwrap().addition_steps();
        assert!(s5 < s3 && s3 < s2, "s2={s2} s3={s3} s5={s5}");
    }

    #[test]
    fn trivial_constants() {
        assert_eq!(ConstantPlan::compile(0, 5).unwrap().addition_steps(), 0);
        assert_eq!(ConstantPlan::compile(1, 5).unwrap().addition_steps(), 0);
        assert_eq!(ConstantPlan::compile(4, 5).unwrap().addition_steps(), 0);
        assert_eq!(ConstantPlan::compile(0, 5).unwrap().evaluate(99, 32), 0);
        assert_eq!(ConstantPlan::compile(4, 5).unwrap().evaluate(9, 32), 36);
    }

    #[test]
    fn rejects_degenerate_machine() {
        assert!(ConstantPlan::compile(7, 1).is_err());
    }

    mod device_execution {
        use super::super::*;
        use coruscant_mem::MemoryConfig;

        fn run(c: u64, values: &[u64], lane: usize, trd: usize) -> (Vec<u64>, u64) {
            let config = MemoryConfig::tiny().with_trd(trd);
            let max_ops = config.max_add_operands();
            let plan = ConstantPlan::compile(c, max_ops).unwrap();
            let exec = ConstantMultiplier::new(&config);
            let a = Row::pack(64, lane, values);
            let mut dbc = Dbc::pim_enabled(&config);
            let mut meter = CostMeter::new();
            let got = exec.execute(&mut dbc, &plan, &a, lane, &mut meter).unwrap();
            (got.unpack(lane), meter.total().cycles)
        }

        #[test]
        fn paper_example_20061() {
            let values = [3u64, 1, 100, 0];
            let (got, cycles) = run(20061, &values, 16, 7);
            for (lane, &x) in values.iter().enumerate() {
                assert_eq!(got[lane], (20061 * x) & 0xFFFF, "lane {lane}");
            }
            assert!(cycles > 0);
        }

        #[test]
        fn small_constants_across_trds() {
            for trd in [3usize, 5, 7] {
                for c in [0u64, 1, 2, 3, 5, 9, 15, 255] {
                    let values = [7u64, 250, 0, 1];
                    let (got, _) = run(c, &values, 16, trd);
                    for (lane, &x) in values.iter().enumerate() {
                        assert_eq!(got[lane], (c * x) & 0xFFFF, "c={c} trd={trd} lane {lane}");
                    }
                }
            }
        }

        #[test]
        fn negative_heavy_constant() {
            // 0b0111_1111 = 127 recodes as +128 − 1 (one negative term).
            let values = [2u64, 3, 0, 200];
            let (got, _) = run(127, &values, 16, 7);
            for (lane, &x) in values.iter().enumerate() {
                assert_eq!(got[lane], (127 * x) & 0xFFFF);
            }
        }

        #[test]
        fn device_matches_plan_evaluate() {
            let plan = ConstantPlan::compile(333, 5).unwrap();
            let config = MemoryConfig::tiny();
            let exec = ConstantMultiplier::new(&config);
            let values = [9u64, 77, 1, 250];
            let a = Row::pack(64, 16, &values);
            let mut dbc = Dbc::pim_enabled(&config);
            let got = exec
                .execute(&mut dbc, &plan, &a, 16, &mut CostMeter::new())
                .unwrap();
            for (lane, &x) in values.iter().enumerate() {
                assert_eq!(got.unpack(16)[lane], plan.evaluate(x, 16), "lane {lane}");
            }
        }

        #[test]
        fn constant_mult_cheaper_than_general_mult_for_sparse_constants() {
            // A power-of-two-ish constant should beat the general
            // multiplier (the point of §III-D1).
            use crate::mult::Multiplier;
            let config = MemoryConfig::tiny();
            let c = 516u64; // 0b10_0000_0100: two CSD terms
            let values = [3u64, 99, 0, 1];

            let plan = ConstantPlan::compile(c, config.max_add_operands()).unwrap();
            let exec = ConstantMultiplier::new(&config);
            let a = Row::pack(64, 16, &values);
            let mut dbc = Dbc::pim_enabled(&config);
            let mut m_const = CostMeter::new();
            exec.execute(&mut dbc, &plan, &a, 16, &mut m_const).unwrap();

            let mult = Multiplier::new(&config);
            let mut dbc2 = Dbc::pim_enabled(&config);
            let mut m_gen = CostMeter::new();
            let b = vec![c & 0xFF; 4]; // 8-bit general path for comparison
            mult.multiply_values(&mut dbc2, &values, &b, 8, &mut m_gen)
                .unwrap();

            assert!(
                m_const.total().cycles < m_gen.total().cycles,
                "constant {} vs general {}",
                m_const.total().cycles,
                m_gen.total().cycles
            );
        }

        #[test]
        fn shifted_term_oracle() {
            let a = Row::pack(64, 16, &[0x00FF, 1, 0, 0x0101]);
            let pos = shifted_term(&a, CsdTerm { sign: 1, shift: 4 }, 16);
            assert_eq!(pos.unpack(16)[0], 0x0FF0);
            let neg = shifted_term(&a, CsdTerm { sign: -1, shift: 0 }, 16);
            assert_eq!(neg.unpack(16)[0], !0x00FFu64 & 0xFFFF);
        }
    }
}
