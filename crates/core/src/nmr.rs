//! N-modular redundancy for PIM fault tolerance (paper §III-F, Fig. 7).
//!
//! ECC is not homomorphic under PIM, so CORUSCANT protects computations by
//! repeating them N ∈ {3, 5, 7} times and voting. The voter is the
//! polymorphic gate itself: the N result rows are placed between the
//! access ports with balanced constant padding ((TRD − N)/2 rows of `1`s
//! and of `0`s), so the median sense level of the segment — the
//! super-carry circuit `C'` at TRD = 7 — reports the bitwise majority.
//! An uncorrectable error then requires ⌈N/2⌉ faults in the same bit
//! position.

use crate::sense::SenseLevels;
use crate::{PimError, Result};
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::{CostMeter, PortId};

/// Supported redundancy degrees.
pub const SUPPORTED_N: [usize; 3] = [3, 5, 7];

/// Executes majority voting over replicated PIM results.
#[derive(Debug, Clone)]
pub struct NmrVoter {
    trd: usize,
}

impl NmrVoter {
    /// Creates a voter for the configuration's TRD.
    pub fn new(config: &MemoryConfig) -> NmrVoter {
        NmrVoter { trd: config.trd }
    }

    /// Creates a voter for an explicit TRD.
    pub fn with_trd(trd: usize) -> NmrVoter {
        NmrVoter { trd }
    }

    /// Degrees of redundancy this TRD can vote on: `N` must be odd, at
    /// most TRD, and leave an even number of padding slots.
    pub fn supported_n(&self) -> Vec<usize> {
        SUPPORTED_N
            .iter()
            .copied()
            .filter(|&n| n <= self.trd && (self.trd - n).is_multiple_of(2))
            .collect()
    }

    /// The sense threshold that reports the majority: the median level of
    /// the padded segment, `(TRD + 1) / 2`. At TRD = 7 this is level 4 —
    /// exactly the super-carry `C'` circuit (paper §III-F).
    pub fn majority_level(&self) -> u8 {
        self.trd.div_ceil(2) as u8
    }

    /// Votes over `results.len() = N` replicated result rows: places them
    /// in the segment with balanced `1`/`0` padding (preset constants),
    /// performs one transverse read, and thresholds at the majority level.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::NotPim`], or operand-count errors when `N` is
    /// unsupported for this TRD.
    pub fn vote_rows(&self, dbc: &mut Dbc, results: &[Row], meter: &mut CostMeter) -> Result<Row> {
        if !dbc.is_pim() {
            return Err(PimError::NotPim);
        }
        let n = results.len();
        if !self.supported_n().contains(&n) {
            return Err(if n > self.trd {
                PimError::TooManyOperands {
                    requested: n,
                    max: self.trd,
                }
            } else {
                PimError::TooFewOperands {
                    requested: n,
                    min: 3,
                }
            });
        }
        let pad = (self.trd - n) / 2;
        let ones = Row::ones(dbc.width());
        let zeros = Row::zeros(dbc.width());
        // Preset the padding (Fig. 7c/d: constants maintained adjacent to
        // the operation's own padding rows).
        for s in 0..pad {
            dbc.poke_segment_row(s, &ones)?;
            dbc.poke_segment_row(self.trd - 1 - s, &zeros)?;
        }
        // Place the replicated results in the middle (costed writes; the
        // replicas were just produced at the ports, one write + shift per
        // replica mirrors the operation's own write-back path).
        for (i, r) in results.iter().enumerate() {
            if r.width() != dbc.width() {
                return Err(PimError::Mem(coruscant_mem::MemError::WidthMismatch {
                    got: r.width(),
                    expected: dbc.width(),
                }));
            }
            let writes: Vec<(usize, PortId, bool)> = r
                .iter()
                .enumerate()
                .map(|(w, b)| (w, PortId::LEFT, b))
                .collect();
            // Temporarily write through the left port into the middle by
            // poking directly at the target position — the voter replica
            // placement is modeled as one write cycle per replica.
            meter.charge(coruscant_racetrack::Cost::new(1, 0.1 * dbc.width() as f64));
            let _ = writes;
            dbc.poke_segment_row(pad + i, r)?;
        }

        // One transverse read; the median threshold is the majority.
        let level = self.majority_level();
        let counts = dbc.transverse_read_all(meter)?;
        Ok(counts
            .into_iter()
            .map(|tr| SenseLevels::from_tr(tr).at_least(level))
            .collect())
    }

    /// Reference bitwise majority (oracle).
    pub fn reference(results: &[Row]) -> Row {
        let width = results[0].width();
        let need = results.len() / 2 + 1;
        (0..width)
            .map(|w| results.iter().filter(|r| r.get(w).unwrap_or(false)).count() >= need)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(trd: usize) -> (Dbc, NmrVoter) {
        let config = MemoryConfig::tiny().with_trd(trd);
        (Dbc::pim_enabled(&config), NmrVoter::with_trd(trd))
    }

    #[test]
    fn majority_level_is_cprime_at_trd7() {
        assert_eq!(NmrVoter::with_trd(7).majority_level(), 4);
        assert_eq!(NmrVoter::with_trd(5).majority_level(), 3);
        assert_eq!(NmrVoter::with_trd(3).majority_level(), 2);
    }

    #[test]
    fn supported_degrees_match_paper() {
        assert_eq!(NmrVoter::with_trd(7).supported_n(), vec![3, 5, 7]);
        assert_eq!(NmrVoter::with_trd(5).supported_n(), vec![3, 5]);
        assert_eq!(NmrVoter::with_trd(3).supported_n(), vec![3]);
    }

    #[test]
    fn tmr_corrects_single_faulty_replica() {
        let (mut dbc, voter) = setup(7);
        let good = Row::from_u64_words(64, &[0xDEAD_BEEF_0123_4567]);
        let mut faulty = good.clone();
        for w in [0usize, 13, 40, 63] {
            faulty.set(w, !faulty.get(w).unwrap());
        }
        let got = voter
            .vote_rows(
                &mut dbc,
                &[good.clone(), faulty, good.clone()],
                &mut CostMeter::new(),
            )
            .unwrap();
        assert_eq!(got, good);
    }

    #[test]
    fn tmr_cannot_correct_two_aligned_faults() {
        let (mut dbc, voter) = setup(7);
        let good = Row::zeros(64);
        let mut faulty = good.clone();
        faulty.set(5, true);
        let got = voter
            .vote_rows(
                &mut dbc,
                &[faulty.clone(), faulty, good.clone()],
                &mut CostMeter::new(),
            )
            .unwrap();
        assert_ne!(got, good, "two aligned faults defeat TMR");
        assert!(got.get(5).unwrap());
    }

    #[test]
    fn quintuple_redundancy_corrects_two_faults() {
        let (mut dbc, voter) = setup(7);
        let good = Row::from_u64_words(64, &[0xAAAA_5555]);
        let mut f1 = good.clone();
        f1.set(2, !f1.get(2).unwrap());
        let mut f2 = good.clone();
        f2.set(2, !f2.get(2).unwrap()); // same position, still outvoted 3:2
        let replicas = [good.clone(), f1, f2, good.clone(), good.clone()];
        let got = voter
            .vote_rows(&mut dbc, &replicas, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, good);
    }

    #[test]
    fn septuple_redundancy_fills_segment() {
        let (mut dbc, voter) = setup(7);
        let good = Row::from_u64_words(64, &[0x0F0F_F0F0]);
        let mut replicas = vec![good.clone(); 7];
        for (i, r) in replicas.iter_mut().enumerate().take(3) {
            r.set(i, !r.get(i).unwrap());
        }
        let got = voter
            .vote_rows(&mut dbc, &replicas, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, good, "three scattered faults among seven replicas");
    }

    #[test]
    fn vote_matches_reference_oracle() {
        let (mut dbc, voter) = setup(7);
        let replicas: Vec<Row> = [0x1234u64, 0x1236, 0x1235]
            .iter()
            .map(|&v| Row::from_u64_words(64, &[v]))
            .collect();
        let got = voter
            .vote_rows(&mut dbc, &replicas, &mut CostMeter::new())
            .unwrap();
        assert_eq!(got, NmrVoter::reference(&replicas));
    }

    #[test]
    fn trd5_and_trd3_voting() {
        let (mut dbc, voter) = setup(5);
        let good = Row::from_u64_words(64, &[0xCAFE]);
        let mut bad = good.clone();
        bad.set(1, !bad.get(1).unwrap());
        let got = voter
            .vote_rows(
                &mut dbc,
                &[good.clone(), bad, good.clone()],
                &mut CostMeter::new(),
            )
            .unwrap();
        assert_eq!(got, good);

        let (mut dbc3, voter3) = setup(3);
        let mut bad2 = good.clone();
        bad2.set(9, !bad2.get(9).unwrap());
        let got3 = voter3
            .vote_rows(
                &mut dbc3,
                &[good.clone(), good.clone(), bad2],
                &mut CostMeter::new(),
            )
            .unwrap();
        assert_eq!(got3, good);
    }

    #[test]
    fn unsupported_degrees_rejected() {
        let (mut dbc, voter) = setup(7);
        let r = Row::zeros(64);
        assert!(voter
            .vote_rows(&mut dbc, &vec![r.clone(); 4], &mut CostMeter::new())
            .is_err());
        assert!(voter
            .vote_rows(&mut dbc, &vec![r.clone(); 8], &mut CostMeter::new())
            .is_err());
        let (mut dbc5, voter5) = setup(5);
        assert!(voter5
            .vote_rows(&mut dbc5, &vec![r.clone(); 7], &mut CostMeter::new())
            .is_err());
    }

    #[test]
    fn voting_is_cheap() {
        // One write per replica + one TR.
        let (mut dbc, voter) = setup(7);
        let r = Row::ones(64);
        let mut m = CostMeter::new();
        voter
            .vote_rows(&mut dbc, &[r.clone(), r.clone(), r.clone()], &mut m)
            .unwrap();
        assert_eq!(m.total().cycles, 4);
    }
}
