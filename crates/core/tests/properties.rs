//! Property-based tests for the PIM core primitives.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::mult::{csd_digits, csd_terms};
use coruscant_core::pimblock::PimBlock;
use coruscant_core::program::{PimProgram, Step};
use coruscant_core::relu::{lane_as_signed, relu_reference};
use coruscant_core::sense::SenseLevels;
use coruscant_core::shift_logic::shift_row_left;
use coruscant_mem::{DbcLocation, Row, RowAddress};
use proptest::prelude::*;

proptest! {
    /// The PIM block's S/C/C' always reconstruct the sensed count —
    /// exactly the paper's claim that the three outputs are the binary
    /// digits of the ones-count.
    #[test]
    fn pim_block_digits_reconstruct_count(count in 0u8..=7) {
        let o = PimBlock::new().evaluate(SenseLevels::new(count, 7));
        let recon = u8::from(o.sum) + 2 * u8::from(o.carry) + 4 * u8::from(o.super_carry);
        prop_assert_eq!(recon, count);
        prop_assert_eq!(o.or, count >= 1);
        prop_assert_eq!(o.and, count == 7);
        prop_assert_eq!(o.xor, count % 2 == 1);
    }

    /// CSD recoding always reconstructs the constant, never places two
    /// adjacent nonzero digits, and never exceeds the binary weight.
    #[test]
    fn csd_properties(c: u64) {
        let digits = csd_digits(c);
        let mut v: i128 = 0;
        for (i, d) in digits.iter().enumerate() {
            v += i128::from(*d) << i;
        }
        prop_assert_eq!(v, c as i128);
        for w in digits.windows(2) {
            prop_assert!(w[0] == 0 || w[1] == 0);
        }
        prop_assert!(csd_terms(c).len() <= c.count_ones() as usize + 1);
    }

    /// Logical shifting distributes over lane packing: shifting the row
    /// equals shifting each lane value.
    #[test]
    fn logical_shift_per_lane(
        values in proptest::collection::vec(0u64..65536, 4),
        by in 0usize..16,
    ) {
        let row = Row::pack(64, 16, &values);
        let shifted = shift_row_left(&row, by, 16);
        for (l, &v) in values.iter().enumerate() {
            prop_assert_eq!(shifted.unpack(16)[l], (v << by) & 0xFFFF, "lane {}", l);
        }
    }

    /// ReLU zeroes exactly the lanes whose two's-complement value is
    /// negative.
    #[test]
    fn relu_zeroes_negative_lanes(values in proptest::collection::vec(0u64..256, 8)) {
        let row = Row::pack(64, 8, &values);
        let out = relu_reference(&row, 8).unpack(8);
        for (l, &v) in values.iter().enumerate() {
            let want = if lane_as_signed(v, 8) < 0 { 0 } else { v };
            prop_assert_eq!(out[l], want, "lane {}", l);
        }
    }

    /// Every valid instruction survives the 64-bit encode/decode
    /// round-trip.
    #[test]
    fn isa_roundtrip(
        opcode_bits in 0u8..=15,
        bank in 0usize..32,
        subarray in 0usize..64,
        tile in 0usize..16,
        dbc in 0usize..16,
        row in 0usize..32,
        operands in 1u8..=7,
        bs_field in 0usize..7,
        with_dst: bool,
    ) {
        let opcode = CpimOpcode::from_bits(opcode_bits).unwrap();
        let src = RowAddress::new(DbcLocation::new(bank, subarray, tile, dbc), row);
        let dst = with_dst.then(|| RowAddress::new(DbcLocation::new(tile % 32, bank % 64 , dbc, tile), subarray % 32));
        let bs = BlockSize::new(1 << (bs_field + 3)).unwrap();
        let instr = CpimInstr::new(opcode, src, operands, bs, dst).unwrap();
        let decoded = CpimInstr::decode(instr.encode()).unwrap();
        prop_assert_eq!(decoded, instr);
    }

    /// A whole program's instruction stream survives the 64-bit trace
    /// round-trip: `encode_instructions` drops loads and readouts, and
    /// `decode_instructions` reproduces exactly the `Exec` instructions
    /// in program order.
    #[test]
    fn program_trace_roundtrip(
        opcodes in proptest::collection::vec(0u8..=15, 0..12),
        salt: u64,
    ) {
        let loc = DbcLocation::new(1, 2, 3, 4);
        let mut steps = Vec::new();
        for (i, &ob) in opcodes.iter().enumerate() {
            let mix = salt.wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let row = (mix % 25) as usize;
            let operands = ((mix >> 8) % 7 + 1) as u8;
            let bs = BlockSize::new(1 << ((mix >> 16) % 7 + 3)).unwrap();
            let dst = ((mix >> 24) & 1 == 1)
                .then(|| RowAddress::new(loc, ((mix >> 25) % 32) as usize));
            if (mix >> 32) & 3 == 0 {
                steps.push(Step::Load {
                    addr: RowAddress::new(loc, row),
                    values: vec![mix],
                    lane: 64,
                });
            }
            let opcode = CpimOpcode::from_bits(ob).unwrap();
            steps.push(Step::Exec(
                CpimInstr::new(opcode, RowAddress::new(loc, row), operands, bs, dst).unwrap(),
            ));
            if (mix >> 34) & 3 == 0 {
                steps.push(Step::Readout {
                    label: format!("r{i}"),
                    addr: RowAddress::new(loc, row),
                    lane: 64,
                });
            }
        }
        let program = PimProgram { steps };
        prop_assert_eq!(program.instruction_count(), opcodes.len());
        let decoded = PimProgram::decode_instructions(&program.encode_instructions()).unwrap();
        let instrs: Vec<CpimInstr> = program.instructions().copied().collect();
        prop_assert_eq!(decoded, instrs);
    }

    /// Sense levels are monotone threshold outputs for any count/span.
    #[test]
    fn sense_levels_monotone(span in 1u8..=7, count_frac in 0.0f64..=1.0) {
        let count = (f64::from(span) * count_frac).round() as u8;
        let s = SenseLevels::new(count.min(span), span);
        let bits = s.bits();
        for j in 1..7 {
            prop_assert!(!bits[j] || bits[j - 1]);
        }
    }
}
