//! Cycle and energy accounting for device and architecture operations.
//!
//! All CORUSCANT results are reported in device cycles (1 ns at the device
//! level, 1.25 ns per memory cycle at the DDR interface, paper Table II) and
//! picojoules. Every simulated operation returns a [`Cost`]; callers combine
//! them with [`Cost::then`] (sequential composition) or
//! [`Cost::in_parallel_with`] (lock-step parallel composition, where latency
//! is the maximum and energy still accumulates).

use crate::nanowire::NanowireSpec;
use crate::params::{EnergyParams, LatencyParams};
use crate::port::PortId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// The latency and energy of one (possibly compound) operation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cost {
    /// Latency in device cycles.
    pub cycles: u64,
    /// Energy in picojoules.
    pub energy_pj: f64,
}

impl Cost {
    /// A zero-latency, zero-energy cost.
    pub const ZERO: Cost = Cost {
        cycles: 0,
        energy_pj: 0.0,
    };

    /// Creates a cost from a cycle count and an energy in picojoules.
    ///
    /// # Example
    ///
    /// ```
    /// use coruscant_racetrack::Cost;
    /// let c = Cost::new(2, 0.3);
    /// assert_eq!(c.cycles, 2);
    /// ```
    pub fn new(cycles: u64, energy_pj: f64) -> Cost {
        Cost { cycles, energy_pj }
    }

    /// A pure-latency cost (no energy).
    pub fn cycles(cycles: u64) -> Cost {
        Cost::new(cycles, 0.0)
    }

    /// A pure-energy cost (no latency).
    pub fn energy(energy_pj: f64) -> Cost {
        Cost::new(0, energy_pj)
    }

    /// Sequential composition: latencies and energies both add.
    #[must_use]
    pub fn then(self, next: Cost) -> Cost {
        Cost {
            cycles: self.cycles + next.cycles,
            energy_pj: self.energy_pj + next.energy_pj,
        }
    }

    /// Lock-step parallel composition: latency is the maximum of the two,
    /// energy accumulates. This models e.g. all nanowires of a domain-block
    /// cluster shifting together.
    #[must_use]
    pub fn in_parallel_with(self, other: Cost) -> Cost {
        Cost {
            cycles: self.cycles.max(other.cycles),
            energy_pj: self.energy_pj + other.energy_pj,
        }
    }

    /// Repeats this cost sequentially `n` times.
    #[must_use]
    pub fn repeat(self, n: u64) -> Cost {
        Cost {
            cycles: self.cycles * n,
            energy_pj: self.energy_pj * n as f64,
        }
    }

    /// Replicates this cost across `n` lock-step parallel units:
    /// the latency is unchanged and the energy is multiplied by `n`.
    #[must_use]
    pub fn fanout(self, n: u64) -> Cost {
        Cost {
            cycles: self.cycles,
            energy_pj: self.energy_pj * n as f64,
        }
    }

    /// Latency in nanoseconds given a cycle time.
    pub fn latency_ns(&self, cycle_time_ns: f64) -> f64 {
        self.cycles as f64 * cycle_time_ns
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        self.then(rhs)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = self.then(rhs);
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Cost::then)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles, {:.2} pJ", self.cycles, self.energy_pj)
    }
}

/// The micro-operation class a charge belongs to, for energy breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Domain-wall shift steps.
    Shift,
    /// Point reads at access ports.
    Read,
    /// Point writes at access ports.
    Write,
    /// Transverse reads.
    TransverseRead,
    /// Transverse writes.
    TransverseWrite,
    /// Anything charged without a class (compound/analytic charges).
    Other,
}

impl OpClass {
    /// All classes, in display order.
    pub const ALL: [OpClass; 6] = [
        OpClass::Shift,
        OpClass::Read,
        OpClass::Write,
        OpClass::TransverseRead,
        OpClass::TransverseWrite,
        OpClass::Other,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Shift => "shift",
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::TransverseRead => "TR",
            OpClass::TransverseWrite => "TW",
            OpClass::Other => "other",
        };
        write!(f, "{s}")
    }
}

/// Accumulates the cost of a sequence of operations.
///
/// A `CostMeter` is handed down through compound operations so that each
/// micro-operation (shift, read, transverse read, ...) can charge its cost
/// exactly once; classed charges additionally feed a per-[`OpClass`]
/// energy breakdown.
///
/// # Example
///
/// ```
/// use coruscant_racetrack::{Cost, CostMeter};
/// let mut meter = CostMeter::new();
/// meter.charge(Cost::new(1, 0.1));
/// meter.charge(Cost::new(2, 0.2));
/// assert_eq!(meter.total().cycles, 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostMeter {
    total: Cost,
    ops: u64,
    by_class: [Cost; 6],
}

impl CostMeter {
    /// Creates an empty meter.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Adds `cost` to the running total (unclassed).
    pub fn charge(&mut self, cost: Cost) {
        self.charge_class(OpClass::Other, cost);
    }

    /// Adds `cost` under a micro-operation class.
    pub fn charge_class(&mut self, class: OpClass, cost: Cost) {
        self.total += cost;
        self.ops += 1;
        let idx = OpClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("known class");
        self.by_class[idx] += cost;
    }

    /// The accumulated cost.
    pub fn total(&self) -> Cost {
        self.total
    }

    /// The accumulated cost of one micro-operation class.
    pub fn class_total(&self, class: OpClass) -> Cost {
        let idx = OpClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("known class");
        self.by_class[idx]
    }

    /// Number of individual operations charged.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Resets the meter to zero and returns the previous total.
    pub fn take(&mut self) -> Cost {
        let t = self.total;
        *self = CostMeter::default();
        t
    }
}

impl fmt::Display for CostMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} over {} ops", self.total, self.ops)
    }
}

/// The access-port geometry of a nanowire, expressed in *data-row*
/// coordinates at the canonical alignment.
///
/// Shift-latency reasoning (which row sits how far from which port) was
/// previously implicit in [`Nanowire`](crate::nanowire::Nanowire)'s cost
/// internals; callers that only need to *price* a shift — the compiler's
/// placement passes, the DWM cache frontend — can use this standalone
/// helper instead of instantiating a wire.
///
/// # Example
///
/// ```
/// use coruscant_racetrack::cost::PortGeometry;
/// // Paper Table II: 32 data rows, TRD = 7.
/// let geom = PortGeometry::coruscant(32, 7);
/// assert_eq!(geom.port_count(), 2);
/// assert_eq!(geom.inter_port_spacing(), Some(6));
/// assert_eq!(geom.shift_distance(13), 0); // row under the left port
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortGeometry {
    /// Number of data rows.
    rows: usize,
    /// Data-row index under each port at the canonical alignment, in
    /// physical port order.
    port_rows: Vec<isize>,
}

impl PortGeometry {
    /// The geometry of `spec` in data-row coordinates.
    pub fn of(spec: &NanowireSpec) -> PortGeometry {
        let off = spec.initial_offset as isize;
        PortGeometry {
            rows: spec.data_domains,
            port_rows: spec
                .ports
                .iter()
                .map(|p| p.position as isize - off)
                .collect(),
        }
    }

    /// The two-port CORUSCANT PIM geometry for `rows` data rows at
    /// transverse-read distance `trd` (paper Table II: 32 rows, TRD 7).
    pub fn coruscant(rows: usize, trd: usize) -> PortGeometry {
        PortGeometry::of(&NanowireSpec::coruscant(rows, trd))
    }

    /// Number of data rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of access ports.
    pub fn port_count(&self) -> usize {
        self.port_rows.len()
    }

    /// The data-row index sitting under `port` at the canonical
    /// alignment. Returns `None` for an out-of-range port id.
    pub fn port_row(&self, port: PortId) -> Option<isize> {
        self.port_rows.get(port.0).copied()
    }

    /// Data-row indices under every port at the canonical alignment, in
    /// physical port order.
    pub fn port_rows(&self) -> &[isize] {
        &self.port_rows
    }

    /// The uniform spacing (in domains) between adjacent ports, or
    /// `None` when the wire has fewer than two ports. For the CORUSCANT
    /// two-port wire this is `trd - 1`: the segment between the ports
    /// spans exactly the transverse-read distance.
    pub fn inter_port_spacing(&self) -> Option<usize> {
        match self.port_rows.as_slice() {
            [] | [_] => None,
            [a, b, ..] => Some(b.abs_diff(*a)),
        }
    }

    /// The signed shift offset that aligns data row `row` under `port`
    /// (positive offsets move the data window right relative to its
    /// canonical position). `None` for an out-of-range port.
    pub fn shift_offset(&self, row: usize, port: PortId) -> Option<isize> {
        Some(row as isize - self.port_rows.get(port.0)?)
    }

    /// The nearest port to data row `row` and the shift distance (in
    /// domains) to align the row under it. Ties resolve to the
    /// lower-indexed (leftmost) port.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has no ports.
    pub fn nearest_port(&self, row: usize) -> (PortId, usize) {
        assert!(!self.port_rows.is_empty(), "geometry has no ports");
        self.port_rows
            .iter()
            .enumerate()
            .map(|(i, &p)| (PortId(i), (row as isize).abs_diff(p)))
            .min_by_key(|&(id, d)| (d, id))
            .expect("at least one port")
    }

    /// Shift distance (in domains) from data row `row` to its nearest
    /// port: the shifts an access to `row` costs from the canonical
    /// alignment.
    pub fn shift_distance(&self, row: usize) -> usize {
        self.nearest_port(row).1
    }

    /// The largest nearest-port shift distance over all data rows — the
    /// worst-case access from the canonical alignment.
    pub fn max_shift_distance(&self) -> usize {
        (0..self.rows)
            .map(|r| self.shift_distance(r))
            .max()
            .unwrap_or(0)
    }

    /// Prices a shift of `steps` domains on one nanowire under the given
    /// device parameters.
    pub fn shift_cost(steps: u64, latency: &LatencyParams, energy: &EnergyParams) -> Cost {
        Cost::new(
            steps * latency.shift_per_step,
            steps as f64 * energy.shift_per_step,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_composition_adds_both() {
        let a = Cost::new(3, 1.5);
        let b = Cost::new(2, 0.5);
        let c = a.then(b);
        assert_eq!(c.cycles, 5);
        assert!((c.energy_pj - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_composition_takes_max_latency() {
        let a = Cost::new(3, 1.0);
        let b = Cost::new(7, 2.0);
        let c = a.in_parallel_with(b);
        assert_eq!(c.cycles, 7);
        assert!((c.energy_pj - 3.0).abs() < 1e-12);
    }

    #[test]
    fn repeat_scales_both() {
        let c = Cost::new(2, 0.5).repeat(4);
        assert_eq!(c.cycles, 8);
        assert!((c.energy_pj - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fanout_scales_energy_only() {
        let c = Cost::new(2, 0.5).fanout(512);
        assert_eq!(c.cycles, 2);
        assert!((c.energy_pj - 256.0).abs() < 1e-9);
    }

    #[test]
    fn sum_of_costs() {
        let total: Cost = (0..5).map(|_| Cost::new(1, 0.1)).sum();
        assert_eq!(total.cycles, 5);
        assert!((total.energy_pj - 0.5).abs() < 1e-12);
    }

    #[test]
    fn meter_charges_and_takes() {
        let mut m = CostMeter::new();
        assert_eq!(m.total(), Cost::ZERO);
        m.charge(Cost::new(4, 1.0));
        assert_eq!(m.op_count(), 1);
        let t = m.take();
        assert_eq!(t.cycles, 4);
        assert_eq!(m.total(), Cost::ZERO);
        assert_eq!(m.op_count(), 0);
    }

    #[test]
    fn latency_ns_uses_cycle_time() {
        let c = Cost::cycles(26);
        assert!((c.latency_ns(1.0) - 26.0).abs() < 1e-12);
        assert!((c.latency_ns(1.25) - 32.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Cost::ZERO.to_string().is_empty());
        assert!(!CostMeter::new().to_string().is_empty());
        for class in OpClass::ALL {
            assert!(!class.to_string().is_empty());
        }
    }

    #[test]
    fn class_breakdown_sums_to_total() {
        let mut m = CostMeter::new();
        m.charge_class(OpClass::Shift, Cost::new(3, 0.3));
        m.charge_class(OpClass::TransverseRead, Cost::new(1, 1.5));
        m.charge_class(OpClass::Write, Cost::new(2, 0.2));
        m.charge(Cost::new(1, 0.1)); // lands in Other
        let by_class: Cost = OpClass::ALL.iter().map(|&c| m.class_total(c)).sum();
        assert_eq!(by_class.cycles, m.total().cycles);
        assert!((by_class.energy_pj - m.total().energy_pj).abs() < 1e-12);
        assert_eq!(m.class_total(OpClass::Shift).cycles, 3);
        assert_eq!(m.class_total(OpClass::Other).cycles, 1);
        assert_eq!(m.class_total(OpClass::Read), Cost::ZERO);
    }

    #[test]
    fn take_clears_breakdown() {
        let mut m = CostMeter::new();
        m.charge_class(OpClass::Read, Cost::new(5, 1.0));
        m.take();
        assert_eq!(m.class_total(OpClass::Read), Cost::ZERO);
        assert_eq!(m.op_count(), 0);
    }

    /// Table II geometry (32 rows per DBC, TRD = 7): two ports sit over
    /// data rows 13 and 19 at the canonical alignment.
    #[test]
    fn port_geometry_pins_table2() {
        let geom = PortGeometry::coruscant(32, 7);
        assert_eq!(geom.rows(), 32);
        assert_eq!(geom.port_count(), 2);
        assert_eq!(geom.port_rows(), &[13, 19]);
        assert_eq!(geom.port_row(PortId::LEFT), Some(13));
        assert_eq!(geom.port_row(PortId::RIGHT), Some(19));
        assert_eq!(geom.port_row(PortId(2)), None);
        // The inter-port segment spans exactly the TRD.
        assert_eq!(geom.inter_port_spacing(), Some(6));
    }

    #[test]
    fn port_geometry_matches_spec_derivation() {
        for trd in [3, 5, 7] {
            let spec = NanowireSpec::coruscant(32, trd);
            let geom = PortGeometry::of(&spec);
            assert_eq!(geom, PortGeometry::coruscant(32, trd), "trd {trd}");
            assert_eq!(geom.inter_port_spacing(), Some(trd - 1), "trd {trd}");
        }
    }

    #[test]
    fn nearest_port_distances_pin_table2() {
        let geom = PortGeometry::coruscant(32, 7);
        // Rows under the ports are free; extremities pay the most.
        assert_eq!(geom.nearest_port(13), (PortId::LEFT, 0));
        assert_eq!(geom.nearest_port(19), (PortId::RIGHT, 0));
        assert_eq!(geom.nearest_port(0), (PortId::LEFT, 13));
        assert_eq!(geom.nearest_port(31), (PortId::RIGHT, 12));
        // Row 16 is equidistant (3 domains); ties go to the left port.
        assert_eq!(geom.nearest_port(16), (PortId::LEFT, 3));
        // The worst-case access from canonical alignment is row 0.
        assert_eq!(geom.max_shift_distance(), 13);
        // Every distance is within the physical overhead the spec
        // reserves, so nearest-port alignment never runs off the wire.
        let spec = NanowireSpec::coruscant(32, 7);
        assert!(geom.max_shift_distance() <= spec.overhead_domains());
    }

    #[test]
    fn shift_offsets_are_signed_row_minus_port() {
        let geom = PortGeometry::coruscant(32, 7);
        assert_eq!(geom.shift_offset(0, PortId::LEFT), Some(-13));
        assert_eq!(geom.shift_offset(31, PortId::RIGHT), Some(12));
        assert_eq!(geom.shift_offset(19, PortId::RIGHT), Some(0));
        assert_eq!(geom.shift_offset(5, PortId(9)), None);
    }

    #[test]
    fn shift_cost_prices_per_step() {
        let c = PortGeometry::shift_cost(13, &LatencyParams::PAPER, &EnergyParams::PAPER);
        assert_eq!(c.cycles, 13);
        assert!((c.energy_pj - 1.3).abs() < 1e-12);
        assert_eq!(
            PortGeometry::shift_cost(0, &LatencyParams::PAPER, &EnergyParams::PAPER),
            Cost::ZERO
        );
    }

    #[test]
    fn single_port_geometry_has_no_spacing() {
        let geom = PortGeometry::of(&NanowireSpec::single_port(8));
        assert_eq!(geom.port_count(), 1);
        assert_eq!(geom.inter_port_spacing(), None);
        // Every row reaches the single port.
        for r in 0..8 {
            let (p, _) = geom.nearest_port(r);
            assert_eq!(p, PortId::LEFT);
        }
    }
}
