use std::fmt;

/// Errors produced by device-level racetrack operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A shift would push data domains past the extremity of the nanowire,
    /// destroying stored bits.
    ShiftOverrun {
        /// Requested shift in domains (positive = toward higher positions).
        requested: isize,
        /// Maximum legal shift in the requested direction.
        available: isize,
    },
    /// The referenced access port does not exist on this nanowire.
    UnknownPort(usize),
    /// The referenced port cannot perform the requested operation
    /// (e.g. writing through a read-only port).
    PortCapability {
        /// Index of the offending port.
        port: usize,
        /// Human-readable description of the missing capability.
        needed: &'static str,
    },
    /// A transverse access spans more domains than the device supports.
    TrdExceeded {
        /// Number of domains the access would span.
        span: usize,
        /// Maximum transverse-read distance of the device.
        limit: usize,
    },
    /// A segment index was outside the region between the access ports.
    SegmentIndex {
        /// Offending index.
        index: usize,
        /// Number of domains in the segment.
        len: usize,
    },
    /// A logical data row index was out of range.
    RowIndex {
        /// Offending row index.
        index: usize,
        /// Number of data rows on the wire.
        len: usize,
    },
    /// The nanowire specification is inconsistent (e.g. ports placed outside
    /// the wire, or too few overhead domains).
    BadSpec(String),
    /// A fault-injection configuration holds a probability that is NaN,
    /// infinite, outside `[0, 1]`, or a direction pair that sums past one.
    BadFaultConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShiftOverrun {
                requested,
                available,
            } => write!(
                f,
                "shift of {requested} domains overruns the wire (at most {available} available)"
            ),
            Error::UnknownPort(p) => write!(f, "no access port with index {p}"),
            Error::PortCapability { port, needed } => {
                write!(f, "port {port} cannot {needed}")
            }
            Error::TrdExceeded { span, limit } => write!(
                f,
                "transverse access spans {span} domains but the device limit is {limit}"
            ),
            Error::SegmentIndex { index, len } => {
                write!(
                    f,
                    "segment index {index} out of range for segment of {len} domains"
                )
            }
            Error::RowIndex { index, len } => {
                write!(f, "row index {index} out of range for {len} data rows")
            }
            Error::BadSpec(msg) => write!(f, "invalid nanowire specification: {msg}"),
            Error::BadFaultConfig(msg) => write!(f, "invalid fault configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let cases = [
            Error::ShiftOverrun {
                requested: 5,
                available: 2,
            },
            Error::UnknownPort(3),
            Error::PortCapability {
                port: 1,
                needed: "write",
            },
            Error::TrdExceeded { span: 9, limit: 7 },
            Error::SegmentIndex { index: 8, len: 7 },
            Error::RowIndex { index: 40, len: 32 },
            Error::BadSpec("ports overlap".into()),
            Error::BadFaultConfig("p_tr_up = NaN is not a probability".into()),
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
