//! Aggregate energy helpers: data-movement and CPU-side energies used by the
//! memory-wall comparisons (paper Figs. 10–11).

use crate::params::CpuEnergyParams;
use serde::{Deserialize, Serialize};

/// Energy accounting for a workload executed on a conventional CPU with the
/// data resident in (DWM or DRAM) main memory: every operand crosses the
/// memory bus, then the CPU computes.
///
/// Paper §V-C: "the data movement energy ... is 30× the compute energy",
/// which drives the reported >25× average energy reduction of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuEnergyModel {
    params: CpuEnergyParams,
}

impl CpuEnergyModel {
    /// Creates a model from explicit CPU energy parameters.
    pub fn new(params: CpuEnergyParams) -> CpuEnergyModel {
        CpuEnergyModel { params }
    }

    /// The model with the paper's Table II parameters.
    pub fn paper() -> CpuEnergyModel {
        CpuEnergyModel::new(CpuEnergyParams::PAPER)
    }

    /// The underlying parameters.
    pub fn params(&self) -> &CpuEnergyParams {
        &self.params
    }

    /// Energy (pJ) to move `bytes` across the memory bus.
    pub fn transfer_energy_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.params.transfer_pj_per_byte
    }

    /// Energy (pJ) for `n` 32-bit adds on the CPU.
    pub fn add_energy_pj(&self, n: u64) -> f64 {
        n as f64 * self.params.add32_pj
    }

    /// Energy (pJ) for `n` 32-bit multiplies on the CPU.
    pub fn mult_energy_pj(&self, n: u64) -> f64 {
        n as f64 * self.params.mult32_pj
    }

    /// Total energy (pJ) for a kernel that performs `adds` additions and
    /// `mults` multiplications over operands totalling `bytes_moved` bytes
    /// of bus traffic (reads of inputs plus write-back of results).
    pub fn kernel_energy_pj(&self, adds: u64, mults: u64, bytes_moved: u64) -> f64 {
        self.add_energy_pj(adds) + self.mult_energy_pj(mults) + self.transfer_energy_pj(bytes_moved)
    }
}

impl Default for CpuEnergyModel {
    fn default() -> Self {
        CpuEnergyModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_dominates_compute() {
        // Paper §I: adding two 32-bit words costs 11x less than moving one
        // byte; check the constants preserve that relationship.
        let m = CpuEnergyModel::paper();
        let one_byte = m.transfer_energy_pj(1);
        let one_add = m.add_energy_pj(1);
        assert!(
            one_byte > 11.0 * one_add / 1.01,
            "byte {one_byte} add {one_add}"
        );
    }

    #[test]
    fn kernel_energy_adds_up() {
        let m = CpuEnergyModel::paper();
        let e = m.kernel_energy_pj(2, 3, 4);
        let expect = 2.0 * 111.0 + 3.0 * 164.0 + 4.0 * 1250.0;
        assert!((e - expect).abs() < 1e-9);
    }

    #[test]
    fn movement_vs_compute_ratio_near_30x_for_balanced_kernels() {
        // A representative PIM-offloadable kernel: one 4-byte result out,
        // two 4-byte operands in per op. Movement is 12 B/op = 15,000 pJ
        // vs ~137 pJ compute — two orders of magnitude, consistent with
        // the paper attributing the energy win to avoided movement.
        let m = CpuEnergyModel::paper();
        let movement = m.transfer_energy_pj(12);
        let compute = m.kernel_energy_pj(1, 1, 0) / 2.0;
        assert!(movement / compute > 30.0);
    }
}
