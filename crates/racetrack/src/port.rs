//! Access ports along a nanowire.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a port's stack of fixed layers and transistors can do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// A read-only port: a fixed magnetic layer sensed through `RWL`
    /// (paper Fig. 1, left port).
    ReadOnly,
    /// A read/write port using shift-based writing (paper Fig. 1, right
    /// port): `WWL` steers current between `BL` and `BL̅` through the fin.
    ReadWrite,
}

impl PortKind {
    /// Whether this port can write.
    pub fn can_write(self) -> bool {
        matches!(self, PortKind::ReadWrite)
    }
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::ReadOnly => write!(f, "read-only"),
            PortKind::ReadWrite => write!(f, "read/write"),
        }
    }
}

/// Identifier of a port on a particular nanowire (index into its port list,
/// ordered by physical position from the left extremity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub usize);

impl PortId {
    /// The leftmost port of a CORUSCANT PIM nanowire.
    pub const LEFT: PortId = PortId(0);
    /// The rightmost port of a two-port CORUSCANT PIM nanowire.
    pub const RIGHT: PortId = PortId(1);
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

impl From<usize> for PortId {
    fn from(i: usize) -> Self {
        PortId(i)
    }
}

/// An access point fabricated at a fixed physical position along the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessPort {
    /// Physical domain position under the port (0 = left extremity).
    pub position: usize,
    /// Read/write capability of the port.
    pub kind: PortKind,
}

impl AccessPort {
    /// Creates a read/write access port at `position`.
    pub fn read_write(position: usize) -> AccessPort {
        AccessPort {
            position,
            kind: PortKind::ReadWrite,
        }
    }

    /// Creates a read-only access port at `position`.
    pub fn read_only(position: usize) -> AccessPort {
        AccessPort {
            position,
            kind: PortKind::ReadOnly,
        }
    }
}

impl fmt::Display for AccessPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} port at domain {}", self.kind, self.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert!(PortKind::ReadWrite.can_write());
        assert!(!PortKind::ReadOnly.can_write());
    }

    #[test]
    fn constructors() {
        let p = AccessPort::read_write(14);
        assert_eq!(p.position, 14);
        assert!(p.kind.can_write());
        let q = AccessPort::read_only(20);
        assert!(!q.kind.can_write());
    }

    #[test]
    fn port_id_ordering() {
        assert!(PortId::LEFT < PortId::RIGHT);
        assert_eq!(PortId::from(0), PortId::LEFT);
    }

    #[test]
    fn display() {
        assert_eq!(PortId(3).to_string(), "port3");
        assert!(AccessPort::read_write(5).to_string().contains("read/write"));
    }
}
