//! Device-level timing, energy, and geometry constants.
//!
//! The CORUSCANT paper (§V-A) derives device constants from NVSim, LLG
//! micromagnetic simulation, LTSPICE sense-circuit design, and 45nm ASIC
//! synthesis scaled to 32nm. None of those tools are available here, so this
//! module carries the *outputs* of that flow: per-micro-operation latencies
//! and energies calibrated so that the compound operation costs reproduce the
//! paper's Table III (e.g. an 8-bit five-operand add = 26 cycles / 22.14 pJ
//! at TRD = 7). Each constant documents its provenance.

use serde::{Deserialize, Serialize};

/// Device cycle time in nanoseconds (paper §V-B: "presuming a 1ns cycle
/// speed, consistent with values reported by NVSIM and LLG for TR").
pub const DEVICE_CYCLE_NS: f64 = 1.0;

/// Memory-interface cycle time in nanoseconds (paper Table II, DDR3-1600).
pub const MEMORY_CYCLE_NS: f64 = 1.25;

/// Feature size in nanometers the design is scaled to (paper §V-A).
pub const FEATURE_NM: f64 = 32.0;

/// Maximum transverse-read distance demonstrated conservatively in the TR
/// literature the paper builds on (Roxy et al. 2020).
pub const TRD_CONSERVATIVE: usize = 4;

/// The TRD values the paper sweeps in its sensitivity study (§III-A).
pub const TRD_SWEEP: [usize; 3] = [3, 5, 7];

/// Default transverse-read distance, supported by the multi-domain MTJ
/// (Dutta et al. 2022) the paper cites.
pub const TRD_DEFAULT: usize = 7;

/// Per-micro-operation latencies in device cycles.
///
/// Every point access (read, write), every single-domain shift step, every
/// transverse read and every transverse write completes in one device cycle;
/// this is the granularity at which the paper counts compound operation
/// latencies (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyParams {
    /// Cycles for one point read at an access port.
    pub read: u64,
    /// Cycles for one point write at an access port.
    pub write: u64,
    /// Cycles per single-domain shift step.
    pub shift_per_step: u64,
    /// Cycles for one transverse read (any span up to the TRD).
    pub transverse_read: u64,
    /// Cycles for one transverse write (write + segmented shift).
    pub transverse_write: u64,
}

impl LatencyParams {
    /// The paper's 1-cycle-per-micro-op model.
    pub const PAPER: LatencyParams = LatencyParams {
        read: 1,
        write: 1,
        shift_per_step: 1,
        transverse_read: 1,
        transverse_write: 1,
    };
}

impl Default for LatencyParams {
    fn default() -> Self {
        LatencyParams::PAPER
    }
}

/// Per-micro-operation energies in picojoules, per nanowire.
///
/// `write` follows the ~0.1 pJ/bit DWM write energy the paper quotes in
/// §I. The transverse-read sense energies are calibrated so that the 8-bit
/// addition energies of Table III come out exactly:
///
/// * TRD = 3, 2-operand add: `32·E_w + 8·E_s + 8·E_tr3 = 10.15 pJ`
/// * TRD = 7, 5-operand add: `64·E_w + 40·E_s + 8·E_tr7 = 22.14 pJ`
///
/// With `E_w = E_s = 0.1 pJ` this gives `E_tr3 = 0.769 pJ` and
/// `E_tr7 = 1.468 pJ`; TRD = 5 is interpolated. The growth with TRD reflects
/// the larger sense current and the seven-level sense amplifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one point read (pJ).
    pub read: f64,
    /// Energy of one point write (pJ); ~0.1 pJ per the paper.
    pub write: f64,
    /// Energy per single-domain shift step (pJ) per nanowire.
    pub shift_per_step: f64,
    /// Energy of a transverse read spanning up to 3 domains (pJ).
    pub tr3: f64,
    /// Energy of a transverse read spanning up to 5 domains (pJ).
    pub tr5: f64,
    /// Energy of a transverse read spanning up to 7 domains (pJ).
    pub tr7: f64,
    /// Energy of a transverse write (pJ): one shift-based write plus a
    /// segment shift.
    pub transverse_write: f64,
}

impl EnergyParams {
    /// Constants calibrated to the paper's Table III (see type-level docs).
    pub const PAPER: EnergyParams = EnergyParams {
        read: 0.05,
        write: 0.1,
        shift_per_step: 0.1,
        tr3: 0.769,
        tr5: 1.118,
        tr7: 1.468,
        transverse_write: 0.2,
    };

    /// Transverse-read energy for a given span in domains.
    ///
    /// Spans between the calibrated points use the next calibrated value up,
    /// matching a sense amplifier provisioned for its maximum TRD.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero or exceeds 7 (the largest TRD the paper's
    /// cited multi-domain MTJ demonstrates).
    pub fn transverse_read(&self, span: usize) -> f64 {
        assert!((1..=7).contains(&span), "TR span {span} outside 1..=7");
        match span {
            1..=3 => self.tr3,
            4..=5 => self.tr5,
            _ => self.tr7,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::PAPER
    }
}

/// CPU-side energy constants used by the non-PIM comparison (paper Table II,
/// sourced from Molka et al. for the Intel Xeon X5670).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuEnergyParams {
    /// Energy of a 32-bit add on the CPU (pJ/op).
    pub add32_pj: f64,
    /// Energy of a 32-bit multiply on the CPU (pJ/op).
    pub mult32_pj: f64,
    /// Energy to move one byte across the memory bus (pJ/byte).
    pub transfer_pj_per_byte: f64,
}

impl CpuEnergyParams {
    /// Values from the paper's Table II.
    pub const PAPER: CpuEnergyParams = CpuEnergyParams {
        add32_pj: 111.0,
        mult32_pj: 164.0,
        transfer_pj_per_byte: 1250.0,
    };
}

impl Default for CpuEnergyParams {
    fn default() -> Self {
        CpuEnergyParams::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies_are_single_cycle() {
        let l = LatencyParams::default();
        assert_eq!(l.read, 1);
        assert_eq!(l.write, 1);
        assert_eq!(l.shift_per_step, 1);
        assert_eq!(l.transverse_read, 1);
        assert_eq!(l.transverse_write, 1);
    }

    #[test]
    fn tr_energy_monotone_in_span() {
        let e = EnergyParams::default();
        assert!(e.transverse_read(3) < e.transverse_read(5));
        assert!(e.transverse_read(5) < e.transverse_read(7));
        assert_eq!(e.transverse_read(1), e.transverse_read(3));
        assert_eq!(e.transverse_read(4), e.transverse_read(5));
        assert_eq!(e.transverse_read(6), e.transverse_read(7));
    }

    #[test]
    #[should_panic(expected = "outside 1..=7")]
    fn tr_energy_rejects_oversized_span() {
        EnergyParams::default().transverse_read(8);
    }

    /// Calibration check: the add energies of Table III must be reproduced
    /// by the micro-op decomposition documented on [`EnergyParams`].
    #[test]
    fn table3_add_energy_calibration() {
        let e = EnergyParams::default();
        let add_tr3 = 32.0 * e.write + 8.0 * e.shift_per_step + 8.0 * e.tr3;
        let add_tr7 = 64.0 * e.write + 40.0 * e.shift_per_step + 8.0 * e.tr7;
        assert!((add_tr3 - 10.15).abs() < 0.01, "got {add_tr3}");
        assert!((add_tr7 - 22.14).abs() < 0.01, "got {add_tr7}");
    }

    #[test]
    fn cpu_params_match_table2() {
        let c = CpuEnergyParams::default();
        assert_eq!(c.add32_pj, 111.0);
        assert_eq!(c.mult32_pj, 164.0);
        assert_eq!(c.transfer_pj_per_byte, 1250.0);
    }
}
