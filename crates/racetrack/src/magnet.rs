//! Magnetization direction of a single domain.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The magnetization direction of one magnetic domain.
///
/// Binary values are represented by the magnetization direction of each
/// domain, parallel or antiparallel to a fixed reference layer (paper
/// §II-A). We adopt the convention that [`Magnetization::Up`] stores a
/// logical `1` and [`Magnetization::Down`] stores a logical `0`.
///
/// # Example
///
/// ```
/// use coruscant_racetrack::Magnetization;
/// assert_eq!(Magnetization::from(true), Magnetization::Up);
/// assert!(bool::from(Magnetization::Up));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Magnetization {
    /// Antiparallel to the reference layer; stores logical `0`.
    #[default]
    Down,
    /// Parallel to the reference layer; stores logical `1`.
    Up,
}

impl Magnetization {
    /// The logical bit stored by this magnetization.
    pub fn bit(self) -> bool {
        matches!(self, Magnetization::Up)
    }

    /// The opposite magnetization.
    #[must_use]
    pub fn flipped(self) -> Magnetization {
        match self {
            Magnetization::Up => Magnetization::Down,
            Magnetization::Down => Magnetization::Up,
        }
    }
}

impl From<bool> for Magnetization {
    fn from(bit: bool) -> Self {
        if bit {
            Magnetization::Up
        } else {
            Magnetization::Down
        }
    }
}

impl From<Magnetization> for bool {
    fn from(m: Magnetization) -> bool {
        m.bit()
    }
}

impl fmt::Display for Magnetization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Magnetization::Up => write!(f, "+Z"),
            Magnetization::Down => write!(f, "-Z"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_roundtrip() {
        for b in [false, true] {
            assert_eq!(bool::from(Magnetization::from(b)), b);
        }
    }

    #[test]
    fn flip_is_involutive() {
        for m in [Magnetization::Up, Magnetization::Down] {
            assert_eq!(m.flipped().flipped(), m);
            assert_ne!(m.flipped(), m);
        }
    }

    #[test]
    fn default_is_down() {
        assert_eq!(Magnetization::default(), Magnetization::Down);
        assert!(!Magnetization::default().bit());
    }

    #[test]
    fn display() {
        assert_eq!(Magnetization::Up.to_string(), "+Z");
        assert_eq!(Magnetization::Down.to_string(), "-Z");
    }
}
