//! Transverse-read position codes: detecting and correcting shift
//! (alignment) faults.
//!
//! DWM shifting can over- or under-shift the domain train (§II-A). The
//! paper assumes the TR-based alignment fault tolerance it cites (a DSN'19
//! scheme that "counts the number of ones in overhead bits to check
//! position") with < 1% overhead; this module implements that idea so the
//! assumption is backed by working machinery:
//!
//! A *position code* writes a solid run of `1`s into the overhead domains
//! adjacent to the data window. A single transverse read over a fixed
//! physical window that straddles the run's edge then counts how many code
//! ones currently sit inside the window — when the wire is aligned,
//! exactly half the window is filled; each domain of misalignment moves
//! the count by one. One TR therefore reports both the direction and the
//! magnitude of a misalignment (up to ±half the window), and a corrective
//! shift restores alignment.

use crate::cost::CostMeter;
use crate::error::Error;
use crate::nanowire::Nanowire;
use crate::Result;
use serde::{Deserialize, Serialize};

/// The outcome of a position check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alignment {
    /// The data window sits exactly at the expected offset.
    Aligned,
    /// The train sits `n` domains too far right (over-shifted).
    OverShifted(usize),
    /// The train sits `n` domains too far left (under-shifted).
    UnderShifted(usize),
    /// The misalignment exceeds the code's detection range.
    OutOfRange,
}

impl Alignment {
    /// The corrective shift (in domains, positive = right) that restores
    /// alignment, or `None` when out of range.
    pub fn correction(&self) -> Option<isize> {
        match self {
            Alignment::Aligned => Some(0),
            Alignment::OverShifted(n) => Some(-(*n as isize)),
            Alignment::UnderShifted(n) => Some(*n as isize),
            Alignment::OutOfRange => None,
        }
    }
}

/// A position code tied to a nanowire geometry.
///
/// The code occupies the `window` overhead domains to the left of the
/// expected data window: the left half holds `1`s, the right half `0`s
/// (the data side). The check window is those same `window` physical
/// positions; a TR over it counts the ones currently inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionCode {
    /// Physical position of the first check-window domain.
    window_start: usize,
    /// Check window length (≤ the device TRD; even).
    window: usize,
    /// Expected data offset this code was written for.
    expected_offset: usize,
}

impl PositionCode {
    /// Plans a code for `wire`'s canonical alignment using a check window
    /// of `window` domains (even, at least 2, at most the TRD and the
    /// available left overhead).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadSpec`] when the wire lacks the overhead room
    /// or the window is invalid.
    pub fn plan(wire: &Nanowire, window: usize) -> Result<PositionCode> {
        let spec = wire.spec();
        let expected_offset = spec.initial_offset;
        if window < 2 || !window.is_multiple_of(2) {
            return Err(Error::BadSpec(format!(
                "position-code window {window} must be even and >= 2"
            )));
        }
        if window > spec.trd_limit {
            return Err(Error::BadSpec(format!(
                "position-code window {window} exceeds TRD {}",
                spec.trd_limit
            )));
        }
        if window > expected_offset {
            return Err(Error::BadSpec(format!(
                "position-code window {window} exceeds the left overhead {expected_offset}"
            )));
        }
        Ok(PositionCode {
            window_start: expected_offset - window,
            window,
            expected_offset,
        })
    }

    /// Writes the code pattern: ones in the left half of the window, the
    /// run travelling with the data (maintenance writes; the paper counts
    /// this in the < 1% overhead budget).
    ///
    /// The wire must currently be at its expected alignment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadSpec`] if the wire is not at the expected
    /// offset, or a range error.
    pub fn install(&self, wire: &mut Nanowire) -> Result<()> {
        if wire.offset() != self.expected_offset as isize {
            return Err(Error::BadSpec(
                "install the position code at the expected alignment".into(),
            ));
        }
        let half = self.window / 2;
        for i in 0..self.window {
            wire.poke_physical(self.window_start + i, i < half)?;
        }
        // Everything left of the run is also ones, so an under-shift
        // pulls more ones into the window instead of zeros.
        for p in 0..self.window_start {
            wire.poke_physical(p, true)?;
        }
        Ok(())
    }

    /// Checks alignment with a single transverse read over the fixed
    /// window.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the TR.
    pub fn check(&self, wire: &mut Nanowire, meter: &mut CostMeter) -> Result<Alignment> {
        let out = wire.transverse_read_window(
            self.window_start,
            self.window_start + self.window - 1,
            meter,
        )?;
        let half = (self.window / 2) as i64;
        let delta = i64::from(out.value) - half;
        // A right (over-)shift pushes the ones run deeper into the
        // window (count rises); a left (under-)shift drains it.
        Ok(match delta {
            0 => Alignment::Aligned,
            d if d > 0 && d < half => Alignment::OverShifted(d as usize),
            d if d < 0 && -d < half => Alignment::UnderShifted((-d) as usize),
            _ => Alignment::OutOfRange,
        })
    }

    /// Checks and, if misaligned within range, repairs the wire with a
    /// corrective shift. Returns the detected state.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn check_and_repair(
        &self,
        wire: &mut Nanowire,
        meter: &mut CostMeter,
    ) -> Result<Alignment> {
        let state = self.check(wire, meter)?;
        if let Some(corr) = state.correction() {
            if corr != 0 {
                wire.force_shift(corr, meter);
            }
        }
        Ok(state)
    }

    /// The unambiguous detection range in domains (half the window,
    /// exclusive: a saturated count cannot be distinguished from a larger
    /// misalignment and reports [`Alignment::OutOfRange`]).
    pub fn range(&self) -> usize {
        self.window / 2 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nanowire::NanowireSpec;

    fn guarded_wire() -> (Nanowire, PositionCode) {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let code = PositionCode::plan(&wire, 6).unwrap();
        code.install(&mut wire).unwrap();
        (wire, code)
    }

    #[test]
    fn aligned_wire_reports_aligned() {
        let (mut wire, code) = guarded_wire();
        let mut m = CostMeter::new();
        assert_eq!(code.check(&mut wire, &mut m).unwrap(), Alignment::Aligned);
        assert_eq!(m.total().cycles, 1, "one TR per check");
    }

    #[test]
    fn detects_over_and_under_shifts_with_magnitude() {
        // A window of 6 detects up to +/-2 unambiguously (a full +/-3
        // saturates the count and reads as out-of-range).
        for shift in 1..=2isize {
            let (mut wire, code) = guarded_wire();
            let mut m = CostMeter::new();
            wire.shift(shift, &mut m).unwrap();
            assert_eq!(
                code.check(&mut wire, &mut m).unwrap(),
                Alignment::OverShifted(shift as usize),
                "shift {shift}"
            );

            let (mut wire, code) = guarded_wire();
            wire.shift(-shift, &mut m).unwrap();
            assert_eq!(
                code.check(&mut wire, &mut m).unwrap(),
                Alignment::UnderShifted(shift as usize)
            );
        }
    }

    #[test]
    fn repair_restores_data_alignment() {
        let (mut wire, code) = guarded_wire();
        for r in 0..32 {
            wire.set_row(r, r % 3 == 0).unwrap();
        }
        let mut m = CostMeter::new();
        wire.shift(2, &mut m).unwrap(); // a double over-shift fault
        let state = code.check_and_repair(&mut wire, &mut m).unwrap();
        assert_eq!(state, Alignment::OverShifted(2));
        assert_eq!(wire.offset(), wire.spec().initial_offset as isize);
        for r in 0..32 {
            assert_eq!(wire.row(r), Some(r % 3 == 0), "row {r} after repair");
        }
        // And a subsequent check is clean.
        assert_eq!(code.check(&mut wire, &mut m).unwrap(), Alignment::Aligned);
    }

    #[test]
    fn beyond_range_reports_out_of_range() {
        let (mut wire, code) = guarded_wire();
        let mut m = CostMeter::new();
        wire.shift((code.range() + 2) as isize, &mut m).unwrap();
        // Far over-shift drains every code one out of the window.
        assert_eq!(
            code.check(&mut wire, &mut m).unwrap(),
            Alignment::OutOfRange
        );
        assert_eq!(Alignment::OutOfRange.correction(), None);
    }

    #[test]
    fn plan_validation() {
        let wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        assert!(PositionCode::plan(&wire, 5).is_err(), "odd window");
        assert!(PositionCode::plan(&wire, 0).is_err());
        assert!(PositionCode::plan(&wire, 8).is_err(), "exceeds TRD 7");
        // Window of 6 within a 12-domain left overhead: fine.
        assert!(PositionCode::plan(&wire, 6).is_ok());
    }

    #[test]
    fn install_requires_expected_alignment() {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let code = PositionCode::plan(&wire, 6).unwrap();
        let mut m = CostMeter::new();
        wire.shift(1, &mut m).unwrap();
        assert!(code.install(&mut wire).is_err());
    }

    #[test]
    fn detection_survives_data_contents() {
        // Whatever the stored data, the check window only sees overhead
        // domains within range.
        for pattern in [0u32, 0xFFFF_FFFF, 0xAAAA_AAAA] {
            let (mut wire, code) = guarded_wire();
            for r in 0..32 {
                wire.set_row(r, pattern >> (r % 32) & 1 == 1).unwrap();
            }
            let mut m = CostMeter::new();
            assert_eq!(code.check(&mut wire, &mut m).unwrap(), Alignment::Aligned);
            wire.shift(1, &mut m).unwrap();
            assert_eq!(
                code.check(&mut wire, &mut m).unwrap(),
                Alignment::OverShifted(1)
            );
        }
    }
}
