//! Fault injection for shift and transverse-read operations.
//!
//! DWM shifting is imprecise: a shift pulse may move the domain train one
//! position too far ("over-shift") or not far enough ("under-shift"), and a
//! transverse read may report the count one level too high or too low under
//! process variation (paper §II-A, §V-F). The paper determines a TR fault
//! probability of circa `1e-6` for four domains and notes that faults off by
//! two or more levels are negligible.
//!
//! [`FaultInjector`] draws these events from a seeded RNG so that fault
//! campaigns are reproducible.

use crate::error::Error;
use crate::Result;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The intrinsic transverse-read fault probability the paper derives from
/// LLG simulation and the total-differential method (§V-F).
pub const TR_FAULT_PROBABILITY: f64 = 1e-6;

/// Kinds of injectable device fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The domain train moved one step further than commanded.
    OverShift,
    /// The domain train moved one step less than commanded.
    UnderShift,
    /// A transverse read reported one level too high.
    TrLevelUp,
    /// A transverse read reported one level too low.
    TrLevelDown,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::OverShift => write!(f, "over-shift"),
            FaultKind::UnderShift => write!(f, "under-shift"),
            FaultKind::TrLevelUp => write!(f, "TR level +1"),
            FaultKind::TrLevelDown => write!(f, "TR level -1"),
        }
    }
}

/// Probabilities of each fault class.
///
/// All probabilities are per-operation. The default is fault-free; use
/// [`FaultConfig::paper`] for the paper's intrinsic TR fault rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a shift step over-shifts by one domain.
    pub p_over_shift: f64,
    /// Probability a shift step under-shifts by one domain.
    pub p_under_shift: f64,
    /// Probability a transverse read reports one level too high.
    pub p_tr_up: f64,
    /// Probability a transverse read reports one level too low.
    pub p_tr_down: f64,
}

impl FaultConfig {
    /// A configuration that never injects faults.
    pub const NONE: FaultConfig = FaultConfig {
        p_over_shift: 0.0,
        p_under_shift: 0.0,
        p_tr_up: 0.0,
        p_tr_down: 0.0,
    };

    /// The paper's reliability assumptions (§V-F): TR faults at `1e-6`
    /// split evenly between up and down level errors; shifting faults are
    /// assumed corrected by orthogonal fault-tolerance schemes (Ollivier
    /// et al. DSN'19) with negligible overhead, so they default to zero.
    pub fn paper() -> FaultConfig {
        FaultConfig {
            p_over_shift: 0.0,
            p_under_shift: 0.0,
            p_tr_up: TR_FAULT_PROBABILITY / 2.0,
            p_tr_down: TR_FAULT_PROBABILITY / 2.0,
        }
    }

    /// Sets both TR fault directions to `p / 2` (total TR fault rate `p`).
    #[must_use]
    pub fn with_tr_fault_rate(mut self, p: f64) -> FaultConfig {
        self.p_tr_up = p / 2.0;
        self.p_tr_down = p / 2.0;
        self
    }

    /// Sets both shift fault directions to `p / 2` (total shift fault rate
    /// `p`).
    #[must_use]
    pub fn with_shift_fault_rate(mut self, p: f64) -> FaultConfig {
        self.p_over_shift = p / 2.0;
        self.p_under_shift = p / 2.0;
        self
    }

    /// Whether any fault class has a nonzero probability.
    pub fn is_active(&self) -> bool {
        self.p_over_shift > 0.0
            || self.p_under_shift > 0.0
            || self.p_tr_up > 0.0
            || self.p_tr_down > 0.0
    }

    /// Checks that every field is a probability and that the directional
    /// pairs describe a distribution: each shift step is exactly one of
    /// over-shifted / under-shifted / correct, and each transverse read is
    /// exactly one of level-up / level-down / correct, so each pair must
    /// sum to at most one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFaultConfig`] naming the offending field if any
    /// probability is NaN, infinite, or outside `[0, 1]`, or if a
    /// direction pair sums past one.
    pub fn validate(&self) -> Result<()> {
        let fields = [
            ("p_over_shift", self.p_over_shift),
            ("p_under_shift", self.p_under_shift),
            ("p_tr_up", self.p_tr_up),
            ("p_tr_down", self.p_tr_down),
        ];
        for (name, p) in fields {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(Error::BadFaultConfig(format!(
                    "{name} = {p} is not a probability in [0, 1]"
                )));
            }
        }
        let pairs = [
            (
                "p_over_shift + p_under_shift",
                self.p_over_shift + self.p_under_shift,
            ),
            ("p_tr_up + p_tr_down", self.p_tr_up + self.p_tr_down),
        ];
        for (name, sum) in pairs {
            if sum > 1.0 {
                return Err(Error::BadFaultConfig(format!(
                    "{name} = {sum} exceeds 1 (the directions are mutually exclusive per operation)"
                )));
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

/// A seeded source of fault events.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SmallRng,
    injected: u64,
}

impl FaultInjector {
    /// Creates an injector with the given configuration and RNG seed.
    pub fn new(config: FaultConfig, seed: u64) -> FaultInjector {
        FaultInjector {
            config,
            rng: SmallRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// Creates an injector after [validating](FaultConfig::validate) the
    /// configuration — the entry point fault campaigns should use, so a
    /// NaN or out-of-range probability fails loudly instead of silently
    /// skewing every draw.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFaultConfig`] on an invalid configuration.
    pub fn validated(config: FaultConfig, seed: u64) -> Result<FaultInjector> {
        config.validate()?;
        Ok(FaultInjector::new(config, seed))
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of faults injected so far.
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    /// Draws the shift perturbation for one shift step: `-1` (under-shift),
    /// `0` (correct), or `+1` (over-shift) additional domains.
    pub fn shift_perturbation(&mut self) -> isize {
        let u: f64 = self.rng.random();
        if u < self.config.p_over_shift {
            self.injected += 1;
            1
        } else if u < self.config.p_over_shift + self.config.p_under_shift {
            self.injected += 1;
            -1
        } else {
            0
        }
    }

    /// Draws the level perturbation for one transverse read: `-1`, `0`, or
    /// `+1` levels. Faults of magnitude two or more are negligible per the
    /// paper and are not modeled.
    pub fn tr_perturbation(&mut self) -> i8 {
        let u: f64 = self.rng.random();
        if u < self.config.p_tr_up {
            self.injected += 1;
            1
        } else if u < self.config.p_tr_up + self.config.p_tr_down {
            self.injected += 1;
            -1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_config_injects_nothing() {
        let mut inj = FaultInjector::new(FaultConfig::NONE, 42);
        for _ in 0..10_000 {
            assert_eq!(inj.shift_perturbation(), 0);
            assert_eq!(inj.tr_perturbation(), 0);
        }
        assert_eq!(inj.injected_count(), 0);
    }

    #[test]
    fn paper_config_rate_is_1e6() {
        let c = FaultConfig::paper();
        assert!((c.p_tr_up + c.p_tr_down - TR_FAULT_PROBABILITY).abs() < 1e-18);
        assert!(c.is_active());
        assert!(!FaultConfig::NONE.is_active());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FaultConfig::NONE.with_tr_fault_rate(0.3);
        let mut a = FaultInjector::new(cfg, 7);
        let mut b = FaultInjector::new(cfg, 7);
        let sa: Vec<i8> = (0..100).map(|_| a.tr_perturbation()).collect();
        let sb: Vec<i8> = (0..100).map(|_| b.tr_perturbation()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn high_rate_injects_roughly_expected_fraction() {
        let cfg = FaultConfig::NONE.with_tr_fault_rate(0.5);
        let mut inj = FaultInjector::new(cfg, 1);
        let n = 20_000;
        let faults: u64 = (0..n).map(|_| u64::from(inj.tr_perturbation() != 0)).sum();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shift_faults_drawn_from_both_directions() {
        let cfg = FaultConfig::NONE.with_shift_fault_rate(0.8);
        let mut inj = FaultInjector::new(cfg, 3);
        let mut saw = [false; 3];
        for _ in 0..1000 {
            match inj.shift_perturbation() {
                -1 => saw[0] = true,
                0 => saw[1] = true,
                1 => saw[2] = true,
                _ => unreachable!("perturbation magnitude > 1"),
            }
        }
        assert!(saw.iter().all(|&s| s), "saw {saw:?}");
    }

    #[test]
    fn validate_accepts_sane_configs() {
        FaultConfig::NONE.validate().unwrap();
        FaultConfig::paper().validate().unwrap();
        FaultConfig::NONE
            .with_tr_fault_rate(1.0)
            .validate()
            .unwrap();
        FaultInjector::validated(FaultConfig::paper(), 1).unwrap();
    }

    #[test]
    fn validate_rejects_nan_infinite_and_out_of_range() {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.1, 1.5];
        for v in bad {
            for field in 0..4 {
                let mut c = FaultConfig::NONE;
                match field {
                    0 => c.p_over_shift = v,
                    1 => c.p_under_shift = v,
                    2 => c.p_tr_up = v,
                    _ => c.p_tr_down = v,
                }
                let err = c.validate().unwrap_err();
                assert!(
                    matches!(err, Error::BadFaultConfig(_)),
                    "field {field} value {v}: {err}"
                );
            }
        }
        assert!(
            FaultInjector::validated(FaultConfig::NONE.with_tr_fault_rate(f64::NAN), 0).is_err()
        );
    }

    #[test]
    fn validate_rejects_direction_pairs_past_one() {
        let c = FaultConfig {
            p_over_shift: 0.7,
            p_under_shift: 0.7,
            ..FaultConfig::NONE
        };
        assert!(matches!(
            c.validate().unwrap_err(),
            Error::BadFaultConfig(_)
        ));
        let c = FaultConfig {
            p_tr_up: 0.6,
            p_tr_down: 0.6,
            ..FaultConfig::NONE
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_of_kinds() {
        for k in [
            FaultKind::OverShift,
            FaultKind::UnderShift,
            FaultKind::TrLevelUp,
            FaultKind::TrLevelDown,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }
}
