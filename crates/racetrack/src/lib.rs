//! Device-level model of Domain-Wall Memory (DWM), also known as Racetrack
//! Memory, as used by the CORUSCANT processing-in-memory architecture
//! (Ollivier et al., MICRO 2022).
//!
//! A DWM *nanowire* is a ferromagnetic strip holding a train of magnetic
//! *domains* separated by domain walls. Each domain stores one bit as its
//! magnetization direction. Domains do not have individual access devices;
//! instead one or more *access ports* are fabricated along the wire and the
//! whole domain train is *shifted* under the ports by lateral current pulses.
//!
//! This crate models:
//!
//! * [`Nanowire`] — the domain train, shift semantics (including overflow
//!   of data into overhead domains), point read/write at ports, and
//!   shift-based writes.
//! * **Transverse read** ([`Nanowire::transverse_read`]) — an aggregate
//!   access along the wire that senses the *number of ones* between two
//!   ports, the primitive CORUSCANT turns into a polymorphic logic gate.
//! * **Transverse write** ([`Nanowire::transverse_write`]) — writing a bit
//!   under one port while advancing only the segment between the ports
//!   (*segmented shifting*, paper §IV-B / Fig. 9).
//! * [`fault`] — injection of shift (over/under-shift) and transverse-read
//!   (level off-by-one) faults.
//! * [`cost`] / [`params`] / [`energy`] — cycle and energy accounting with
//!   constants calibrated to the paper's device assumptions (§V-A).
//!
//! # Example
//!
//! ```
//! use coruscant_racetrack::{Nanowire, NanowireSpec};
//!
//! # fn main() -> Result<(), coruscant_racetrack::Error> {
//! // 32 data domains, two ports spaced for a transverse-read distance of 7.
//! let spec = NanowireSpec::coruscant(32, 7);
//! let mut wire = Nanowire::new(spec);
//!
//! // Store a bit pattern into the segment between the two access ports.
//! for (i, bit) in [true, false, true, true, false, true, true].iter().enumerate() {
//!     wire.set_segment_bit(i, *bit)?;
//! }
//! // Transverse read counts the ones in the whole segment.
//! assert_eq!(wire.transverse_read_full()?.value, 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod cost;
pub mod energy;
pub mod fault;
pub mod magnet;
pub mod nanowire;
pub mod params;
pub mod port;

mod error;

pub use align::{Alignment, PositionCode};
pub use cost::{Cost, CostMeter, OpClass, PortGeometry};
pub use error::Error;
pub use fault::{FaultConfig, FaultInjector, FaultKind};
pub use magnet::Magnetization;
pub use nanowire::{Nanowire, NanowireSpec, TrOutcome};
pub use port::{AccessPort, PortId, PortKind};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
