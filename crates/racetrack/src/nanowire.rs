//! The nanowire: a shiftable train of magnetic domains with access ports.

use crate::cost::{Cost, CostMeter, OpClass};
use crate::error::Error;
use crate::fault::FaultInjector;
use crate::params::{EnergyParams, LatencyParams};
use crate::port::{AccessPort, PortId};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Static geometry of a nanowire: how many data domains it stores, how many
/// total domains it has (data plus overhead), where its access ports sit,
/// and the maximum transverse-read distance its sensing supports.
///
/// Positions are *physical*: domain 0 is the left extremity. The stored data
/// occupies a window of `data_domains` consecutive physical positions that
/// moves as the wire shifts; `initial_offset` is the window start in the
/// canonical (freshly initialized) state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NanowireSpec {
    /// Number of logical data rows stored (Y in the paper, typically 32).
    pub data_domains: usize,
    /// Total physical domains including overhead (grey domains in Fig. 1).
    pub total_domains: usize,
    /// Physical position of data row 0 in the canonical state.
    pub initial_offset: usize,
    /// Access ports, ordered by physical position.
    pub ports: Vec<AccessPort>,
    /// Maximum number of domains a single transverse access may span.
    pub trd_limit: usize,
}

impl NanowireSpec {
    /// A conventional single-access-port wire: `2Y - 1` total domains with a
    /// read/write port positioned so every data row can reach it (paper
    /// §III-A: 63 domains for Y = 32).
    pub fn single_port(data_domains: usize) -> NanowireSpec {
        let y = data_domains;
        NanowireSpec {
            data_domains: y,
            total_domains: 2 * y - 1,
            initial_offset: 0,
            ports: vec![AccessPort::read_write(y - 1)],
            trd_limit: 1,
        }
    }

    /// A CORUSCANT PIM wire: two read/write ports spaced `trd - 1` apart so
    /// the segment between them (ports inclusive) spans exactly `trd`
    /// domains, with enough overhead domains for any row to align under a
    /// feasible port.
    ///
    /// For Y = 32 and TRD = 7 this yields 25 overhead domains (57 total),
    /// matching the paper's §III-A accounting.
    ///
    /// # Panics
    ///
    /// Panics if `trd < 2` or `trd > data_domains`.
    pub fn coruscant(data_domains: usize, trd: usize) -> NanowireSpec {
        assert!(trd >= 2, "CORUSCANT wires need two ports (trd >= 2)");
        assert!(
            trd <= data_domains,
            "transverse segment cannot exceed the data length"
        );
        let y = data_domains;
        // Center the inter-port segment on the data window.
        let dl = (y - trd).div_ceil(2); // data index under the left port, canonically
        let dr = dl + trd - 1; // data index under the right port, canonically
                               // Overhead: aligning row (y-1) under the right port shifts the data
                               // left by (y-1-dr); aligning row 0 under the left port shifts it
                               // right by dl.
        let left_overhead = y - 1 - dr;
        let right_overhead = dl;
        let total = y + left_overhead + right_overhead;
        NanowireSpec {
            data_domains: y,
            total_domains: total,
            initial_offset: left_overhead,
            ports: vec![
                AccessPort::read_write(left_overhead + dl),
                AccessPort::read_write(left_overhead + dr),
            ],
            trd_limit: trd,
        }
    }

    /// Number of overhead (non-data) domains.
    pub fn overhead_domains(&self) -> usize {
        self.total_domains - self.data_domains
    }

    /// Number of domains in the segment between the outermost ports,
    /// ports inclusive. Zero if the wire has fewer than two ports.
    pub fn segment_len(&self) -> usize {
        match (self.ports.first(), self.ports.last()) {
            (Some(a), Some(b)) if self.ports.len() >= 2 => b.position - a.position + 1,
            _ => 0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadSpec`] when ports are out of range or unordered,
    /// when the data window does not fit, or when the TRD limit is zero.
    pub fn validate(&self) -> Result<()> {
        if self.data_domains == 0 {
            return Err(Error::BadSpec("zero data domains".into()));
        }
        if self.total_domains < self.data_domains {
            return Err(Error::BadSpec(
                "total domains smaller than data domains".into(),
            ));
        }
        if self.initial_offset + self.data_domains > self.total_domains {
            return Err(Error::BadSpec("initial data window out of range".into()));
        }
        if self.ports.is_empty() {
            return Err(Error::BadSpec("a nanowire needs at least one port".into()));
        }
        let mut prev: Option<usize> = None;
        for p in &self.ports {
            if p.position >= self.total_domains {
                return Err(Error::BadSpec(format!(
                    "port at {} beyond wire of {} domains",
                    p.position, self.total_domains
                )));
            }
            if let Some(q) = prev {
                if p.position <= q {
                    return Err(Error::BadSpec("ports must be strictly ordered".into()));
                }
            }
            prev = Some(p.position);
        }
        if self.trd_limit == 0 {
            return Err(Error::BadSpec("TRD limit must be at least 1".into()));
        }
        Ok(())
    }
}

/// Result of a transverse read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrOutcome {
    /// Sensed number of `1` domains in the span (possibly perturbed by an
    /// injected fault).
    pub value: u8,
    /// Number of domains spanned.
    pub span: u8,
}

impl TrOutcome {
    /// Whether at least `level` ones were sensed — the `SA[j]` outputs of
    /// the CORUSCANT seven-level sense amplifier (paper Fig. 4a).
    pub fn at_least(&self, level: u8) -> bool {
        self.value >= level
    }
}

/// A simulated DWM nanowire.
///
/// The wire owns its domain train, tracks the current shift offset of the
/// data window, and charges every operation to a caller-provided
/// [`CostMeter`].
///
/// # Example
///
/// ```
/// use coruscant_racetrack::{CostMeter, Nanowire, NanowireSpec, PortId};
///
/// # fn main() -> Result<(), coruscant_racetrack::Error> {
/// let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
/// let mut meter = CostMeter::new();
///
/// // Align data row 3 under the left port and write a bit through it.
/// wire.align_row(3, PortId::LEFT, &mut meter)?;
/// wire.write(PortId::LEFT, true, &mut meter)?;
/// assert!(wire.read(PortId::LEFT, &mut meter)?);
/// assert_eq!(wire.row(3), Some(true));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Nanowire {
    spec: NanowireSpec,
    domains: Vec<bool>,
    offset: isize,
    injector: Option<FaultInjector>,
    latency: LatencyParams,
    energy: EnergyParams,
}

impl Nanowire {
    /// Creates a zero-initialized wire from a specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification is invalid; use
    /// [`NanowireSpec::validate`] to check first.
    pub fn new(spec: NanowireSpec) -> Nanowire {
        spec.validate().expect("invalid nanowire spec");
        let domains = vec![false; spec.total_domains];
        let offset = spec.initial_offset as isize;
        Nanowire {
            spec,
            domains,
            offset,
            injector: None,
            latency: LatencyParams::PAPER,
            energy: EnergyParams::PAPER,
        }
    }

    /// Attaches a fault injector; subsequent shifts and transverse reads may
    /// be perturbed.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Nanowire {
        self.injector = Some(injector);
        self
    }

    /// Overrides the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyParams) -> Nanowire {
        self.latency = latency;
        self
    }

    /// Overrides the energy model.
    #[must_use]
    pub fn with_energy(mut self, energy: EnergyParams) -> Nanowire {
        self.energy = energy;
        self
    }

    /// The wire's specification.
    pub fn spec(&self) -> &NanowireSpec {
        &self.spec
    }

    /// Current physical position of data row 0.
    pub fn offset(&self) -> isize {
        self.offset
    }

    /// The logical data row currently under `port`, if the port is over the
    /// data window.
    pub fn row_under_port(&self, port: PortId) -> Result<Option<usize>> {
        let p = self.port(port)?;
        let idx = p.position as isize - self.offset;
        if idx >= 0 && (idx as usize) < self.spec.data_domains {
            Ok(Some(idx as usize))
        } else {
            Ok(None)
        }
    }

    /// Reads logical data row `r` directly from the model (no device access,
    /// no cost) — an oracle for tests and verification. Returns `None` if
    /// `r` is out of range.
    pub fn row(&self, r: usize) -> Option<bool> {
        if r >= self.spec.data_domains {
            return None;
        }
        let idx = self.offset + r as isize;
        self.domains.get(idx as usize).copied()
    }

    /// Writes logical data row `r` directly into the model (no device
    /// access, no cost) — a setup helper for tests and loaders.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RowIndex`] if `r` is out of range.
    pub fn set_row(&mut self, r: usize, bit: bool) -> Result<()> {
        if r >= self.spec.data_domains {
            return Err(Error::RowIndex {
                index: r,
                len: self.spec.data_domains,
            });
        }
        let idx = (self.offset + r as isize) as usize;
        self.domains[idx] = bit;
        Ok(())
    }

    fn port(&self, id: PortId) -> Result<&AccessPort> {
        self.spec.ports.get(id.0).ok_or(Error::UnknownPort(id.0))
    }

    /// Number of domains in the inter-port segment (ports inclusive).
    pub fn segment_len(&self) -> usize {
        self.spec.segment_len()
    }

    /// Reads the `i`-th domain of the inter-port segment (0 = under the
    /// left port) without device access or cost — an oracle for tests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SegmentIndex`] if `i` is outside the segment.
    pub fn segment_bit(&self, i: usize) -> Result<bool> {
        let len = self.segment_len();
        if i >= len {
            return Err(Error::SegmentIndex { index: i, len });
        }
        let base = self.spec.ports[0].position;
        Ok(self.domains[base + i])
    }

    /// Writes the `i`-th domain of the inter-port segment directly (setup
    /// helper; no cost).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SegmentIndex`] if `i` is outside the segment.
    pub fn set_segment_bit(&mut self, i: usize, bit: bool) -> Result<()> {
        let len = self.segment_len();
        if i >= len {
            return Err(Error::SegmentIndex { index: i, len });
        }
        let base = self.spec.ports[0].position;
        self.domains[base + i] = bit;
        Ok(())
    }

    /// All segment bits, left to right (oracle; no cost).
    pub fn segment_bits(&self) -> Vec<bool> {
        let base = self.spec.ports[0].position;
        self.domains[base..base + self.segment_len()].to_vec()
    }

    /// Maximum legal shift in each direction from the current offset:
    /// `(left, right)` in domains.
    pub fn shift_slack(&self) -> (isize, isize) {
        let left = self.offset;
        let right = (self.spec.total_domains - self.spec.data_domains) as isize - self.offset;
        (left, right)
    }

    /// Shifts the domain train by `delta` positions (positive moves data
    /// toward higher physical positions, i.e. to the right). With a fault
    /// injector attached, each step may over- or under-shift.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShiftOverrun`] if the data window would leave the
    /// wire; the wire state is unchanged in that case.
    pub fn shift(&mut self, delta: isize, meter: &mut CostMeter) -> Result<()> {
        if delta == 0 {
            return Ok(());
        }
        let steps = delta.unsigned_abs();
        // Pre-validate the nominal move; faults may still overrun (handled
        // per-step below, saturating at the extremity like a real wire
        // losing bits — but we treat data loss as an error).
        let (left, right) = self.shift_slack();
        if delta > 0 && delta > right {
            return Err(Error::ShiftOverrun {
                requested: delta,
                available: right,
            });
        }
        if delta < 0 && -delta > left {
            return Err(Error::ShiftOverrun {
                requested: delta,
                available: -left,
            });
        }
        let dir = delta.signum();
        for _ in 0..steps {
            let mut step = dir;
            if let Some(inj) = &mut self.injector {
                step += dir * inj.shift_perturbation();
            }
            self.apply_shift_steps(step)?;
            meter.charge_class(
                OpClass::Shift,
                Cost::new(self.latency.shift_per_step, self.energy.shift_per_step),
            );
        }
        Ok(())
    }

    /// Moves the physical train by `step` (already fault-adjusted), keeping
    /// data inside the wire.
    fn apply_shift_steps(&mut self, step: isize) -> Result<()> {
        if step == 0 {
            return Ok(());
        }
        let new_offset = self.offset + step;
        if new_offset < 0 || new_offset as usize + self.spec.data_domains > self.spec.total_domains
        {
            return Err(Error::ShiftOverrun {
                requested: step,
                available: if step > 0 {
                    (self.spec.total_domains - self.spec.data_domains) as isize - self.offset
                } else {
                    -self.offset
                },
            });
        }
        if step > 0 {
            for _ in 0..step {
                self.domains.pop();
                self.domains.insert(0, false);
            }
        } else {
            for _ in 0..(-step) {
                self.domains.remove(0);
                self.domains.push(false);
            }
        }
        self.offset = new_offset;
        Ok(())
    }

    /// Shifts so that logical data row `r` sits under `port`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RowIndex`] for an out-of-range row,
    /// [`Error::UnknownPort`] for a bad port, or [`Error::ShiftOverrun`] if
    /// that alignment is physically unreachable for this port.
    pub fn align_row(&mut self, r: usize, port: PortId, meter: &mut CostMeter) -> Result<()> {
        if r >= self.spec.data_domains {
            return Err(Error::RowIndex {
                index: r,
                len: self.spec.data_domains,
            });
        }
        let p = self.port(port)?.position as isize;
        let target_offset = p - r as isize;
        let delta = target_offset - self.offset;
        self.shift(delta, meter)
    }

    /// Number of shift steps [`Nanowire::align_row`] would take, without
    /// performing them.
    ///
    /// # Errors
    ///
    /// Same validation as [`Nanowire::align_row`], minus the overrun check.
    pub fn align_distance(&self, r: usize, port: PortId) -> Result<isize> {
        if r >= self.spec.data_domains {
            return Err(Error::RowIndex {
                index: r,
                len: self.spec.data_domains,
            });
        }
        let p = self.port(port)?.position as isize;
        Ok(p - r as isize - self.offset)
    }

    /// Reads the domain currently under `port`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] for a bad port id.
    pub fn read(&mut self, port: PortId, meter: &mut CostMeter) -> Result<bool> {
        let p = self.port(port)?;
        let bit = self.domains[p.position];
        meter.charge_class(
            OpClass::Read,
            Cost::new(self.latency.read, self.energy.read),
        );
        Ok(bit)
    }

    /// Writes `bit` to the domain currently under `port` (shift-based
    /// write through the port's fin, paper §II-A).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] for a bad port id or
    /// [`Error::PortCapability`] when writing through a read-only port.
    pub fn write(&mut self, port: PortId, bit: bool, meter: &mut CostMeter) -> Result<()> {
        let p = *self.port(port)?;
        if !p.kind.can_write() {
            return Err(Error::PortCapability {
                port: port.0,
                needed: "write",
            });
        }
        self.domains[p.position] = bit;
        meter.charge_class(
            OpClass::Write,
            Cost::new(self.latency.write, self.energy.write),
        );
        Ok(())
    }

    /// Transverse read between two ports (inclusive): senses the number of
    /// `1` domains in the span. With a fault injector attached the sensed
    /// level may be off by one (clamped to the valid range).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] for bad port ids or
    /// [`Error::TrdExceeded`] when the span exceeds the device's TRD limit.
    pub fn transverse_read(
        &mut self,
        a: PortId,
        b: PortId,
        meter: &mut CostMeter,
    ) -> Result<TrOutcome> {
        let pa = self.port(a)?.position;
        let pb = self.port(b)?.position;
        let (lo, hi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        self.transverse_read_range(lo, hi, meter)
    }

    /// Transverse read across the full inter-port segment of a two-port
    /// wire — the common CORUSCANT case.
    ///
    /// # Errors
    ///
    /// As for [`Nanowire::transverse_read`].
    pub fn transverse_read_full(&mut self) -> Result<TrOutcome> {
        let mut meter = CostMeter::new();
        self.transverse_read(PortId::LEFT, PortId::RIGHT, &mut meter)
    }

    /// Transverse read from a port to the wire extremity on the given side
    /// (the segmented TR of paper Fig. 3, enabling full-wire queries).
    ///
    /// # Errors
    ///
    /// As for [`Nanowire::transverse_read`].
    pub fn transverse_read_to_extremity(
        &mut self,
        port: PortId,
        toward_left: bool,
        meter: &mut CostMeter,
    ) -> Result<TrOutcome> {
        let p = self.port(port)?.position;
        if toward_left {
            self.transverse_read_range(0, p, meter)
        } else {
            self.transverse_read_range(p, self.spec.total_domains - 1, meter)
        }
    }

    fn transverse_read_range(
        &mut self,
        lo: usize,
        hi: usize,
        meter: &mut CostMeter,
    ) -> Result<TrOutcome> {
        let span = hi - lo + 1;
        if span > self.spec.trd_limit {
            return Err(Error::TrdExceeded {
                span,
                limit: self.spec.trd_limit,
            });
        }
        let mut count = self.domains[lo..=hi].iter().filter(|&&b| b).count() as i16;
        if let Some(inj) = &mut self.injector {
            count += i16::from(inj.tr_perturbation());
            count = count.clamp(0, span as i16);
        }
        meter.charge_class(
            OpClass::TransverseRead,
            Cost::new(
                self.latency.transverse_read,
                self.energy.transverse_read(span),
            ),
        );
        Ok(TrOutcome {
            value: count as u8,
            span: span as u8,
        })
    }

    /// Transverse write (paper §IV-B, Fig. 9): writes `bit` under the left
    /// port while advancing only the inter-port segment one position toward
    /// the right port; the domain under the right port exits toward ground
    /// and is returned. The rest of the wire (and the data-window offset)
    /// is untouched — this is *segmented shifting*.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] if the wire has fewer than two ports,
    /// [`Error::PortCapability`] if the left port cannot write, or
    /// [`Error::TrdExceeded`] if the segment exceeds the TRD limit.
    pub fn transverse_write(&mut self, bit: bool, meter: &mut CostMeter) -> Result<bool> {
        let left = *self.port(PortId::LEFT)?;
        let right = *self.port(PortId::RIGHT)?;
        if !left.kind.can_write() {
            return Err(Error::PortCapability {
                port: 0,
                needed: "write",
            });
        }
        let span = right.position - left.position + 1;
        if span > self.spec.trd_limit {
            return Err(Error::TrdExceeded {
                span,
                limit: self.spec.trd_limit,
            });
        }
        let expelled = self.domains[right.position];
        for i in (left.position + 1..=right.position).rev() {
            self.domains[i] = self.domains[i - 1];
        }
        self.domains[left.position] = bit;
        meter.charge_class(
            OpClass::TransverseWrite,
            Cost::new(self.latency.transverse_write, self.energy.transverse_write),
        );
        Ok(expelled)
    }

    /// Number of faults injected so far (0 if no injector is attached).
    pub fn injected_fault_count(&self) -> u64 {
        self.injector.as_ref().map_or(0, |i| i.injected_count())
    }

    /// Transverse read over an explicit physical window `[lo, hi]` —
    /// the segmented TR of paper Fig. 3, used by position-checking codes
    /// that count ones in overhead domains.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TrdExceeded`] when the span exceeds the TRD, or
    /// [`Error::SegmentIndex`] when the window leaves the wire.
    pub fn transverse_read_window(
        &mut self,
        lo: usize,
        hi: usize,
        meter: &mut CostMeter,
    ) -> Result<TrOutcome> {
        if hi >= self.spec.total_domains || lo > hi {
            return Err(Error::SegmentIndex {
                index: hi,
                len: self.spec.total_domains,
            });
        }
        self.transverse_read_range(lo, hi, meter)
    }

    /// Reads a physical domain directly (oracle/maintenance access; no
    /// device cost). Returns `None` out of range.
    pub fn peek_physical(&self, pos: usize) -> Option<bool> {
        self.domains.get(pos).copied()
    }

    /// Writes a physical domain directly (maintenance access used when
    /// initializing overhead-domain codes; no device cost).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SegmentIndex`] out of range.
    pub fn poke_physical(&mut self, pos: usize, bit: bool) -> Result<()> {
        if pos >= self.spec.total_domains {
            return Err(Error::SegmentIndex {
                index: pos,
                len: self.spec.total_domains,
            });
        }
        self.domains[pos] = bit;
        Ok(())
    }

    /// Applies a raw physical shift of `steps` domains without fault
    /// injection or overrun *errors* — saturating at the extremities like
    /// a real wire losing bits into the pads. Used by alignment-repair
    /// logic that must move a misaligned wire back into range.
    pub fn force_shift(&mut self, steps: isize, meter: &mut CostMeter) {
        let max_offset = (self.spec.total_domains - self.spec.data_domains) as isize;
        let clamped = (self.offset + steps).clamp(0, max_offset) - self.offset;
        let _ = self.apply_shift_steps(clamped);
        meter.charge_class(
            OpClass::Shift,
            Cost::new(
                self.latency.shift_per_step * steps.unsigned_abs() as u64,
                self.energy.shift_per_step * steps.unsigned_abs() as f64,
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn meter() -> CostMeter {
        CostMeter::new()
    }

    #[test]
    fn single_port_spec_matches_paper_domain_count() {
        let spec = NanowireSpec::single_port(32);
        assert_eq!(spec.total_domains, 63);
        assert_eq!(spec.overhead_domains(), 31);
        spec.validate().unwrap();
    }

    #[test]
    fn coruscant_spec_y32_trd7_matches_paper() {
        let spec = NanowireSpec::coruscant(32, 7);
        assert_eq!(spec.overhead_domains(), 25, "paper §III-A: 25 overhead");
        assert_eq!(spec.total_domains, 57);
        assert_eq!(spec.segment_len(), 7);
        spec.validate().unwrap();
    }

    #[test]
    fn coruscant_specs_for_sweep_are_valid() {
        for trd in [3, 5, 7] {
            let spec = NanowireSpec::coruscant(32, trd);
            spec.validate().unwrap();
            assert_eq!(spec.segment_len(), trd);
        }
    }

    #[test]
    fn bad_specs_rejected() {
        let mut s = NanowireSpec::coruscant(32, 7);
        s.ports.clear();
        assert!(matches!(s.validate(), Err(Error::BadSpec(_))));

        let mut s = NanowireSpec::coruscant(32, 7);
        s.ports[1].position = s.ports[0].position;
        assert!(s.validate().is_err());

        let mut s = NanowireSpec::single_port(8);
        s.total_domains = 4;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rows_roundtrip_through_set_and_get() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        for r in 0..32 {
            w.set_row(r, r % 3 == 0).unwrap();
        }
        for r in 0..32 {
            assert_eq!(w.row(r), Some(r % 3 == 0));
        }
        assert_eq!(w.row(32), None);
        assert!(w.set_row(32, true).is_err());
    }

    #[test]
    fn shift_preserves_data_and_moves_offset() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        for r in 0..32 {
            w.set_row(r, r % 2 == 0).unwrap();
        }
        let mut m = meter();
        let before = w.offset();
        w.shift(5, &mut m).unwrap();
        assert_eq!(w.offset(), before + 5);
        for r in 0..32 {
            assert_eq!(w.row(r), Some(r % 2 == 0), "row {r} after shift");
        }
        w.shift(-5, &mut m).unwrap();
        assert_eq!(w.offset(), before);
        assert_eq!(m.total().cycles, 10);
    }

    #[test]
    fn shift_overrun_is_detected_and_state_unchanged() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let (left, right) = w.shift_slack();
        let mut m = meter();
        let err = w.shift(right + 1, &mut m).unwrap_err();
        assert!(matches!(err, Error::ShiftOverrun { .. }));
        assert_eq!(w.offset(), w.spec().initial_offset as isize);
        let err = w.shift(-(left + 1), &mut m).unwrap_err();
        assert!(matches!(err, Error::ShiftOverrun { .. }));
    }

    #[test]
    fn align_row_places_row_under_port() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        for r in 0..32 {
            w.set_row(r, r == 17).unwrap();
        }
        let mut m = meter();
        w.align_row(17, PortId::LEFT, &mut m).unwrap();
        assert_eq!(w.row_under_port(PortId::LEFT).unwrap(), Some(17));
        assert!(w.read(PortId::LEFT, &mut m).unwrap());
        // And the neighbour row sits one to the right.
        w.align_row(16, PortId::LEFT, &mut m).unwrap();
        assert!(!w.read(PortId::LEFT, &mut m).unwrap());
    }

    #[test]
    fn extreme_rows_reachable_via_feasible_port() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let mut m = meter();
        // Row 0 under the left port, row 31 under the right port.
        w.align_row(0, PortId::LEFT, &mut m).unwrap();
        assert_eq!(w.row_under_port(PortId::LEFT).unwrap(), Some(0));
        w.align_row(31, PortId::RIGHT, &mut m).unwrap();
        assert_eq!(w.row_under_port(PortId::RIGHT).unwrap(), Some(31));
    }

    #[test]
    fn write_then_read_through_port() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let mut m = meter();
        w.write(PortId::RIGHT, true, &mut m).unwrap();
        assert!(w.read(PortId::RIGHT, &mut m).unwrap());
        w.write(PortId::RIGHT, false, &mut m).unwrap();
        assert!(!w.read(PortId::RIGHT, &mut m).unwrap());
        assert_eq!(m.total().cycles, 4);
    }

    #[test]
    fn read_only_port_rejects_write() {
        let mut spec = NanowireSpec::coruscant(32, 7);
        spec.ports[1] = AccessPort::read_only(spec.ports[1].position);
        let mut w = Nanowire::new(spec);
        let mut m = meter();
        let err = w.write(PortId::RIGHT, true, &mut m).unwrap_err();
        assert!(matches!(err, Error::PortCapability { .. }));
    }

    #[test]
    fn unknown_port_rejected() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let mut m = meter();
        assert!(matches!(
            w.read(PortId(5), &mut m),
            Err(Error::UnknownPort(5))
        ));
    }

    #[test]
    fn transverse_read_counts_ones() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let pattern = [true, false, true, true, false, false, true];
        for (i, b) in pattern.iter().enumerate() {
            w.set_segment_bit(i, *b).unwrap();
        }
        let out = w.transverse_read_full().unwrap();
        assert_eq!(out.value, 4);
        assert_eq!(out.span, 7);
        assert!(out.at_least(4));
        assert!(!out.at_least(5));
    }

    #[test]
    fn transverse_read_span_limit_enforced() {
        // A wire whose ports are further apart than its TRD limit.
        let mut spec = NanowireSpec::coruscant(32, 7);
        spec.trd_limit = 4;
        let mut w = Nanowire::new(spec);
        let mut m = meter();
        let err = w
            .transverse_read(PortId::LEFT, PortId::RIGHT, &mut m)
            .unwrap_err();
        assert!(matches!(err, Error::TrdExceeded { span: 7, limit: 4 }));
    }

    #[test]
    fn transverse_write_advances_segment_only() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        for i in 0..7 {
            w.set_segment_bit(i, i % 2 == 0).unwrap(); // 1010101
        }
        // Mark a domain outside the segment to check it is untouched.
        let left_pos = w.spec().ports[0].position;
        w.domains[left_pos - 1] = true;
        let mut m = meter();
        let expelled = w.transverse_write(true, &mut m).unwrap();
        assert!(expelled, "segment bit 6 was 1");
        assert_eq!(
            w.segment_bits(),
            vec![true, true, false, true, false, true, false]
        );
        assert!(w.domains[left_pos - 1], "outside-segment domain disturbed");
        assert_eq!(w.offset(), w.spec().initial_offset as isize);
    }

    #[test]
    fn seven_transverse_writes_rotate_segment_fully() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let pattern = [true, false, true, true, false, false, true];
        for (i, b) in pattern.iter().enumerate() {
            w.set_segment_bit(i, *b).unwrap();
        }
        let mut m = meter();
        // Read right head then TW the value back in at the left head; after
        // 7 rounds the segment must be restored (the max-function walk).
        for _ in 0..7 {
            let out = w.segment_bit(6).unwrap();
            w.transverse_write(out, &mut m).unwrap();
        }
        assert_eq!(w.segment_bits(), pattern.to_vec());
        assert_eq!(m.total().cycles, 7);
    }

    #[test]
    fn tr_fault_injection_perturbs_level() {
        let cfg = FaultConfig::NONE.with_tr_fault_rate(1.0); // always faulty
        let w = Nanowire::new(NanowireSpec::coruscant(32, 7))
            .with_fault_injector(FaultInjector::new(cfg, 9));
        let mut w = w;
        for i in 0..7 {
            w.set_segment_bit(i, i < 3).unwrap(); // 3 ones
        }
        let out = w.transverse_read_full().unwrap();
        assert_ne!(out.value, 3, "a guaranteed fault must move the level");
        assert!(out.value == 2 || out.value == 4);
        assert_eq!(w.injected_fault_count(), 1);
    }

    #[test]
    fn tr_fault_clamped_at_bounds() {
        let cfg = FaultConfig {
            p_over_shift: 0.0,
            p_under_shift: 0.0,
            p_tr_up: 0.0,
            p_tr_down: 1.0,
        };
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7))
            .with_fault_injector(FaultInjector::new(cfg, 1));
        // All zeros: a down-fault must clamp at 0.
        let out = w.transverse_read_full().unwrap();
        assert_eq!(out.value, 0);
    }

    #[test]
    fn cost_accumulates_per_microop() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let mut m = meter();
        w.shift(3, &mut m).unwrap();
        let _ = w.read(PortId::LEFT, &mut m).unwrap();
        w.write(PortId::LEFT, true, &mut m).unwrap();
        let _ = w
            .transverse_read(PortId::LEFT, PortId::RIGHT, &mut m)
            .unwrap();
        assert_eq!(m.total().cycles, 6);
        assert_eq!(m.op_count(), 6);
        assert!(m.total().energy_pj > 0.0);
    }

    #[test]
    fn align_distance_matches_align_row_cost() {
        let mut w = Nanowire::new(NanowireSpec::coruscant(32, 7));
        let d = w.align_distance(2, PortId::LEFT).unwrap();
        let mut m = meter();
        w.align_row(2, PortId::LEFT, &mut m).unwrap();
        assert_eq!(m.total().cycles, d.unsigned_abs() as u64);
    }

    #[test]
    fn tr_to_extremity_respects_trd() {
        let spec = NanowireSpec::coruscant(32, 7);
        let mut w = Nanowire::new(spec);
        let mut m = meter();
        // Left port sits deep inside the wire, so the extremity span
        // greatly exceeds TRD = 7.
        let err = w
            .transverse_read_to_extremity(PortId::LEFT, true, &mut m)
            .unwrap_err();
        assert!(matches!(err, Error::TrdExceeded { .. }));
    }
}
