//! Property-based tests for the device model invariants (DESIGN.md §5).

use coruscant_racetrack::{CostMeter, Nanowire, NanowireSpec, PortId};
use proptest::prelude::*;

fn arb_trd() -> impl Strategy<Value = usize> {
    prop_oneof![Just(3usize), Just(5usize), Just(7usize)]
}

proptest! {
    /// Invariant 1: a transverse read senses exactly the popcount of the
    /// segment, for any stored pattern and any TRD.
    #[test]
    fn tr_equals_popcount(trd in arb_trd(), bits in proptest::collection::vec(any::<bool>(), 7)) {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, trd));
        let seg: Vec<bool> = bits[..trd].to_vec();
        for (i, b) in seg.iter().enumerate() {
            wire.set_segment_bit(i, *b).unwrap();
        }
        let out = wire.transverse_read_full().unwrap();
        let expect = seg.iter().filter(|&&b| b).count() as u8;
        prop_assert_eq!(out.value, expect);
        prop_assert_eq!(out.span as usize, trd);
    }

    /// Invariant 2: shifting right then left by the same amount restores
    /// both alignment and every data row.
    #[test]
    fn shift_roundtrip_preserves_data(
        rows in proptest::collection::vec(any::<bool>(), 32),
        k in 1isize..10,
    ) {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        for (r, b) in rows.iter().enumerate() {
            wire.set_row(r, *b).unwrap();
        }
        let mut m = CostMeter::new();
        let (_, right) = wire.shift_slack();
        let k = k.min(right);
        wire.shift(k, &mut m).unwrap();
        wire.shift(-k, &mut m).unwrap();
        for (r, b) in rows.iter().enumerate() {
            prop_assert_eq!(wire.row(r), Some(*b));
        }
        prop_assert_eq!(m.total().cycles, 2 * k as u64);
    }

    /// Invariant 3: a full round of read-right + transverse-write-left
    /// restores the segment exactly (the segmented shifting that underpins
    /// the max function, paper Fig. 9).
    #[test]
    fn tw_full_rotation_is_identity(trd in arb_trd(), bits in proptest::collection::vec(any::<bool>(), 7)) {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, trd));
        let seg: Vec<bool> = bits[..trd].to_vec();
        for (i, b) in seg.iter().enumerate() {
            wire.set_segment_bit(i, *b).unwrap();
        }
        let mut m = CostMeter::new();
        for _ in 0..trd {
            let out = wire.segment_bit(trd - 1).unwrap();
            wire.transverse_write(out, &mut m).unwrap();
        }
        prop_assert_eq!(wire.segment_bits(), seg);
    }

    /// Transverse write expels exactly the bit under the right port and the
    /// rest of the wire is untouched.
    #[test]
    fn tw_expels_right_port_bit(bits in proptest::collection::vec(any::<bool>(), 7), new_bit: bool) {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        for (i, b) in bits.iter().enumerate() {
            wire.set_segment_bit(i, *b).unwrap();
        }
        let mut m = CostMeter::new();
        let expelled = wire.transverse_write(new_bit, &mut m).unwrap();
        prop_assert_eq!(expelled, bits[6]);
        let mut expect = vec![new_bit];
        expect.extend_from_slice(&bits[..6]);
        prop_assert_eq!(wire.segment_bits(), expect);
    }

    /// Aligning any row under a feasible port really places that row there,
    /// and never disturbs data.
    #[test]
    fn align_any_row(rows in proptest::collection::vec(any::<bool>(), 32), r in 0usize..32) {
        let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
        for (i, b) in rows.iter().enumerate() {
            wire.set_row(i, *b).unwrap();
        }
        let mut m = CostMeter::new();
        // Pick a feasible port for this row: extreme low rows need the left
        // port, extreme high rows the right port.
        let port = if wire.align_distance(r, PortId::LEFT).is_ok()
            && {
                let p = wire.spec().ports[0].position as isize;
                p - (r as isize) >= 0
            } {
            PortId::LEFT
        } else {
            PortId::RIGHT
        };
        wire.align_row(r, port, &mut m).unwrap();
        prop_assert_eq!(wire.row_under_port(port).unwrap(), Some(r));
        let got = wire.read(port, &mut m).unwrap();
        prop_assert_eq!(got, rows[r]);
        for (i, b) in rows.iter().enumerate() {
            prop_assert_eq!(wire.row(i), Some(*b));
        }
    }

    /// Invariant 10: cost accounting is additive and deterministic.
    #[test]
    fn cost_is_deterministic(ops in proptest::collection::vec(0u8..3, 1..20)) {
        let run = |ops: &[u8]| {
            let mut wire = Nanowire::new(NanowireSpec::coruscant(32, 7));
            let mut m = CostMeter::new();
            for op in ops {
                match op {
                    0 => { let _ = wire.read(PortId::LEFT, &mut m); }
                    1 => { let _ = wire.write(PortId::LEFT, true, &mut m); }
                    _ => { let _ = wire.transverse_read(PortId::LEFT, PortId::RIGHT, &mut m); }
                }
            }
            m.total()
        };
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert!((a.energy_pj - b.energy_pj).abs() < 1e-12);
        prop_assert!(a.energy_pj >= 0.0);
        prop_assert_eq!(a.cycles as usize, ops.len());
    }
}
