//! End-to-end acceptance: the standard pipeline run over the bitmap
//! bulk-bitwise chain (the conventional-PIM emission of the paper's §V-D
//! query) must cut estimated device cycles by at least 10% via TR fusion,
//! and the optimized program must be output-equivalent to the original.

use coruscant_compiler::{differential_verify, CompileOptions, Compiler, VerifyOutcome};
use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};

const OPERAND_BASE: usize = 4;
const RESULT_ROW: usize = 20;

/// One bitmap-query chunk as a conventional bulk-bitwise PIM code
/// generator emits it: load `n` operand bitmaps, fold them with a
/// descending pairwise AND accumulator chain, read the result back.
fn bitmap_chain(n: usize) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    let bs = BlockSize::new(64).unwrap();
    let mut steps = Vec::new();
    for k in 0..n {
        steps.push(Step::Load {
            addr: RowAddress::new(loc, OPERAND_BASE + k),
            values: vec![0x5a5a_a5a5_0ff0_f00fu64.rotate_left(5 * k as u32)],
            lane: 64,
        });
    }
    for j in 0..n - 1 {
        let src = OPERAND_BASE + n - 2 - j;
        let dst = if j == n - 2 { RESULT_ROW } else { src };
        steps.push(Step::Exec(
            CpimInstr::new(
                CpimOpcode::And,
                RowAddress::new(loc, src),
                2,
                bs,
                Some(RowAddress::new(loc, dst)),
            )
            .unwrap(),
        ));
    }
    steps.push(Step::Readout {
        label: "result".into(),
        addr: RowAddress::new(loc, RESULT_ROW),
        lane: 64,
    });
    PimProgram { steps }
}

#[test]
fn bitmap_chain_gains_ten_percent_from_fusion() {
    let config = MemoryConfig::tiny();
    let compiler = Compiler::new(config.clone(), &CompileOptions::default().with_verify(true));
    let program = bitmap_chain(5);

    let (optimized, report) = compiler.optimize(&program).unwrap();
    assert!(report.verified, "verification ran");
    assert_eq!(
        optimized.instruction_count(),
        1,
        "4-instruction chain fuses to one 5-operand TR"
    );
    assert!(
        report.cycle_reduction() >= 0.10,
        "acceptance floor: got {:.1}% ({} -> {} est cycles)",
        report.cycle_reduction() * 100.0,
        report.before.est_device_cycles,
        report.after.est_device_cycles
    );
    let fusion = report
        .passes
        .iter()
        .find(|p| p.pass == "tr-fusion")
        .expect("fusion pass in report");
    assert!(
        fusion.cycles_saved() > 0,
        "the gain is attributed to TR fusion"
    );

    // Independent of the pipeline's own verify flag: the optimized
    // program is output-equivalent.
    assert_eq!(
        differential_verify(&program, &optimized, &config).unwrap(),
        VerifyOutcome::Match
    );
}

#[test]
fn chain_lengths_up_to_trd_all_verify_and_gain() {
    let config = MemoryConfig::tiny();
    let compiler = Compiler::new(config.clone(), &CompileOptions::default().with_verify(true));
    for n in 3..=7 {
        let program = bitmap_chain(n);
        let (optimized, report) = compiler.optimize(&program).unwrap();
        assert_eq!(optimized.instruction_count(), 1, "n={n}");
        assert!(report.cycle_reduction() >= 0.10, "n={n}");
        assert_eq!(
            differential_verify(&program, &optimized, &config).unwrap(),
            VerifyOutcome::Match,
            "n={n}"
        );
    }
}
