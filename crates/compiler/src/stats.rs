//! Program-level planning statistics the pass manager snapshots before
//! and after every pass.

use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, MemoryConfig};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;

/// A snapshot of a program's size and estimated cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ProgramStats {
    /// Total steps.
    pub steps: usize,
    /// `cpim` instructions (Exec steps).
    pub instructions: usize,
    /// Load steps.
    pub loads: usize,
    /// Readout steps.
    pub readouts: usize,
    /// Estimated internal PIM latency (device cycles), summed over the
    /// instruction stream via
    /// [`CpimInstr::estimated_device_cycles`](coruscant_core::isa::CpimInstr::estimated_device_cycles).
    pub est_device_cycles: u64,
    /// Estimated net shift distance (domains) the program's row accesses
    /// cost, per the walk model of [`estimated_shifts`].
    pub est_shifts: u64,
}

impl ProgramStats {
    /// Computes the snapshot for a program under a configuration.
    pub fn of(program: &PimProgram, config: &MemoryConfig) -> ProgramStats {
        let mut loads = 0;
        let mut readouts = 0;
        for step in &program.steps {
            match step {
                Step::Load { .. } => loads += 1,
                Step::Readout { .. } => readouts += 1,
                Step::Exec(_) => {}
            }
        }
        ProgramStats {
            steps: program.steps.len(),
            instructions: program.instruction_count(),
            loads,
            readouts,
            est_device_cycles: program.estimated_device_cycles(config.trd),
            est_shifts: estimated_shifts(&program.steps),
        }
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps ({} instr, {} load, {} readout), ~{} device cycles, ~{} shifts",
            self.steps,
            self.instructions,
            self.loads,
            self.readouts,
            self.est_device_cycles,
            self.est_shifts
        )
    }
}

/// The rows a step accesses, in access order (the sequence the DBC must
/// align under a port).
pub(crate) fn accessed_rows(step: &Step) -> Vec<(DbcLocation, usize)> {
    match step {
        Step::Load { addr, .. } | Step::Readout { addr, .. } => {
            vec![(addr.location, addr.row)]
        }
        Step::Exec(i) => {
            let mut rows: Vec<(DbcLocation, usize)> = (0..i.operands as usize)
                .map(|k| (i.src.location, i.src.row + k))
                .collect();
            if let Some(d) = i.dst {
                rows.push((d.location, d.row));
            }
            rows
        }
    }
}

/// Estimates the net shift distance (in domains) of a step sequence:
/// each DBC tracks the row last aligned under its port, and every access
/// pays the distance from there (paper §II-B — shifts dominate DWM access
/// latency when operands are far apart). This is the objective the
/// shift-minimizing scheduling pass reduces.
pub fn estimated_shifts(steps: &[Step]) -> u64 {
    let mut pos: HashMap<DbcLocation, usize> = HashMap::new();
    let mut total = 0u64;
    for step in steps {
        for (loc, row) in accessed_rows(step) {
            let p = pos.entry(loc).or_insert(0);
            total += (*p as i64 - row as i64).unsigned_abs();
            *p = row;
        }
    }
    total
}

/// The incremental shift cost of appending `step` when each DBC's head
/// position is `pos`, without committing the move.
pub(crate) fn shift_cost_from(pos: &HashMap<DbcLocation, usize>, step: &Step) -> u64 {
    let mut local = pos.clone();
    let mut total = 0u64;
    for (loc, row) in accessed_rows(step) {
        let p = local.entry(loc).or_insert(0);
        total += (*p as i64 - row as i64).unsigned_abs();
        *p = row;
    }
    total
}

/// Commits `step`'s accesses into the running per-DBC head positions.
pub(crate) fn advance_positions(pos: &mut HashMap<DbcLocation, usize>, step: &Step) {
    for (loc, row) in accessed_rows(step) {
        pos.insert(loc, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_mem::RowAddress;

    fn load(row: usize) -> Step {
        Step::Load {
            addr: RowAddress::new(DbcLocation::new(0, 0, 0, 0), row),
            values: vec![0],
            lane: 8,
        }
    }

    #[test]
    fn shift_walk_accumulates_distance() {
        // 0 -> 4 (4), 4 -> 20 (16), 20 -> 5 (15).
        let steps = vec![load(4), load(20), load(5)];
        assert_eq!(estimated_shifts(&steps), 4 + 16 + 15);
        // Sorted order is cheaper: 0 -> 4 (4), 4 -> 5 (1), 5 -> 20 (15).
        let sorted = vec![load(4), load(5), load(20)];
        assert_eq!(estimated_shifts(&sorted), 4 + 1 + 15);
    }

    #[test]
    fn distinct_dbcs_walk_independently() {
        let other = DbcLocation::new(1, 0, 0, 0);
        let steps = vec![
            load(4),
            Step::Load {
                addr: RowAddress::new(other, 30),
                values: vec![0],
                lane: 8,
            },
            load(5),
        ];
        // 0->4 on dbc0 (4), 0->30 on dbc1 (30), 4->5 on dbc0 (1).
        assert_eq!(estimated_shifts(&steps), 4 + 30 + 1);
    }

    #[test]
    fn stats_snapshot_counts_step_kinds() {
        let config = MemoryConfig::tiny();
        let program = PimProgram {
            steps: vec![load(4), load(5)],
        };
        let s = ProgramStats::of(&program, &config);
        assert_eq!(s.steps, 2);
        assert_eq!(s.loads, 2);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.est_device_cycles, 0);
    }
}
