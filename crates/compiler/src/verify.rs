//! Differential verification: the optimized program must produce exactly
//! the outputs of the original through the functional `execute()` path.
//!
//! This is the compiler's ground-truth invariant (DESIGN.md §5): for any
//! program whose original form executes cleanly on a fresh machine, the
//! optimized form executes cleanly too and yields an identical ordered
//! `ProgramOutcome.outputs`. Cycle and completion counts are *expected*
//! to differ — that is the optimization.

use crate::CompileError;
use coruscant_core::program::{execute, PimProgram};
use coruscant_mem::MemoryConfig;

/// The outcome of a differential check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Both programs executed and their outputs matched.
    Match,
    /// The original program itself failed to execute on a fresh machine
    /// (e.g. it depends on pre-loaded state), so equivalence cannot be
    /// judged this way.
    OriginalFailed,
}

/// Executes both programs on fresh machines and compares their outputs.
///
/// # Errors
///
/// Returns [`CompileError::Diverged`] when the optimized program errors
/// or produces different outputs while the original executed cleanly.
pub fn differential_verify(
    original: &PimProgram,
    optimized: &PimProgram,
    config: &MemoryConfig,
) -> Result<VerifyOutcome, CompileError> {
    let reference = match execute(original, config) {
        Ok(outcome) => outcome,
        Err(_) => return Ok(VerifyOutcome::OriginalFailed),
    };
    let candidate = execute(optimized, config).map_err(|e| CompileError::Diverged {
        detail: format!("optimized program failed where original succeeded: {e}"),
    })?;
    if candidate.outputs != reference.outputs {
        return Err(CompileError::Diverged {
            detail: format!(
                "outputs differ: original {} readouts {:?}…, optimized {} readouts {:?}…",
                reference.outputs.len(),
                reference.outputs.first().map(|(l, _)| l),
                candidate.outputs.len(),
                candidate.outputs.first().map(|(l, _)| l),
            ),
        });
    }
    Ok(VerifyOutcome::Match)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_core::program::Step;
    use coruscant_mem::{DbcLocation, RowAddress};

    fn loc() -> DbcLocation {
        DbcLocation::new(0, 0, 0, 0)
    }

    fn program(v: u64) -> PimProgram {
        PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc(), 4),
                    values: vec![v; 8],
                    lane: 8,
                },
                Step::Readout {
                    label: "x".into(),
                    addr: RowAddress::new(loc(), 4),
                    lane: 8,
                },
            ],
        }
    }

    #[test]
    fn identical_programs_match() {
        let config = MemoryConfig::tiny();
        assert_eq!(
            differential_verify(&program(7), &program(7), &config).unwrap(),
            VerifyOutcome::Match
        );
    }

    #[test]
    fn divergent_programs_are_reported() {
        let config = MemoryConfig::tiny();
        let err = differential_verify(&program(7), &program(9), &config).unwrap_err();
        assert!(matches!(err, CompileError::Diverged { .. }));
    }

    #[test]
    fn failing_original_is_not_judged() {
        let config = MemoryConfig::tiny();
        let bad = PimProgram {
            steps: vec![Step::Load {
                addr: RowAddress::new(DbcLocation::new(99, 0, 0, 0), 4),
                values: vec![1],
                lane: 8,
            }],
        };
        assert_eq!(
            differential_verify(&bad, &program(1), &config).unwrap(),
            VerifyOutcome::OriginalFailed
        );
    }
}
