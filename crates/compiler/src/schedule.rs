//! Shift-minimizing list scheduling.
//!
//! DWM access latency is dominated by the shifts that align a row under
//! an access port (paper §II-B, Table II): two accesses to nearby rows
//! cost little, two accesses to opposite ends of the DBC cost the full
//! wire length. This pass reorders *independent* steps so consecutive
//! accesses land close together, using the same per-DBC walk model as
//! [`crate::stats::estimated_shifts`].
//!
//! Soundness comes from a dependence analysis over
//! [`crate::effects`]: an edge connects every conflicting step pair
//! (read/write overlap, DBC clobber, readout/readout order), and the
//! greedy scheduler only picks among steps whose predecessors have all
//! been emitted. Ties break toward program order, so an already-optimal
//! program is returned unchanged.

use crate::effects::{conflict, step_effects};
use crate::pass::{Pass, PassContext};
use crate::stats::{advance_positions, shift_cost_from};
use crate::CompileError;
use coruscant_core::program::PimProgram;
use coruscant_mem::DbcLocation;
use std::collections::HashMap;

/// The scheduling pass. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct ShiftSchedulePass;

/// Programs past this size skip scheduling (the dependence analysis is
/// quadratic; real kernels sit far below this).
const MAX_SCHEDULED_STEPS: usize = 4096;

impl Pass for ShiftSchedulePass {
    fn name(&self) -> &'static str {
        "shift-schedule"
    }

    fn run(&self, program: PimProgram, _ctx: &PassContext) -> Result<PimProgram, CompileError> {
        let n = program.steps.len();
        if n <= 2 || n > MAX_SCHEDULED_STEPS {
            return Ok(program);
        }
        let effects: Vec<_> = program.steps.iter().map(step_effects).collect();

        // preds[i] counts unemitted steps that must precede step i;
        // succs[j] lists the steps unblocked when j is emitted.
        let mut pred_count = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..i {
                if conflict(&effects[j], &effects[i]) {
                    pred_count[i] += 1;
                    succs[j].push(i);
                }
            }
        }

        let mut ready: Vec<usize> = (0..n).filter(|&i| pred_count[i] == 0).collect();
        let mut pos: HashMap<DbcLocation, usize> = HashMap::new();
        let mut order = Vec::with_capacity(n);
        while let Some((slot, _)) = ready
            .iter()
            .enumerate()
            .map(|(slot, &i)| (slot, (shift_cost_from(&pos, &program.steps[i]), i)))
            .min_by_key(|&(_, key)| key)
        {
            let i = ready.swap_remove(slot);
            advance_positions(&mut pos, &program.steps[i]);
            order.push(i);
            for &s in &succs[i] {
                pred_count[s] -= 1;
                if pred_count[s] == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "dependence graph must be acyclic");

        let mut slots: Vec<Option<coruscant_core::program::Step>> =
            program.steps.into_iter().map(Some).collect();
        let steps = order
            .into_iter()
            .map(|i| slots[i].take().expect("each step scheduled once"))
            .collect();
        Ok(PimProgram { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::estimated_shifts;
    use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
    use coruscant_core::program::Step;
    use coruscant_mem::{MemoryConfig, RowAddress};

    fn loc() -> DbcLocation {
        DbcLocation::new(0, 0, 0, 0)
    }

    fn ctx() -> PassContext {
        PassContext {
            config: MemoryConfig::tiny(),
        }
    }

    fn load(row: usize, v: u64) -> Step {
        Step::Load {
            addr: RowAddress::new(loc(), row),
            values: vec![v],
            lane: 8,
        }
    }

    #[test]
    fn independent_loads_are_sorted_by_row_distance() {
        // Zig-zag access pattern: 20, 4, 21, 5 costs 20+16+17+16 shifts;
        // the scheduler should settle near 4, 5, 20, 21.
        let program = PimProgram {
            steps: vec![load(20, 0), load(4, 1), load(21, 2), load(5, 3)],
        };
        let before = estimated_shifts(&program.steps);
        let out = ShiftSchedulePass.run(program, &ctx()).unwrap();
        let after = estimated_shifts(&out.steps);
        assert!(
            after < before,
            "schedule reduced shifts: {after} < {before}"
        );
        let rows: Vec<usize> = out
            .steps
            .iter()
            .map(|s| match s {
                Step::Load { addr, .. } => addr.row,
                _ => panic!(),
            })
            .collect();
        assert_eq!(rows, vec![4, 5, 20, 21]);
    }

    #[test]
    fn dependent_steps_keep_their_order() {
        // Load row 20 then AND reading rows 20..21 then readout: the
        // chain cannot reorder despite the zig-zag rows.
        let and = Step::Exec(
            CpimInstr::new(
                CpimOpcode::And,
                RowAddress::new(loc(), 20),
                2,
                BlockSize::new(8).unwrap(),
                Some(RowAddress::new(loc(), 4)),
            )
            .unwrap(),
        );
        let program = PimProgram {
            steps: vec![
                load(20, 1),
                load(21, 2),
                and.clone(),
                Step::Readout {
                    label: "x".into(),
                    addr: RowAddress::new(loc(), 4),
                    lane: 8,
                },
            ],
        };
        let out = ShiftSchedulePass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn readout_order_is_preserved() {
        let program = PimProgram {
            steps: vec![
                load(4, 1),
                load(20, 2),
                Step::Readout {
                    label: "far".into(),
                    addr: RowAddress::new(loc(), 20),
                    lane: 8,
                },
                Step::Readout {
                    label: "near".into(),
                    addr: RowAddress::new(loc(), 4),
                    lane: 8,
                },
            ],
        };
        let out = ShiftSchedulePass.run(program, &ctx()).unwrap();
        let labels: Vec<&str> = out
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Readout { label, .. } => Some(label.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["far", "near"], "output order is observable");
    }

    #[test]
    fn already_optimal_program_is_unchanged() {
        let program = PimProgram {
            steps: vec![load(4, 0), load(5, 1), load(6, 2)],
        };
        let out = ShiftSchedulePass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }
}
