//! Cross-program batching: splice same-unit programs into one batched
//! program, optimize across the boundary, and demux per-job outputs.
//!
//! The runtime's same-bank batch fusion (DESIGN.md §4e) concatenates the
//! step streams of co-located jobs and runs the standard pass pipeline
//! over the whole batch, so fusion and scheduling see across program
//! boundaries. Splicing is semantics-preserving by construction — the
//! batched program *is* the sequential execution of its members on one
//! machine — and demuxing rests on two invariants of the effect model
//! ([`crate::effects`]): readouts are order-pinned (any two conflict, so
//! no pass reorders them) and never deleted (DCE keeps every readout).
//! Per-member readout *counts*, recorded at splice time, therefore
//! survive every pass and slice the batched output vector exactly.
//!
//! [`verify_batch`] is the differential check for this path: the batched
//! program on a fresh machine must produce exactly the concatenated
//! outputs of its members executed sequentially on one fresh machine.

use crate::CompileError;
use coruscant_core::dispatch::PimMachine;
use coruscant_core::program::{execute_on, PimProgram, Step};
use coruscant_mem::MemoryConfig;
use serde::Serialize;

/// One member program's share of a spliced batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BatchSlot {
    /// Caller-chosen member tag (the runtime stores the job id).
    pub tag: u64,
    /// How many readouts the member contributes, in batch order.
    pub readouts: usize,
}

/// A spliced batch: the concatenated program plus the per-member output
/// slots needed to demux its results.
#[derive(Debug, Clone, PartialEq)]
pub struct SplicedBatch {
    /// The members' steps, concatenated in batch order.
    pub program: PimProgram,
    /// Per-member output slots, in batch order.
    pub slots: Vec<BatchSlot>,
}

fn readout_count(program: &PimProgram) -> usize {
    program
        .steps
        .iter()
        .filter(|s| matches!(s, Step::Readout { .. }))
        .count()
}

/// Splices tagged member programs into one batched program.
pub fn splice_programs<'a, I>(parts: I) -> SplicedBatch
where
    I: IntoIterator<Item = (u64, &'a PimProgram)>,
{
    let mut steps = Vec::new();
    let mut slots = Vec::new();
    for (tag, program) in parts {
        slots.push(BatchSlot {
            tag,
            readouts: readout_count(program),
        });
        steps.extend(program.steps.iter().cloned());
    }
    SplicedBatch {
        program: PimProgram { steps },
        slots,
    }
}

/// Slices a batched output vector back into per-member output vectors,
/// in slot order.
///
/// Robust to a *short* output vector (a batch that errored mid-run): the
/// member that was executing gets its partial outputs, later members get
/// empty vectors.
pub fn demux_outputs(
    outputs: &[(String, Vec<u64>)],
    slots: &[BatchSlot],
) -> Vec<Vec<(String, Vec<u64>)>> {
    let mut cursor = 0usize;
    slots
        .iter()
        .map(|slot| {
            let end = (cursor + slot.readouts).min(outputs.len());
            let start = cursor.min(outputs.len());
            cursor += slot.readouts;
            outputs[start..end].to_vec()
        })
        .collect()
}

/// The outcome of a batch differential check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchVerifyOutcome {
    /// The batched program reproduced the sequential outputs exactly.
    Match,
    /// The sequential reference itself failed (a member depends on state
    /// no earlier member provides); equivalence cannot be judged.
    SequentialFailed,
}

/// Differentially verifies a batched program against sequential
/// execution of its members.
///
/// The reference runs every member *in order on one fresh machine* —
/// exactly what the runtime's per-bank FIFO would have done — and the
/// candidate (the optimized batch) runs on another fresh machine. Their
/// ordered, concatenated outputs must be identical.
///
/// # Errors
///
/// Returns [`CompileError::Diverged`] when the batched program errors or
/// its outputs differ while the sequential reference ran cleanly.
pub fn verify_batch(
    originals: &[&PimProgram],
    batched: &PimProgram,
    config: &MemoryConfig,
) -> Result<BatchVerifyOutcome, CompileError> {
    let mut reference_machine = PimMachine::new(config.clone());
    let mut reference: Vec<(String, Vec<u64>)> = Vec::new();
    for original in originals {
        match execute_on(original, &mut reference_machine) {
            Ok(outcome) => reference.extend(outcome.outputs),
            Err(_) => return Ok(BatchVerifyOutcome::SequentialFailed),
        }
    }
    let mut candidate_machine = PimMachine::new(config.clone());
    let candidate =
        execute_on(batched, &mut candidate_machine).map_err(|e| CompileError::Diverged {
            detail: format!("batched program failed where sequential succeeded: {e}"),
        })?;
    if candidate.outputs != reference {
        return Err(CompileError::Diverged {
            detail: format!(
                "batch outputs differ: sequential {} readouts, batched {} readouts",
                reference.len(),
                candidate.outputs.len(),
            ),
        });
    }
    Ok(BatchVerifyOutcome::Match)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, Compiler};
    use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};

    fn loc() -> DbcLocation {
        DbcLocation::new(0, 0, 0, 0)
    }

    fn query(a: u64, b: u64, label: &str) -> PimProgram {
        use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
        PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc(), 4),
                    values: vec![a],
                    lane: 64,
                },
                Step::Load {
                    addr: RowAddress::new(loc(), 5),
                    values: vec![b],
                    lane: 64,
                },
                Step::Exec(
                    CpimInstr::new(
                        CpimOpcode::And,
                        RowAddress::new(loc(), 4),
                        2,
                        BlockSize::new(64).unwrap(),
                        Some(RowAddress::new(loc(), 20)),
                    )
                    .unwrap(),
                ),
                Step::Readout {
                    label: label.into(),
                    addr: RowAddress::new(loc(), 20),
                    lane: 64,
                },
            ],
        }
    }

    #[test]
    fn splice_concatenates_and_counts_readouts() {
        let a = query(1, 3, "a");
        let b = query(5, 7, "b");
        let spliced = splice_programs([(10, &a), (11, &b)]);
        assert_eq!(spliced.program.steps.len(), 8);
        assert_eq!(
            spliced.slots,
            vec![
                BatchSlot {
                    tag: 10,
                    readouts: 1
                },
                BatchSlot {
                    tag: 11,
                    readouts: 1
                }
            ]
        );
    }

    #[test]
    fn demux_slices_outputs_per_slot() {
        let outputs = vec![
            ("a".to_string(), vec![1]),
            ("b".to_string(), vec![2]),
            ("c".to_string(), vec![3]),
        ];
        let slots = vec![
            BatchSlot {
                tag: 0,
                readouts: 2,
            },
            BatchSlot {
                tag: 1,
                readouts: 1,
            },
        ];
        let parts = demux_outputs(&outputs, &slots);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1], vec![("c".to_string(), vec![3])]);
    }

    #[test]
    fn demux_tolerates_short_outputs() {
        let outputs = vec![("a".to_string(), vec![1])];
        let slots = vec![
            BatchSlot {
                tag: 0,
                readouts: 1,
            },
            BatchSlot {
                tag: 1,
                readouts: 1,
            },
        ];
        let parts = demux_outputs(&outputs, &slots);
        assert_eq!(parts[0].len(), 1);
        assert!(parts[1].is_empty());
    }

    #[test]
    fn optimized_batch_matches_sequential() {
        let config = MemoryConfig::tiny();
        let a = query(0xF0F0, 0xFF00, "a");
        let b = query(0x1234, 0x00FF, "b");
        let spliced = splice_programs([(0, &a), (1, &b)]);
        let compiler = Compiler::new(config.clone(), &CompileOptions::default());
        let (optimized, _) = compiler.optimize(&spliced.program).unwrap();
        assert_eq!(
            verify_batch(&[&a, &b], &optimized, &config).unwrap(),
            BatchVerifyOutcome::Match
        );
        // Readout counts recorded at splice time still slice the
        // optimized batch: no pass removes or reorders readouts.
        let outcome = coruscant_core::program::execute(&optimized, &config).unwrap();
        let parts = demux_outputs(&outcome.outputs, &spliced.slots);
        assert_eq!(
            parts[0],
            coruscant_core::program::execute(&a, &config)
                .unwrap()
                .outputs
        );
        assert_eq!(
            parts[1],
            coruscant_core::program::execute(&b, &config)
                .unwrap()
                .outputs
        );
    }

    #[test]
    fn divergent_batch_is_reported() {
        let config = MemoryConfig::tiny();
        let a = query(1, 3, "a");
        let b = query(5, 7, "b");
        let wrong = query(9, 9, "a");
        let err = verify_batch(&[&a, &b], &wrong, &config).unwrap_err();
        assert!(matches!(err, CompileError::Diverged { .. }));
    }
}
