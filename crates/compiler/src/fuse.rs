//! Multi-operand transverse-read fusion (paper §III-B).
//!
//! CORUSCANT resolves up to TRD operands in *one* transverse read, where
//! conventional bulk-bitwise PIM (Ambit-style) chains pairwise
//! activations. On this hardware a valid pairwise chain accumulates
//! *downward* — each step folds its own operand row with the accumulator
//! sitting one row above and writes the result back in place, so the
//! placement residue each step leaves (see [`crate::effects`]) lands
//! only on rows already consumed:
//!
//! ```text
//! and r7, x2 -> r7      ; r7 = v7 & v8
//! and r6, x2 -> r6      ; r6 = v6 & (v7 & v8)
//! and r5, x2 -> r5      ; r5 = v5 & ...
//! and r4, x2 -> r20     ; final fold into the result row
//! ```
//!
//! This pass recognizes such chains of an associative bulk opcode and
//! collapses them into k-operand instructions with `k ≤ min(TRD, 7)` —
//! the same fold, one transverse read per group instead of one per pair.
//!
//! Soundness: the fused instruction reads the *original* operand rows,
//! which the descending chain leaves untouched until each is consumed,
//! so the fold result is identical by associativity and commutativity of
//! AND/OR/XOR and because the multi-operand hardware op pads unused
//! segment slots with the opcode's identity (paper Fig. 7). What differs
//! after the rewrite is the state of the intermediate rows (partial
//! folds vs originals) and of the placement-residue windows, so the pass
//! only fuses when no later step can observe any such row — each is
//! rewritten before any read, or never read again.

use crate::effects::step_effects;
use crate::pass::{Pass, PassContext};
use crate::CompileError;
use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, RowAddress};
use std::collections::HashSet;

/// The fusion pass. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct TrFusionPass;

/// A recognized descending accumulator chain: `len` consecutive
/// 2-operand steps folding operand rows `base ..= base + len` into
/// `dst`, sources descending one row per step down to `base`.
struct Chain {
    len: usize,
    base: usize,
    loc: DbcLocation,
    opcode: CpimOpcode,
    blocksize: BlockSize,
    dst: RowAddress,
}

fn associative(opcode: CpimOpcode) -> bool {
    matches!(opcode, CpimOpcode::And | CpimOpcode::Or | CpimOpcode::Xor)
}

/// Matches the longest descending accumulator chain starting at
/// `steps[at]`: every step but the last accumulates in place
/// (`dst == src`), each next step's source sits one row below, and the
/// final step may fold into any destination.
fn match_chain(steps: &[Step], at: usize) -> Option<Chain> {
    let Step::Exec(first) = &steps[at] else {
        return None;
    };
    if !associative(first.opcode) || first.operands != 2 {
        return None;
    }
    let loc = first.src.location;
    let mut len = 1;
    let mut last = *first;
    while let Some(Step::Exec(next)) = steps.get(at + len) {
        let continues = next.opcode == first.opcode
            && next.operands == 2
            && next.blocksize == first.blocksize
            && next.src.location == loc
            // We can only continue past a step that accumulated in
            // place, leaving the partial fold where the next step's
            // second operand row expects it.
            && last.dst == Some(last.src)
            && next.src.row + 1 == last.src.row;
        if !continues {
            break;
        }
        last = *next;
        len += 1;
    }
    let dst = last.dst?;
    Some(Chain {
        len,
        base: last.src.row,
        loc,
        opcode: first.opcode,
        blocksize: first.blocksize,
        dst,
    })
}

/// Whether every row the fused form can leave different from the chained
/// form is dead after the chain: rewritten before any read, or never
/// read again. The differing rows are the operand span (intermediates
/// hold partial folds in one form, originals in the other) plus both
/// forms' placement-residue windows, minus the final destination (same
/// value either way).
fn replacement_dead_after(
    trailing: &[Step],
    original: &[Step],
    fused: &[Step],
    chain: &Chain,
) -> bool {
    let mut dirty: HashSet<(DbcLocation, usize)> = (chain.base..=chain.base + chain.len)
        .map(|r| (chain.loc, r))
        .collect();
    for step in original.iter().chain(fused) {
        let e = step_effects(step);
        if let Some((l, lo, hi)) = e.smear {
            dirty.extend((lo..=hi).map(|r| (l, r)));
        }
        dirty.extend(e.writes.iter().copied());
    }
    dirty.remove(&(chain.dst.location, chain.dst.row));
    for step in trailing {
        if dirty.is_empty() {
            return true;
        }
        let e = step_effects(step);
        if let Some(loc) = e.clobbers {
            if dirty.iter().any(|(l, _)| *l == loc) {
                return false;
            }
        }
        if e.reads.iter().any(|r| dirty.contains(r)) {
            return false;
        }
        for w in &e.writes {
            dirty.remove(w);
        }
    }
    true
}

/// Emits the fused instruction group for a chain: greedy groups of up to
/// `cap` operands folding top-down, each group collapsing the topmost
/// operands into its own source row (exactly where the descending
/// chain's accumulator would stand, so the remaining fold reads the
/// right value), the final group into the chain's destination.
fn emit_fused(chain: &Chain, cap: usize, out: &mut Vec<Step>) -> Result<(), CompileError> {
    let mut n = chain.len + 1; // operand rows base ..= base + n - 1
    while n > cap {
        let src = chain.base + n - cap;
        out.push(Step::Exec(CpimInstr::new(
            chain.opcode,
            RowAddress::new(chain.loc, src),
            cap as u8,
            chain.blocksize,
            Some(RowAddress::new(chain.loc, src)),
        )?));
        n -= cap - 1;
    }
    out.push(Step::Exec(CpimInstr::new(
        chain.opcode,
        RowAddress::new(chain.loc, chain.base),
        n as u8,
        chain.blocksize,
        Some(chain.dst),
    )?));
    Ok(())
}

impl Pass for TrFusionPass {
    fn name(&self) -> &'static str {
        "tr-fusion"
    }

    fn run(&self, program: PimProgram, ctx: &PassContext) -> Result<PimProgram, CompileError> {
        // The ISA operand field holds 7; the device resolves TRD rows.
        let cap = ctx.config.trd.min(7);
        if cap < 3 {
            // Groups of two are what the chain already does.
            return Ok(program);
        }
        let steps = program.steps;
        let mut out = Vec::with_capacity(steps.len());
        let mut i = 0;
        while i < steps.len() {
            let fused = match_chain(&steps, i).and_then(|chain| {
                if chain.len < 2 {
                    return None;
                }
                let mut replacement = Vec::new();
                emit_fused(&chain, cap, &mut replacement).ok()?;
                replacement_dead_after(
                    &steps[i + chain.len..],
                    &steps[i..i + chain.len],
                    &replacement,
                    &chain,
                )
                .then_some((chain.len, replacement))
            });
            match fused {
                Some((len, replacement)) => {
                    out.extend(replacement);
                    i += len;
                }
                None => {
                    out.push(steps[i].clone());
                    i += 1;
                }
            }
        }
        Ok(PimProgram { steps: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_mem::MemoryConfig;

    fn loc() -> DbcLocation {
        DbcLocation::new(0, 0, 0, 0)
    }

    fn bs() -> BlockSize {
        BlockSize::new(8).unwrap()
    }

    /// A descending pairwise accumulator chain folding `n` operand rows
    /// `base ..= base + n - 1` into `dst`.
    fn chain_steps(op: CpimOpcode, base: usize, n: usize, dst: usize) -> Vec<Step> {
        (0..n - 1)
            .map(|j| {
                let src = base + n - 2 - j;
                let d = if j == n - 2 { dst } else { src };
                Step::Exec(
                    CpimInstr::new(
                        op,
                        RowAddress::new(loc(), src),
                        2,
                        bs(),
                        Some(RowAddress::new(loc(), d)),
                    )
                    .unwrap(),
                )
            })
            .collect()
    }

    fn ctx() -> PassContext {
        PassContext {
            config: MemoryConfig::tiny(),
        }
    }

    #[test]
    fn five_operand_chain_fuses_to_one_instruction() {
        let program = PimProgram {
            steps: chain_steps(CpimOpcode::And, 4, 5, 20),
        };
        let fused = TrFusionPass.run(program, &ctx()).unwrap();
        assert_eq!(fused.instruction_count(), 1);
        let Step::Exec(i) = &fused.steps[0] else {
            panic!("expected exec");
        };
        assert_eq!(i.operands, 5);
        assert_eq!(i.src.row, 4);
        assert_eq!(i.dst.unwrap().row, 20);
    }

    #[test]
    fn long_chain_splits_into_trd_groups() {
        // 10 operands at TRD 7: one 7-op group folding rows 5..=11 into
        // row 5 (where the chain's accumulator would stand), then a 4-op
        // group over rows 2..=5 into the destination.
        let program = PimProgram {
            steps: chain_steps(CpimOpcode::Xor, 2, 10, 25),
        };
        let fused = TrFusionPass.run(program, &ctx()).unwrap();
        assert_eq!(fused.instruction_count(), 2);
        let ops: Vec<(usize, u8, usize)> = fused
            .steps
            .iter()
            .map(|s| match s {
                Step::Exec(i) => (i.src.row, i.operands, i.dst.unwrap().row),
                _ => panic!("expected exec"),
            })
            .collect();
        assert_eq!(ops, vec![(5, 7, 5), (2, 4, 25)]);
    }

    #[test]
    fn live_intermediate_blocks_fusion() {
        let mut steps = chain_steps(CpimOpcode::And, 4, 4, 20);
        // A later readout observes a chain intermediate (row 5): fusing
        // would leave the original operand there instead of the partial.
        steps.push(Step::Readout {
            label: "leak".into(),
            addr: RowAddress::new(loc(), 5),
            lane: 8,
        });
        let n = steps.len();
        let program = PimProgram { steps };
        let fused = TrFusionPass.run(program, &ctx()).unwrap();
        assert_eq!(fused.steps.len(), n, "chain must not fuse");
    }

    #[test]
    fn residue_read_blocks_fusion() {
        let mut steps = chain_steps(CpimOpcode::And, 4, 4, 20);
        // Row 12 is outside the operand span but inside the chain's
        // placement-residue window: reading it pins the original steps.
        steps.push(Step::Readout {
            label: "residue".into(),
            addr: RowAddress::new(loc(), 12),
            lane: 8,
        });
        let n = steps.len();
        let program = PimProgram { steps };
        let fused = TrFusionPass.run(program, &ctx()).unwrap();
        assert_eq!(fused.steps.len(), n, "chain must not fuse");
    }

    #[test]
    fn rewritten_intermediate_allows_fusion() {
        let mut steps = chain_steps(CpimOpcode::Or, 4, 4, 20);
        // The intermediate is overwritten before the readout: dead.
        steps.push(Step::Load {
            addr: RowAddress::new(loc(), 5),
            values: vec![0],
            lane: 8,
        });
        steps.push(Step::Readout {
            label: "ok".into(),
            addr: RowAddress::new(loc(), 5),
            lane: 8,
        });
        let program = PimProgram { steps };
        let fused = TrFusionPass.run(program, &ctx()).unwrap();
        assert_eq!(fused.instruction_count(), 1);
    }

    #[test]
    fn non_associative_ops_do_not_fuse() {
        let program = PimProgram {
            steps: chain_steps(CpimOpcode::Nand, 4, 4, 20),
        };
        let fused = TrFusionPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(fused, program);
    }

    #[test]
    fn ascending_chain_is_left_alone() {
        // The ascending accumulator pattern (dst one past src) is not a
        // valid chain on this hardware — placement residue corrupts the
        // not-yet-consumed operands — so it must not be rewritten.
        let steps: Vec<Step> = (0..3)
            .map(|j| {
                let d = if j == 2 { 20 } else { 4 + j + 1 };
                Step::Exec(
                    CpimInstr::new(
                        CpimOpcode::And,
                        RowAddress::new(loc(), 4 + j),
                        2,
                        bs(),
                        Some(RowAddress::new(loc(), d)),
                    )
                    .unwrap(),
                )
            })
            .collect();
        let program = PimProgram { steps };
        let fused = TrFusionPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(fused, program);
    }

    #[test]
    fn low_trd_caps_group_size() {
        let config = MemoryConfig::tiny().with_trd(3);
        let ctx = PassContext { config };
        let program = PimProgram {
            steps: chain_steps(CpimOpcode::And, 4, 5, 20),
        };
        let fused = TrFusionPass.run(program, &ctx).unwrap();
        // 5 operands at cap 3: rows 6..=8 fold into row 6, then rows
        // 4..=6 into the destination.
        assert_eq!(fused.instruction_count(), 2);
        for s in &fused.steps {
            let Step::Exec(i) = s else { panic!() };
            assert!(i.operands <= 3);
        }
    }
}
