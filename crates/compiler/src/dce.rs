//! Dead-step and redundant-move elimination.
//!
//! A backward liveness scan over row-level effects removes:
//!
//! * **dead loads** — a `Load` whose row is overwritten before any read;
//! * **dead bulk results** — a bulk-bitwise `Exec` whose destination row
//!   is never read before being rewritten (the op itself only touches the
//!   inter-port segment, so an unread result is unobservable);
//! * **dead copies** — a `copy` whose destination is dead, or whose
//!   source and destination are the same row (a no-op move).
//!
//! Scratch-using arithmetic (`add`, `mult`, …) is never removed and makes
//! every row of its DBC live (it may read anything), and a bulk `Exec`
//! without a destination is kept: it has no value effect, but its bank
//! occupancy and error behaviour are part of the program's contract.
//!
//! Placement residue (see [`crate::effects`]) is treated asymmetrically:
//! a bulk `Exec` whose smear window covers a live row is *kept* even if
//! its destination is dead (deleting it would change what that row
//! holds), but a smear never counts as a definition — it cannot kill a
//! row's liveness, and it never makes an earlier writer dead.

use crate::effects::{instr_effects, is_pure_bulk};
use crate::pass::{Pass, PassContext};
use crate::CompileError;
use coruscant_core::isa::CpimOpcode;
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::DbcLocation;
use std::collections::HashSet;

/// The elimination pass. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct DeadStepPass;

impl Pass for DeadStepPass {
    fn name(&self) -> &'static str {
        "dead-step"
    }

    fn run(&self, program: PimProgram, _ctx: &PassContext) -> Result<PimProgram, CompileError> {
        let mut live: HashSet<(DbcLocation, usize)> = HashSet::new();
        // DBCs where a scratch-using op may read any row: liveness there
        // is unknowable, so nothing upstream of them is removed.
        let mut wild: HashSet<DbcLocation> = HashSet::new();
        let mut keep = vec![true; program.steps.len()];

        for (idx, step) in program.steps.iter().enumerate().rev() {
            match step {
                Step::Readout { addr, .. } => {
                    live.insert((addr.location, addr.row));
                }
                Step::Load { addr, .. } => {
                    let key = (addr.location, addr.row);
                    if wild.contains(&addr.location) {
                        // Unknown consumer downstream; keep, kill nothing.
                    } else if live.remove(&key) {
                        // Defines a live row; earlier writers are dead.
                    } else {
                        keep[idx] = false;
                    }
                }
                Step::Exec(i) if is_pure_bulk(i.opcode) || i.opcode == CpimOpcode::Copy => {
                    let reads: Vec<(DbcLocation, usize)> = if i.opcode == CpimOpcode::Copy {
                        vec![(i.src.location, i.src.row)]
                    } else {
                        (0..i.operands as usize)
                            .map(|k| (i.src.location, i.src.row + k))
                            .collect()
                    };
                    match i.dst {
                        Some(d) if i.opcode == CpimOpcode::Copy && d == i.src => {
                            // Same-row move: value no-op.
                            keep[idx] = false;
                        }
                        Some(d) => {
                            let key = (d.location, d.row);
                            // Residue landing on a live row is observable,
                            // so the op must stay even with a dead result.
                            let smear_live = instr_effects(i).smear.is_some_and(|(l, lo, hi)| {
                                live.iter().any(|(ll, r)| *ll == l && (lo..=hi).contains(r))
                            });
                            let defines_live = live.remove(&key);
                            if wild.contains(&d.location) || defines_live || smear_live {
                                live.extend(reads);
                            } else {
                                // Result nobody reads: drop the op.
                                keep[idx] = false;
                            }
                        }
                        None => {
                            // No value effect, but occupancy and error
                            // behaviour are observable: keep, and its
                            // operand reads keep their producers alive.
                            live.extend(reads);
                        }
                    }
                }
                Step::Exec(i) => {
                    // Scratch-using arithmetic: may read the whole DBC.
                    wild.insert(i.src.location);
                    if let Some(d) = i.dst {
                        wild.insert(d.location);
                    }
                }
            }
        }

        let steps = program
            .steps
            .into_iter()
            .zip(keep)
            .filter_map(|(s, k)| k.then_some(s))
            .collect();
        Ok(PimProgram { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_core::isa::{BlockSize, CpimInstr};
    use coruscant_mem::{MemoryConfig, RowAddress};

    fn loc() -> DbcLocation {
        DbcLocation::new(0, 0, 0, 0)
    }

    fn ctx() -> PassContext {
        PassContext {
            config: MemoryConfig::tiny(),
        }
    }

    fn load(row: usize, v: u64) -> Step {
        Step::Load {
            addr: RowAddress::new(loc(), row),
            values: vec![v],
            lane: 8,
        }
    }

    fn readout(row: usize) -> Step {
        Step::Readout {
            label: format!("r{row}"),
            addr: RowAddress::new(loc(), row),
            lane: 8,
        }
    }

    fn and(src: usize, k: u8, dst: usize) -> Step {
        Step::Exec(
            CpimInstr::new(
                CpimOpcode::And,
                RowAddress::new(loc(), src),
                k,
                BlockSize::new(8).unwrap(),
                Some(RowAddress::new(loc(), dst)),
            )
            .unwrap(),
        )
    }

    fn copy(src: usize, dst: usize) -> Step {
        Step::Exec(
            CpimInstr::new(
                CpimOpcode::Copy,
                RowAddress::new(loc(), src),
                1,
                BlockSize::new(8).unwrap(),
                Some(RowAddress::new(loc(), dst)),
            )
            .unwrap(),
        )
    }

    #[test]
    fn overwritten_load_is_removed() {
        let program = PimProgram {
            steps: vec![load(4, 1), load(4, 2), readout(4)],
        };
        let out = DeadStepPass.run(program, &ctx()).unwrap();
        assert_eq!(out.steps.len(), 2);
        let Step::Load { values, .. } = &out.steps[0] else {
            panic!("expected load");
        };
        assert_eq!(values, &vec![2], "the surviving load is the second");
    }

    #[test]
    fn unread_bulk_result_is_removed_with_its_operands() {
        // Readout row 25 is outside the AND's residue window (0..=12).
        let program = PimProgram {
            steps: vec![load(4, 1), load(5, 2), and(4, 2, 20), readout(25)],
        };
        let out = DeadStepPass.run(program, &ctx()).unwrap();
        // Result row 20 is never read; the AND dies, then its operand
        // loads die in the same backward scan.
        assert_eq!(out.steps.len(), 1);
        assert!(matches!(&out.steps[0], Step::Readout { .. }));
    }

    #[test]
    fn smear_over_live_row_keeps_dead_result_op() {
        // Row 9 sits inside the AND's residue window (0..=12): deleting
        // the op would change what the readout observes, dead dst or not.
        let program = PimProgram {
            steps: vec![load(4, 1), load(5, 2), and(4, 2, 20), readout(9)],
        };
        let out = DeadStepPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn live_chain_is_kept() {
        let program = PimProgram {
            steps: vec![load(4, 1), load(5, 2), and(4, 2, 20), readout(20)],
        };
        let out = DeadStepPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn same_row_copy_is_removed() {
        let program = PimProgram {
            steps: vec![load(4, 1), copy(4, 4), readout(4)],
        };
        let out = DeadStepPass.run(program, &ctx()).unwrap();
        assert_eq!(out.steps.len(), 2);
    }

    #[test]
    fn dead_copy_is_removed() {
        let program = PimProgram {
            steps: vec![load(4, 1), copy(4, 9), readout(4)],
        };
        let out = DeadStepPass.run(program, &ctx()).unwrap();
        assert_eq!(out.steps.len(), 2);
    }

    #[test]
    fn arithmetic_keeps_everything_on_its_dbc() {
        let mult = Step::Exec(
            CpimInstr::new(
                CpimOpcode::Mult,
                RowAddress::new(loc(), 12),
                2,
                BlockSize::new(16).unwrap(),
                Some(RowAddress::new(loc(), 14)),
            )
            .unwrap(),
        );
        // The load looks dead (no readout of row 4) but the multiplier
        // may read any row of the DBC.
        let program = PimProgram {
            steps: vec![load(4, 1), mult, readout(14)],
        };
        let out = DeadStepPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn dst_less_bulk_exec_is_kept() {
        let nodst = Step::Exec(
            CpimInstr::new(
                CpimOpcode::Or,
                RowAddress::new(loc(), 4),
                2,
                BlockSize::new(8).unwrap(),
                None,
            )
            .unwrap(),
        );
        let program = PimProgram {
            steps: vec![load(4, 1), load(5, 2), nodst],
        };
        let out = DeadStepPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program, "occupancy/error behaviour preserved");
    }
}
