//! Read/write effect summaries for program steps — the dependence model
//! every pass builds on.
//!
//! The compiler only reorders, fuses or deletes steps when the effect
//! summaries prove it sound. Effects are deliberately conservative: bulk
//! bitwise operations and `copy` have exact operand reads plus the
//! destination write-back, while every other opcode *clobbers* its whole
//! DBC because the arithmetic algorithms use scratch rows (the
//! multiplier's reduction window and partial-product pool, the reducer's
//! in-place rows). A clobbering step conflicts with anything on the same
//! DBC, so it is never moved past same-DBC work and never deleted.
//!
//! # Placement residue
//!
//! Bulk operations additionally carry a *smear* window: the inter-port
//! segment the operands are staged into physically aliases the data rows
//! currently shifted under it, so executing a bulk op leaves placement
//! residue (operand copies and padding constants) in a bounded window of
//! rows near its operands. The window is a static over-approximation of
//! where that residue can land (see [`instr_effects`]); passes treat it
//! as an unpredictable write, never as a value definition. Programs that
//! *read* residue rows they never rewrote observe machine state below
//! this model's resolution — the compiler's contract (DESIGN.md §5)
//! excludes them, and [`crate::differential_verify`] is the safety net.

use coruscant_core::isa::{CpimInstr, CpimOpcode};
use coruscant_core::program::Step;
use coruscant_mem::DbcLocation;

/// One step's effect summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepEffects {
    /// Data rows the step reads, in access order.
    pub reads: Vec<(DbcLocation, usize)>,
    /// Data rows the step writes.
    pub writes: Vec<(DbcLocation, usize)>,
    /// A DBC the step may read or write anywhere (scratch-using
    /// arithmetic); forces conflicts with every same-DBC step.
    pub clobbers: Option<DbcLocation>,
    /// Rows `lo..=hi` of a DBC the step may overwrite with placement
    /// residue (operand staging under the inter-port segment). Treated
    /// as a write for conflicts, but never as a definition for liveness.
    pub smear: Option<(DbcLocation, usize, usize)>,
    /// Whether the step is a readout. Readouts produce the program's
    /// observable output *in order*, so their relative order is pinned.
    pub is_readout: bool,
}

/// Whether an opcode's effects are exactly its operand reads plus the
/// optional destination write-back (no hidden scratch rows).
pub fn is_pure_bulk(opcode: CpimOpcode) -> bool {
    matches!(
        opcode,
        CpimOpcode::And
            | CpimOpcode::Nand
            | CpimOpcode::Or
            | CpimOpcode::Nor
            | CpimOpcode::Xor
            | CpimOpcode::Xnor
            | CpimOpcode::Not
    )
}

/// The effect summary of one instruction.
///
/// The bulk smear window is derived from the DBC geometry: staging aligns
/// the last operand row `src + k - 1` under either access port, putting
/// the TRD-wide (≤ 7) segment window over rows within 6 of it, and slack
/// and placement shifts move the window by at most `k - 1` more. The
/// union over all cases is `src - 6 ..= src + 2k + 4`, clamped at row 0.
pub fn instr_effects(instr: &CpimInstr) -> StepEffects {
    let loc = instr.src.location;
    let dst: Vec<(DbcLocation, usize)> =
        instr.dst.map(|d| (d.location, d.row)).into_iter().collect();
    if is_pure_bulk(instr.opcode) {
        let k = instr.operands as usize;
        StepEffects {
            reads: (0..k).map(|i| (loc, instr.src.row + i)).collect(),
            writes: dst,
            clobbers: None,
            smear: Some((
                loc,
                instr.src.row.saturating_sub(6),
                instr.src.row + 2 * k + 4,
            )),
            is_readout: false,
        }
    } else if instr.opcode == CpimOpcode::Copy {
        StepEffects {
            reads: vec![(loc, instr.src.row)],
            writes: dst,
            clobbers: None,
            smear: None,
            is_readout: false,
        }
    } else {
        // Scratch-using arithmetic: exact rows unknown at this level.
        StepEffects {
            reads: Vec::new(),
            writes: dst,
            clobbers: Some(loc),
            smear: None,
            is_readout: false,
        }
    }
}

/// The effect summary of one step.
pub fn step_effects(step: &Step) -> StepEffects {
    match step {
        Step::Load { addr, .. } => StepEffects {
            reads: Vec::new(),
            writes: vec![(addr.location, addr.row)],
            clobbers: None,
            smear: None,
            is_readout: false,
        },
        Step::Readout { addr, .. } => StepEffects {
            reads: vec![(addr.location, addr.row)],
            writes: Vec::new(),
            clobbers: None,
            smear: None,
            is_readout: true,
        },
        Step::Exec(i) => instr_effects(i),
    }
}

impl StepEffects {
    /// Whether the step touches any row of `loc` (reads, writes, smears,
    /// or clobbers it).
    pub fn touches(&self, loc: DbcLocation) -> bool {
        self.clobbers == Some(loc)
            || self.smear.is_some_and(|(l, _, _)| l == loc)
            || self.reads.iter().any(|(l, _)| *l == loc)
            || self.writes.iter().any(|(l, _)| *l == loc)
    }

    /// Whether the step's smear window covers `(loc, row)`.
    pub fn smears(&self, loc: DbcLocation, row: usize) -> bool {
        self.smear
            .is_some_and(|(l, lo, hi)| l == loc && (lo..=hi).contains(&row))
    }
}

/// Whether two steps must keep their relative order: any read/write,
/// write/read or write/write overlap (smear counting as a write), any
/// clobber touching the other step's DBC, or two readouts (output order
/// is observable).
pub fn conflict(a: &StepEffects, b: &StepEffects) -> bool {
    if a.is_readout && b.is_readout {
        return true;
    }
    if let Some(loc) = a.clobbers {
        if b.touches(loc) {
            return true;
        }
    }
    if let Some(loc) = b.clobbers {
        if a.touches(loc) {
            return true;
        }
    }
    let smear_hits = |x: &StepEffects, y: &StepEffects| {
        let Some((loc, lo, hi)) = x.smear else {
            return false;
        };
        y.reads
            .iter()
            .chain(y.writes.iter())
            .any(|(l, r)| *l == loc && (lo..=hi).contains(r))
            || y.smear
                .is_some_and(|(l2, lo2, hi2)| l2 == loc && lo2 <= hi && lo <= hi2)
    };
    if smear_hits(a, b) || smear_hits(b, a) {
        return true;
    }
    let overlaps =
        |x: &[(DbcLocation, usize)], y: &[(DbcLocation, usize)]| x.iter().any(|r| y.contains(r));
    overlaps(&a.writes, &b.reads) || overlaps(&a.writes, &b.writes) || overlaps(&a.reads, &b.writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_core::isa::BlockSize;
    use coruscant_mem::RowAddress;

    fn loc() -> DbcLocation {
        DbcLocation::new(0, 0, 0, 0)
    }

    fn and(src: usize, k: u8, dst: usize) -> CpimInstr {
        CpimInstr::new(
            CpimOpcode::And,
            RowAddress::new(loc(), src),
            k,
            BlockSize::new(8).unwrap(),
            Some(RowAddress::new(loc(), dst)),
        )
        .unwrap()
    }

    #[test]
    fn bulk_effects_are_exact() {
        let e = instr_effects(&and(4, 3, 20));
        assert_eq!(e.reads, vec![(loc(), 4), (loc(), 5), (loc(), 6)]);
        assert_eq!(e.writes, vec![(loc(), 20)]);
        assert_eq!(e.clobbers, None);
        assert_eq!(
            e.smear,
            Some((loc(), 0, 14)),
            "residue window src-6..src+2k+4"
        );
    }

    #[test]
    fn smear_orders_bulk_against_nearby_rows() {
        let e = instr_effects(&and(10, 2, 20));
        // Residue window 4..=18: a load of row 15 must not cross the op,
        // a load of row 25 may.
        let near = step_effects(&Step::Load {
            addr: RowAddress::new(loc(), 15),
            values: vec![0],
            lane: 8,
        });
        let far = step_effects(&Step::Load {
            addr: RowAddress::new(loc(), 25),
            values: vec![0],
            lane: 8,
        });
        assert!(e.smears(loc(), 15));
        assert!(conflict(&e, &near));
        assert!(!conflict(&e, &far));
    }

    #[test]
    fn arithmetic_clobbers_its_dbc() {
        let i = CpimInstr::new(
            CpimOpcode::Mult,
            RowAddress::new(loc(), 10),
            2,
            BlockSize::new(16).unwrap(),
            Some(RowAddress::new(loc(), 20)),
        )
        .unwrap();
        let e = instr_effects(&i);
        assert_eq!(e.clobbers, Some(loc()));
        // Clobber conflicts even with a disjoint-row load on the same DBC.
        let load = step_effects(&Step::Load {
            addr: RowAddress::new(loc(), 30),
            values: vec![0],
            lane: 8,
        });
        assert!(conflict(&e, &load));
    }

    #[test]
    fn disjoint_loads_do_not_conflict() {
        let a = step_effects(&Step::Load {
            addr: RowAddress::new(loc(), 4),
            values: vec![0],
            lane: 8,
        });
        let b = step_effects(&Step::Load {
            addr: RowAddress::new(loc(), 5),
            values: vec![0],
            lane: 8,
        });
        assert!(!conflict(&a, &b));
        assert!(conflict(&a, &a.clone()), "same-row loads order (WAW)");
    }

    #[test]
    fn readouts_are_order_pinned() {
        let r1 = step_effects(&Step::Readout {
            label: "a".into(),
            addr: RowAddress::new(loc(), 4),
            lane: 8,
        });
        let r2 = step_effects(&Step::Readout {
            label: "b".into(),
            addr: RowAddress::new(loc(), 9),
            lane: 8,
        });
        assert!(conflict(&r1, &r2));
    }
}
