//! The [`Pass`] trait and the [`PassManager`] that snapshots per-pass
//! before/after statistics.

use crate::stats::ProgramStats;
use crate::CompileError;
use coruscant_core::program::PimProgram;
use coruscant_mem::MemoryConfig;
use serde::Serialize;

/// Shared state passes read (geometry, TRD).
#[derive(Debug, Clone)]
pub struct PassContext {
    /// The memory configuration the program will run on.
    pub config: MemoryConfig,
}

/// One rewrite over a program. Passes must preserve the program's
/// observable outputs (the ordered `ProgramOutcome.outputs` of the
/// functional `execute()` path) for *any* initial memory state — the
/// differential verifier enforces exactly this invariant.
pub trait Pass: Send + Sync {
    /// Short stable name, used in reports.
    fn name(&self) -> &'static str;

    /// Rewrites the program.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if a rewrite cannot be expressed (e.g.
    /// an instruction fails validation); passes must fail rather than
    /// emit an unsound program.
    fn run(&self, program: PimProgram, ctx: &PassContext) -> Result<PimProgram, CompileError>;
}

/// One pass's contribution to a pipeline run.
#[derive(Debug, Clone, Serialize)]
pub struct PassReport {
    /// The pass name.
    pub pass: String,
    /// Program statistics entering the pass.
    pub before: ProgramStats,
    /// Program statistics leaving the pass.
    pub after: ProgramStats,
}

impl PassReport {
    /// Estimated device cycles the pass removed.
    pub fn cycles_saved(&self) -> u64 {
        self.before
            .est_device_cycles
            .saturating_sub(self.after.est_device_cycles)
    }

    /// Estimated shift domains the pass removed.
    pub fn shifts_saved(&self) -> u64 {
        self.before.est_shifts.saturating_sub(self.after.est_shifts)
    }
}

/// The report of one full pipeline run over one program.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Per-pass before/after snapshots, in execution order.
    pub passes: Vec<PassReport>,
    /// Statistics of the input program.
    pub before: ProgramStats,
    /// Statistics of the optimized program.
    pub after: ProgramStats,
    /// Whether the differential verifier compared the optimized program
    /// against the original on this run.
    pub verified: bool,
}

impl PipelineReport {
    /// A report for a program the pipeline left untouched.
    pub fn identity(stats: ProgramStats) -> PipelineReport {
        PipelineReport {
            passes: Vec::new(),
            before: stats,
            after: stats,
            verified: false,
        }
    }

    /// Total estimated device cycles removed.
    pub fn cycles_saved(&self) -> u64 {
        self.before
            .est_device_cycles
            .saturating_sub(self.after.est_device_cycles)
    }

    /// Total instructions removed.
    pub fn instructions_saved(&self) -> u64 {
        (self
            .before
            .instructions
            .saturating_sub(self.after.instructions)) as u64
    }

    /// Fraction of estimated device cycles removed (0 for an empty
    /// program).
    pub fn cycle_reduction(&self) -> f64 {
        if self.before.est_device_cycles == 0 {
            0.0
        } else {
            self.cycles_saved() as f64 / self.before.est_device_cycles as f64
        }
    }

    /// Renders a fixed-width per-pass table (used by the inspection
    /// example and the compiler bench).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>6} {:>7} {:>12} {:>10}\n",
            "pass", "steps", "instrs", "est_cycles", "est_shifts"
        ));
        out.push_str(&format!(
            "{:<18} {:>6} {:>7} {:>12} {:>10}\n",
            "(input)",
            self.before.steps,
            self.before.instructions,
            self.before.est_device_cycles,
            self.before.est_shifts
        ));
        for p in &self.passes {
            out.push_str(&format!(
                "{:<18} {:>6} {:>7} {:>12} {:>10}\n",
                p.pass,
                p.after.steps,
                p.after.instructions,
                p.after.est_device_cycles,
                p.after.est_shifts
            ));
        }
        out.push_str(&format!(
            "total: -{} instrs, -{} est cycles ({:.1}%), -{} est shifts{}\n",
            self.instructions_saved(),
            self.cycles_saved(),
            self.cycle_reduction() * 100.0,
            self.before.est_shifts.saturating_sub(self.after.est_shifts),
            if self.verified { ", verified" } else { "" }
        ));
        out
    }
}

/// Runs an ordered list of passes, snapshotting statistics around each.
pub struct PassManager {
    ctx: PassContext,
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty manager for a configuration.
    pub fn new(config: MemoryConfig) -> PassManager {
        PassManager {
            ctx: PassContext { config },
            passes: Vec::new(),
        }
    }

    /// Appends a pass.
    #[must_use]
    pub fn with_pass(mut self, pass: Box<dyn Pass>) -> PassManager {
        self.passes.push(pass);
        self
    }

    /// The pass names, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure.
    pub fn run(&self, program: &PimProgram) -> Result<(PimProgram, PipelineReport), CompileError> {
        let before = ProgramStats::of(program, &self.ctx.config);
        let mut current = program.clone();
        let mut reports = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let entering = ProgramStats::of(&current, &self.ctx.config);
            current = pass.run(current, &self.ctx)?;
            reports.push(PassReport {
                pass: pass.name().to_string(),
                before: entering,
                after: ProgramStats::of(&current, &self.ctx.config),
            });
        }
        let after = ProgramStats::of(&current, &self.ctx.config);
        Ok((
            current,
            PipelineReport {
                passes: reports,
                before,
                after,
                verified: false,
            },
        ))
    }
}
