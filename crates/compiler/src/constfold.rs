//! Identity-constant folding into the hardware's padding choices.
//!
//! A multi-operand bulk op pads unused segment slots with its opcode's
//! identity value (paper Fig. 7): all-ones for AND, all-zeros for
//! OR/XOR. An operand *row* that provably holds that identity therefore
//! contributes nothing to the fold — the hardware would have supplied
//! the same value as padding — so the instruction can drop it and let
//! the padding take over. This pass tracks rows whose latest definition
//! is a `Load` of the identity row and shrinks bulk ops whose boundary
//! operands (top or bottom of the consecutive operand span) are such
//! rows; the now-unused `Load` becomes dead and the dead-step pass
//! removes it.
//!
//! Soundness mirrors [`crate::fuse`]: the shrunk op reads a subset of
//! the original rows and computes the same fold (identity elements are
//! neutral), so the only machine state that can differ afterwards is
//! the placement-residue window (the shrunk op stages fewer rows, see
//! [`crate::effects`]). The rewrite is applied only when every row of
//! either residue window is dead downstream — rewritten before any
//! read, or never read again.

use crate::effects::{instr_effects, step_effects};
use crate::pass::{Pass, PassContext};
use crate::CompileError;
use coruscant_core::isa::{CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, Row, RowAddress};
use std::collections::{HashMap, HashSet};

/// The identity-folding pass. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct ConstFoldPass;

/// Which identity row a tracked row currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Identity {
    /// Every bit of the row is 1 (AND identity).
    Ones,
    /// Every bit of the row is 0 (OR/XOR identity).
    Zeros,
}

/// The identity a loaded row holds, judged on the *packed* row at full
/// DBC width (bits past the loaded values pack as zeros, so a partial
/// all-ones load is not an AND identity).
fn load_identity(width: usize, lane: usize, values: &[u64]) -> Option<Identity> {
    if lane == 0 || lane > 64 {
        return None;
    }
    let row = Row::pack(width, lane, values);
    if row == Row::ones(width) {
        Some(Identity::Ones)
    } else if row == Row::zeros(width) {
        Some(Identity::Zeros)
    } else {
        None
    }
}

/// The identity element of an associative bulk opcode this pass folds.
fn opcode_identity(opcode: CpimOpcode) -> Option<Identity> {
    match opcode {
        CpimOpcode::And => Some(Identity::Ones),
        CpimOpcode::Or | CpimOpcode::Xor => Some(Identity::Zeros),
        _ => None,
    }
}

/// Whether every row in either instruction's residue window (minus the
/// shared destination) is dead in `trailing`: rewritten before any read,
/// or never read again. Same discipline as fusion's replacement check.
fn residue_dead_after(trailing: &[Step], old: &CpimInstr, new: &CpimInstr) -> bool {
    let mut dirty: HashSet<(DbcLocation, usize)> = HashSet::new();
    for instr in [old, new] {
        if let Some((l, lo, hi)) = instr_effects(instr).smear {
            dirty.extend((lo..=hi).map(|r| (l, r)));
        }
    }
    if let Some(d) = old.dst {
        dirty.remove(&(d.location, d.row));
    }
    for step in trailing {
        if dirty.is_empty() {
            return true;
        }
        let e = step_effects(step);
        if let Some(loc) = e.clobbers {
            if dirty.iter().any(|(l, _)| *l == loc) {
                return false;
            }
        }
        if e.reads.iter().any(|r| dirty.contains(r)) {
            return false;
        }
        for w in &e.writes {
            dirty.remove(w);
        }
    }
    true
}

/// Shrinks one instruction's operand span past boundary rows holding the
/// opcode's identity. Returns the rewritten instruction, or `None` when
/// nothing folds.
fn shrink(instr: &CpimInstr, defs: &HashMap<(DbcLocation, usize), Identity>) -> Option<CpimInstr> {
    let ident = opcode_identity(instr.opcode)?;
    let loc = instr.src.location;
    let mut base = instr.src.row;
    let mut k = instr.operands as usize;
    let holds = |row: usize| defs.get(&(loc, row)) == Some(&ident);
    // Keep at least two operands: a 2-operand op is the natural floor of
    // the bulk encoding, and shrinking further buys nothing.
    while k >= 3 {
        if holds(base + k - 1) {
            k -= 1;
        } else if holds(base) {
            base += 1;
            k -= 1;
        } else {
            break;
        }
    }
    if k == instr.operands as usize {
        return None;
    }
    CpimInstr::new(
        instr.opcode,
        RowAddress::new(loc, base),
        k as u8,
        instr.blocksize,
        instr.dst,
    )
    .ok()
}

impl Pass for ConstFoldPass {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, program: PimProgram, ctx: &PassContext) -> Result<PimProgram, CompileError> {
        let width = ctx.config.nanowires_per_dbc;
        // Latest definition per row, tracked only while it provably holds
        // an identity constant.
        let mut defs: HashMap<(DbcLocation, usize), Identity> = HashMap::new();
        let steps: Vec<Step> = program.steps;
        let mut out: Vec<Step> = Vec::with_capacity(steps.len());
        for (idx, step) in steps.iter().enumerate() {
            let rewritten = match step {
                Step::Exec(instr) => shrink(instr, &defs)
                    .filter(|new| residue_dead_after(&steps[idx + 1..], instr, new))
                    .map(Step::Exec),
                _ => None,
            };
            let step = rewritten.unwrap_or_else(|| step.clone());
            // Update the identity-definition map with this step's writes.
            match &step {
                Step::Load { addr, values, lane } => {
                    let key = (addr.location, addr.row);
                    match load_identity(width, *lane, values) {
                        Some(id) => {
                            defs.insert(key, id);
                        }
                        None => {
                            defs.remove(&key);
                        }
                    }
                }
                Step::Readout { .. } => {}
                Step::Exec(instr) => {
                    let e = instr_effects(instr);
                    if let Some(loc) = e.clobbers {
                        defs.retain(|(l, _), _| *l != loc);
                    }
                    if let Some((l, lo, hi)) = e.smear {
                        defs.retain(|(dl, dr), _| *dl != l || !(lo..=hi).contains(dr));
                    }
                    for w in &e.writes {
                        defs.remove(w);
                    }
                }
            }
            out.push(step);
        }
        Ok(PimProgram { steps: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dce::DeadStepPass;
    use coruscant_core::isa::BlockSize;
    use coruscant_mem::MemoryConfig;

    fn loc() -> DbcLocation {
        DbcLocation::new(0, 0, 0, 0)
    }

    fn ctx() -> PassContext {
        PassContext {
            config: MemoryConfig::tiny(),
        }
    }

    fn load(row: usize, v: u64) -> Step {
        Step::Load {
            addr: RowAddress::new(loc(), row),
            values: vec![v; 1],
            lane: 64,
        }
    }

    fn op(opcode: CpimOpcode, src: usize, k: u8, dst: usize) -> Step {
        Step::Exec(
            CpimInstr::new(
                opcode,
                RowAddress::new(loc(), src),
                k,
                BlockSize::new(64).unwrap(),
                Some(RowAddress::new(loc(), dst)),
            )
            .unwrap(),
        )
    }

    fn readout(row: usize) -> Step {
        Step::Readout {
            label: format!("r{row}"),
            addr: RowAddress::new(loc(), row),
            lane: 64,
        }
    }

    /// The pinning test: an all-ones operand of an AND folds into the
    /// hardware's identity padding, and DCE then removes its load.
    #[test]
    fn identity_operand_folds_into_padding() {
        let program = PimProgram {
            steps: vec![
                load(4, 0b1010),
                load(5, 0b0110),
                load(6, u64::MAX),
                op(CpimOpcode::And, 4, 3, 20),
                readout(20),
            ],
        };
        let folded = ConstFoldPass.run(program, &ctx()).unwrap();
        let Step::Exec(i) = &folded.steps[3] else {
            panic!("expected exec");
        };
        assert_eq!((i.src.row, i.operands), (4, 2), "top identity row dropped");
        // DCE downstream removes the now-dead identity load.
        let cleaned = DeadStepPass.run(folded, &ctx()).unwrap();
        assert_eq!(cleaned.steps.len(), 4);
        assert!(!cleaned
            .steps
            .iter()
            .any(|s| matches!(s, Step::Load { addr, .. } if addr.row == 6)));
    }

    #[test]
    fn bottom_identity_operand_shifts_base() {
        let program = PimProgram {
            steps: vec![
                load(4, 0),
                load(5, 7),
                load(6, 9),
                op(CpimOpcode::Or, 4, 3, 20),
                readout(20),
            ],
        };
        let folded = ConstFoldPass.run(program, &ctx()).unwrap();
        let Step::Exec(i) = &folded.steps[3] else {
            panic!("expected exec");
        };
        assert_eq!((i.src.row, i.operands), (5, 2));
    }

    #[test]
    fn non_identity_rows_are_untouched() {
        let program = PimProgram {
            steps: vec![
                load(4, 1),
                load(5, 2),
                load(6, 3),
                op(CpimOpcode::And, 4, 3, 20),
                readout(20),
            ],
        };
        let out = ConstFoldPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn wrong_identity_for_opcode_does_not_fold() {
        // All-zeros is OR's identity, not AND's: an AND over it is a
        // constant zero and must not be rewritten by this pass.
        let program = PimProgram {
            steps: vec![
                load(4, 1),
                load(5, 3),
                load(6, 0),
                op(CpimOpcode::And, 4, 3, 20),
                readout(20),
            ],
        };
        let out = ConstFoldPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn partial_width_ones_load_is_not_an_identity() {
        // lane 8 with one value covers 8 of 64 bits; the packed row is
        // not all-ones, so AND must keep the operand.
        let partial = Step::Load {
            addr: RowAddress::new(loc(), 6),
            values: vec![u64::MAX],
            lane: 8,
        };
        let program = PimProgram {
            steps: vec![
                load(4, 5),
                load(5, 6),
                partial,
                op(CpimOpcode::And, 4, 3, 20),
                readout(20),
            ],
        };
        let out = ConstFoldPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn overwritten_identity_is_not_folded() {
        let program = PimProgram {
            steps: vec![
                load(4, 2),
                load(5, 3),
                load(6, u64::MAX),
                load(6, 0b11), // identity overwritten before the op
                op(CpimOpcode::And, 4, 3, 20),
                readout(20),
            ],
        };
        let out = ConstFoldPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn residue_read_blocks_folding() {
        // Shrinking changes the residue window; a later readout inside it
        // pins the original instruction.
        let program = PimProgram {
            steps: vec![
                load(4, 2),
                load(5, 3),
                load(6, u64::MAX),
                op(CpimOpcode::And, 4, 3, 20),
                readout(9), // inside src-6..=src+2k+4
                readout(20),
            ],
        };
        let out = ConstFoldPass.run(program.clone(), &ctx()).unwrap();
        assert_eq!(out, program);
    }

    #[test]
    fn folded_program_is_output_equivalent() {
        let config = MemoryConfig::tiny();
        let program = PimProgram {
            steps: vec![
                load(4, 0xF0F0),
                load(5, 0xFF00),
                load(6, u64::MAX),
                op(CpimOpcode::And, 4, 3, 20),
                readout(20),
            ],
        };
        let folded = ConstFoldPass.run(program.clone(), &ctx()).unwrap();
        assert_ne!(folded, program);
        assert_eq!(
            crate::differential_verify(&program, &folded, &config).unwrap(),
            crate::VerifyOutcome::Match
        );
    }
}
