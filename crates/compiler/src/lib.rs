//! `coruscant-compiler`: an optimizing pass pipeline over
//! [`PimProgram`]s.
//!
//! CORUSCANT's advantage over conventional PIM is architectural — one
//! transverse read resolves up to TRD operands (§III-B), and operands
//! kept adjacent under the access ports make shifts cheap (§II-B) — but
//! how much of that the hardware realizes is decided by the *instruction
//! stream*. This crate rewrites programs before they reach the memory
//! controller:
//!
//! * [`TrFusionPass`] — collapses pairwise AND/OR/XOR accumulator chains
//!   into k-operand transverse-read instructions, `k ≤ min(TRD, 7)`;
//! * [`ShiftSchedulePass`] — reorders independent steps so consecutive
//!   row accesses are close, minimizing net shift distance;
//! * [`DeadStepPass`] — removes dead loads, unread bulk results and
//!   redundant copies;
//! * [`differential_verify`] — executes original and optimized programs
//!   through the functional path and asserts identical outputs, wired
//!   into the test suite and available as a debug option in release via
//!   [`CompileOptions::verify`].
//!
//! The [`Compiler`] bundles a configured [`PassManager`] with the
//! verifier; the execution runtime optimizes jobs on enqueue through it
//! (see `coruscant-runtime`'s `RuntimeOptions::compile`).
//!
//! ```
//! use coruscant_compiler::{CompileOptions, Compiler};
//! use coruscant_core::program::PimProgram;
//! use coruscant_mem::MemoryConfig;
//!
//! let config = MemoryConfig::tiny();
//! let compiler = Compiler::new(config, &CompileOptions::default().with_verify(true));
//! let (optimized, report) = compiler.optimize(&PimProgram::default()).unwrap();
//! assert!(optimized.is_empty());
//! assert_eq!(report.cycles_saved(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod constfold;
pub mod dce;
pub mod effects;
pub mod fuse;
pub mod pass;
pub mod schedule;
pub mod stats;
pub mod verify;

pub use batch::{
    demux_outputs, splice_programs, verify_batch, BatchSlot, BatchVerifyOutcome, SplicedBatch,
};
pub use constfold::ConstFoldPass;
pub use dce::DeadStepPass;
pub use fuse::TrFusionPass;
pub use pass::{Pass, PassContext, PassManager, PassReport, PipelineReport};
pub use schedule::ShiftSchedulePass;
pub use stats::{estimated_shifts, ProgramStats};
pub use verify::{differential_verify, VerifyOutcome};

use coruscant_core::program::PimProgram;
use coruscant_core::PimError;
use coruscant_mem::MemoryConfig;
use std::fmt;

/// Errors surfaced while optimizing a program.
#[derive(Debug)]
pub enum CompileError {
    /// A pass or the verifier hit an underlying PIM/ISA error.
    Pim(PimError),
    /// The differential verifier caught an output mismatch — a compiler
    /// bug, never a program bug.
    Diverged {
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Pim(e) => write!(f, "compile failed: {e}"),
            CompileError::Diverged { detail } => {
                write!(f, "differential verification failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Pim(e) => Some(e),
            CompileError::Diverged { .. } => None,
        }
    }
}

impl From<PimError> for CompileError {
    fn from(e: PimError) -> CompileError {
        CompileError::Pim(e)
    }
}

/// Which passes run, and whether every optimized program is differentially
/// verified against its original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Master switch; `false` passes programs through untouched.
    pub enabled: bool,
    /// Run [`TrFusionPass`].
    pub fuse: bool,
    /// Run [`ConstFoldPass`] (fold identity-constant loads into the
    /// hardware's operand padding).
    pub constfold: bool,
    /// Run [`ShiftSchedulePass`].
    pub schedule: bool,
    /// Run [`DeadStepPass`].
    pub dce: bool,
    /// Execute original vs optimized through the functional path and
    /// require identical outputs. Off by default (it runs every program
    /// twice); tests and debugging turn it on — including in release
    /// builds.
    pub verify: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            enabled: true,
            fuse: true,
            constfold: true,
            schedule: true,
            dce: true,
            verify: false,
        }
    }
}

impl CompileOptions {
    /// Options that pass programs through untouched.
    pub fn disabled() -> CompileOptions {
        CompileOptions {
            enabled: false,
            fuse: false,
            constfold: false,
            schedule: false,
            dce: false,
            verify: false,
        }
    }

    /// The same options with verification toggled.
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> CompileOptions {
        self.verify = verify;
        self
    }
}

/// A configured pipeline: pass manager plus optional differential
/// verification.
pub struct Compiler {
    manager: PassManager,
    options: CompileOptions,
    config: MemoryConfig,
}

impl Compiler {
    /// Builds the standard pipeline for a configuration: fusion, then
    /// dead-step elimination, then shift scheduling (fusion first so the
    /// scheduler sees the final access pattern).
    pub fn new(config: MemoryConfig, options: &CompileOptions) -> Compiler {
        let mut manager = PassManager::new(config.clone());
        if options.enabled {
            if options.fuse {
                manager = manager.with_pass(Box::new(TrFusionPass));
            }
            if options.constfold {
                manager = manager.with_pass(Box::new(ConstFoldPass));
            }
            if options.dce {
                manager = manager.with_pass(Box::new(DeadStepPass));
            }
            if options.schedule {
                manager = manager.with_pass(Box::new(ShiftSchedulePass));
            }
        }
        Compiler {
            manager,
            options: *options,
            config,
        }
    }

    /// The configured pass names, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.manager.pass_names()
    }

    /// Optimizes one program.
    ///
    /// With verification enabled, a program whose *original* form fails
    /// to execute on a fresh machine (it depends on pre-loaded state) is
    /// returned untouched rather than rejected — equivalence cannot be
    /// judged, and the error surfaces at execution exactly as before.
    ///
    /// # Errors
    ///
    /// Propagates pass failures and verifier divergence.
    pub fn optimize(
        &self,
        program: &PimProgram,
    ) -> Result<(PimProgram, PipelineReport), CompileError> {
        if !self.options.enabled {
            return Ok((
                program.clone(),
                PipelineReport::identity(ProgramStats::of(program, &self.config)),
            ));
        }
        let (optimized, mut report) = self.manager.run(program)?;
        if self.options.verify {
            match differential_verify(program, &optimized, &self.config)? {
                VerifyOutcome::Match => report.verified = true,
                VerifyOutcome::OriginalFailed => {
                    return Ok((program.clone(), PipelineReport::identity(report.before)));
                }
            }
        }
        Ok((optimized, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_compiler_is_identity() {
        let config = MemoryConfig::tiny();
        let compiler = Compiler::new(config, &CompileOptions::disabled());
        assert!(compiler.pass_names().is_empty());
        let program = PimProgram::default();
        let (out, report) = compiler.optimize(&program).unwrap();
        assert_eq!(out, program);
        assert!(report.passes.is_empty());
    }

    #[test]
    fn standard_pipeline_orders_passes() {
        let config = MemoryConfig::tiny();
        let compiler = Compiler::new(config, &CompileOptions::default());
        assert_eq!(
            compiler.pass_names(),
            vec!["tr-fusion", "const-fold", "dead-step", "shift-schedule"]
        );
    }
}
