//! Degenerate-input coverage for the analytic mapping layer: zero-width
//! reductions and empty networks must stay total (no panics, sane zeros).

use coruscant_nn::layers::Layer;
use coruscant_nn::mapping::reduction_steps;
use coruscant_nn::models::Network;

#[test]
fn reduction_steps_zero_operands_is_zero() {
    for trd in [3, 5, 7] {
        assert_eq!(reduction_steps(0, trd), 0, "trd={trd}");
    }
}

#[test]
fn reduction_steps_single_operand_is_zero() {
    for trd in [3, 5, 7] {
        assert_eq!(reduction_steps(1, trd), 0, "trd={trd}");
    }
}

#[test]
fn reduction_steps_trd_boundaries() {
    // At TRD >= 4 the final adder takes trd - 2 operands directly; one
    // more forces exactly one carry-save step.
    for trd in [5_usize, 7] {
        let cap = trd as u64 - 2;
        assert_eq!(reduction_steps(cap, trd), 0, "at-capacity trd={trd}");
        assert_eq!(reduction_steps(cap + 1, trd), 1, "capacity+1 trd={trd}");
        assert_eq!(reduction_steps(trd as u64, trd), 1, "full group trd={trd}");
    }
    // TRD = 3 caps at 2 operands and reduces groups of 3 to 2.
    assert_eq!(reduction_steps(2, 3), 0);
    assert_eq!(reduction_steps(3, 3), 1);
}

#[test]
fn reduction_steps_monotone_never_diverges() {
    for trd in [3, 5, 7] {
        let mut prev = 0;
        for n in 0..=2048_u64 {
            let s = reduction_steps(n, trd);
            assert!(s < 64, "n={n} trd={trd} took {s} steps");
            // Steps never decrease by more than 0 as n grows.
            assert!(s + 1 >= prev, "non-monotone at n={n} trd={trd}");
            prev = s;
        }
    }
}

#[test]
fn empty_network_reduction_width_is_zero() {
    let net = Network {
        name: "empty".into(),
        layers: Vec::new(),
    };
    assert_eq!(net.max_reduction_width(), 0);
    assert_eq!(net.total_macs(), 0);
    assert_eq!(net.total_outputs(), 0);
    assert_eq!(net.total_reduction_adds(), 0);
}

#[test]
fn single_layer_network_reduction_width() {
    let net = Network {
        name: "one-fc".into(),
        layers: vec![Layer::Fc {
            name: "f".into(),
            inputs: 9,
            outputs: 2,
        }],
    };
    assert_eq!(net.max_reduction_width(), 9);
}
