//! Serde round-trips for the types BENCH_nn.json and pipeline traces
//! name: `quant::Precision`, `mapping::Scheme`, `models::Network`.

use coruscant_nn::mapping::Scheme;
use coruscant_nn::models::{alexnet, lenet5, Network};
use coruscant_nn::quant::Precision;
use serde::json;

#[test]
fn precision_round_trips() {
    for p in [Precision::Full, Precision::Bwn, Precision::Twn] {
        let text = json::to_string(&p);
        let back: Precision = json::from_str(&text).expect("precision deserializes");
        assert_eq!(back, p, "{text}");
    }
}

#[test]
fn scheme_round_trips() {
    for s in [
        Scheme::Coruscant(3),
        Scheme::Coruscant(5),
        Scheme::Coruscant(7),
        Scheme::Spim,
        Scheme::DwNn,
        Scheme::Ambit,
        Scheme::Elp2im,
        Scheme::Isaac,
    ] {
        let text = json::to_string(&s);
        let back: Scheme = json::from_str(&text).expect("scheme deserializes");
        assert_eq!(back, s, "{text}");
    }
}

#[test]
fn network_round_trips() {
    for net in [
        lenet5(),
        alexnet(),
        coruscant_nn::infer::proxy_lenet5(),
        coruscant_nn::infer::proxy_alexnet(),
    ] {
        let text = json::to_string(&net);
        let back: Network = json::from_str(&text).expect("network deserializes");
        assert_eq!(back, net, "{}", net.name);
    }
}

#[test]
fn network_json_names_layers() {
    // The serialized form must carry layer names so external tooling can
    // reference stages without positional knowledge.
    let text = json::to_string(&lenet5());
    for label in ["c1", "s2", "c3", "f5"] {
        assert!(text.contains(label), "missing {label} in {text}");
    }
}
