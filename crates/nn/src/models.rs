//! The two evaluated networks: LeNet-5 and AlexNet (paper §V-E).
//!
//! Layer shapes follow the canonical published architectures; the
//! descriptors carry exactly the shape data the performance model needs
//! (outputs, MACs, per-output reduction widths).

use crate::layers::Layer;
use serde::{Deserialize, Serialize};

/// A network: a name plus its layer stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    /// Network name.
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Total multiply-accumulates per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total reduction additions under the BWN/TWN approximations
    /// (paper eq. 2 summed over layers).
    pub fn total_reduction_adds(&self) -> u64 {
        self.layers.iter().map(Layer::reduction_adds).sum()
    }

    /// Total output values across layers.
    pub fn total_outputs(&self) -> u64 {
        self.layers.iter().map(Layer::outputs).sum()
    }

    /// The widest per-output reduction in the network (operand count fed
    /// to the adder tree of one output).
    pub fn max_reduction_width(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.macs_per_output())
            .max()
            .unwrap_or(0)
    }
}

fn conv(name: &str, kernel: usize, ic: usize, oc: usize, oh: usize, ow: usize) -> Layer {
    Layer::Conv {
        name: name.into(),
        kernel,
        in_channels: ic,
        out_channels: oc,
        out_h: oh,
        out_w: ow,
    }
}

fn pool(name: &str, window: usize, c: usize, oh: usize, ow: usize) -> Layer {
    Layer::MaxPool {
        name: name.into(),
        window,
        channels: c,
        out_h: oh,
        out_w: ow,
    }
}

fn fc(name: &str, inputs: usize, outputs: usize) -> Layer {
    Layer::Fc {
        name: name.into(),
        inputs,
        outputs,
    }
}

/// LeNet-5 (32×32 grayscale input).
pub fn lenet5() -> Network {
    Network {
        name: "lenet5".into(),
        layers: vec![
            conv("c1", 5, 1, 6, 28, 28),
            pool("s2", 2, 6, 14, 14),
            conv("c3", 5, 6, 16, 10, 10),
            pool("s4", 2, 16, 5, 5),
            fc("f5", 400, 120),
            fc("f6", 120, 84),
            fc("f7", 84, 10),
        ],
    }
}

/// AlexNet (227×227×3 input, single-GPU filter grouping as published).
pub fn alexnet() -> Network {
    Network {
        name: "alexnet".into(),
        layers: vec![
            conv("conv1", 11, 3, 96, 55, 55),
            pool("pool1", 2, 96, 27, 27),
            conv("conv2", 5, 48, 256, 27, 27),
            pool("pool2", 2, 256, 13, 13),
            conv("conv3", 3, 256, 384, 13, 13),
            conv("conv4", 3, 192, 384, 13, 13),
            conv("conv5", 3, 192, 256, 13, 13),
            pool("pool5", 2, 256, 6, 6),
            fc("fc6", 9216, 4096),
            fc("fc7", 4096, 4096),
            fc("fc8", 4096, 1000),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet5_mac_count() {
        let net = lenet5();
        // c1: 6*28*28*25 = 117600; c3: 16*10*10*150 = 240000;
        // fc: 48000 + 10080 + 840.
        assert_eq!(net.total_macs(), 117_600 + 240_000 + 48_000 + 10_080 + 840);
    }

    #[test]
    fn alexnet_mac_count_near_724m() {
        let net = alexnet();
        let macs = net.total_macs() as f64;
        assert!(
            (macs - 724e6).abs() / 724e6 < 0.05,
            "AlexNet MACs = {macs:.3e}, expected ~7.24e8"
        );
    }

    #[test]
    fn alexnet_first_reduction_width_is_362_adds() {
        // Paper §IV-A anchors its example on this number.
        let net = alexnet();
        let conv1 = &net.layers[0];
        assert_eq!(conv1.adds_per_output(), 362);
    }

    #[test]
    fn largest_alexnet_layer_reduction_total() {
        // Paper §IV-A: "the largest convolution window requiring
        // 4.5e8 adds" — conv2 dominates the eq. (2) totals.
        let net = alexnet();
        let max_adds = net.layers.iter().map(|l| l.reduction_adds()).max().unwrap();
        assert!(
            (1.0e8..6.0e8).contains(&(max_adds as f64)),
            "largest layer reduction = {max_adds:.3e}"
        );
    }

    #[test]
    fn lenet_is_orders_of_magnitude_smaller() {
        assert!(alexnet().total_macs() > 1000 * lenet5().total_macs());
    }

    #[test]
    fn reduction_widths() {
        assert_eq!(alexnet().max_reduction_width(), 9216);
        assert_eq!(lenet5().max_reduction_width(), 400);
    }
}
