//! CNN layers: descriptors with exact operation counts, plus functional
//! integer implementations for verification (paper §IV).

use crate::tensor::Tensor3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A layer descriptor carrying the shape information the performance
/// model needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// A 2-D convolution (square kernel, valid padding unless noted).
    Conv {
        /// Layer label.
        name: String,
        /// Kernel side length `K`.
        kernel: usize,
        /// Input channels `I_c`.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Output feature-map height.
        out_h: usize,
        /// Output feature-map width.
        out_w: usize,
    },
    /// Max pooling over `window × window` regions.
    MaxPool {
        /// Layer label.
        name: String,
        /// Pooling window side.
        window: usize,
        /// Channels.
        channels: usize,
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
    },
    /// A fully-connected layer (`outputs × inputs` weights) with ReLU.
    Fc {
        /// Layer label.
        name: String,
        /// Input features.
        inputs: usize,
        /// Output features.
        outputs: usize,
    },
}

impl Layer {
    /// Layer label.
    pub fn name(&self) -> &str {
        match self {
            Layer::Conv { name, .. } | Layer::MaxPool { name, .. } | Layer::Fc { name, .. } => name,
        }
    }

    /// Number of output values `O_s`.
    pub fn outputs(&self) -> u64 {
        match self {
            Layer::Conv {
                out_channels,
                out_h,
                out_w,
                ..
            } => (out_channels * out_h * out_w) as u64,
            Layer::MaxPool {
                channels,
                out_h,
                out_w,
                ..
            } => (channels * out_h * out_w) as u64,
            Layer::Fc { outputs, .. } => *outputs as u64,
        }
    }

    /// Multiply-accumulates per output value (zero for pooling).
    pub fn macs_per_output(&self) -> u64 {
        match self {
            Layer::Conv {
                kernel,
                in_channels,
                ..
            } => (kernel * kernel * in_channels) as u64,
            Layer::MaxPool { .. } => 0,
            Layer::Fc { inputs, .. } => *inputs as u64,
        }
    }

    /// Total multiply-accumulates.
    pub fn macs(&self) -> u64 {
        self.outputs() * self.macs_per_output()
    }

    /// Reduction additions per output under the binary/ternary
    /// approximations — the per-output term of the paper's eq. (2):
    /// `(K² − 1)·I_c + (I_c − 1)`.
    pub fn adds_per_output(&self) -> u64 {
        match self {
            Layer::Conv {
                kernel,
                in_channels,
                ..
            } => {
                let k2 = (kernel * kernel) as u64;
                let ic = *in_channels as u64;
                (k2 - 1) * ic + (ic - 1)
            }
            Layer::MaxPool { .. } => 0,
            Layer::Fc { inputs, .. } => (*inputs as u64).saturating_sub(1),
        }
    }

    /// Total reduction additions (eq. 2): `O_s × adds_per_output`.
    pub fn reduction_adds(&self) -> u64 {
        self.outputs() * self.adds_per_output()
    }

    /// Pooling comparisons per output (candidates of the max function).
    pub fn pool_candidates(&self) -> u64 {
        match self {
            Layer::MaxPool { window, .. } => (window * window) as u64,
            _ => 0,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} outputs, {} MACs",
            self.name(),
            self.outputs(),
            self.macs()
        )
    }
}

/// Functional integer convolution (valid padding, stride 1): the oracle
/// the PIM mapping must reproduce.
pub fn conv2d(input: &Tensor3, weights: &[Tensor3], out_channels: usize, kernel: usize) -> Tensor3 {
    let (ic, ih, iw) = input.shape();
    assert_eq!(weights.len(), out_channels, "one weight tensor per filter");
    let oh = ih - kernel + 1;
    let ow = iw - kernel + 1;
    let mut out = Tensor3::zeros(out_channels, oh, ow);
    for (oc, w) in weights.iter().enumerate() {
        assert_eq!(w.shape(), (ic, kernel, kernel), "weight shape");
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0i64;
                for c in 0..ic {
                    for dy in 0..kernel {
                        for dx in 0..kernel {
                            acc += input.get(c, y + dy, x + dx) * w.get(c, dy, dx);
                        }
                    }
                }
                out.set(oc, y, x, acc);
            }
        }
    }
    out
}

/// Functional max pooling (non-overlapping `window × window`).
pub fn maxpool(input: &Tensor3, window: usize) -> Tensor3 {
    let (c, h, w) = input.shape();
    let oh = h / window;
    let ow = w / window;
    let mut out = Tensor3::zeros(c, oh, ow);
    for ch in 0..c {
        for y in 0..oh {
            for x in 0..ow {
                let mut m = i64::MIN;
                for dy in 0..window {
                    for dx in 0..window {
                        m = m.max(input.get(ch, y * window + dy, x * window + dx));
                    }
                }
                out.set(ch, y, x, m);
            }
        }
    }
    out
}

/// Functional fully-connected layer with ReLU: `ReLU(W·x + b)`.
pub fn fc_relu(input: &[i64], weights: &[Vec<i64>], bias: &[i64]) -> Vec<i64> {
    assert_eq!(weights.len(), bias.len(), "one bias per output");
    weights
        .iter()
        .zip(bias)
        .map(|(row, &b)| {
            assert_eq!(row.len(), input.len(), "weight row width");
            let acc: i64 = row.iter().zip(input).map(|(&w, &x)| w * x).sum::<i64>() + b;
            acc.max(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer(kernel: usize, ic: usize, oc: usize, oh: usize, ow: usize) -> Layer {
        Layer::Conv {
            name: "c".into(),
            kernel,
            in_channels: ic,
            out_channels: oc,
            out_h: oh,
            out_w: ow,
        }
    }

    #[test]
    fn conv_counts() {
        // AlexNet conv1: 11x11 kernel, 3 input channels, 96 filters on
        // 55x55 outputs.
        let l = conv_layer(11, 3, 96, 55, 55);
        assert_eq!(l.outputs(), 96 * 55 * 55);
        assert_eq!(l.macs_per_output(), 11 * 11 * 3);
        // Paper §IV-A: the first reduction of AlexNet has 362 operands.
        assert_eq!(l.adds_per_output(), 362);
    }

    #[test]
    fn fc_counts() {
        let l = Layer::Fc {
            name: "fc".into(),
            inputs: 400,
            outputs: 120,
        };
        assert_eq!(l.macs(), 48_000);
        assert_eq!(l.adds_per_output(), 399);
    }

    #[test]
    fn functional_conv_small_case() {
        // 1 channel, 3x3 input, 2x2 kernel of ones: each output is the
        // window sum.
        let input = Tensor3::from_data(1, 3, 3, (1..=9).collect());
        let w = Tensor3::from_data(1, 2, 2, vec![1; 4]);
        let out = conv2d(&input, &[w], 1, 2);
        assert_eq!(out.shape(), (1, 2, 2));
        assert_eq!(out.get(0, 0, 0), 1 + 2 + 4 + 5);
        assert_eq!(out.get(0, 1, 1), 5 + 6 + 8 + 9);
    }

    #[test]
    fn functional_conv_multichannel() {
        let mut input = Tensor3::zeros(2, 2, 2);
        input.fill_pattern(3, 5);
        let mut w = Tensor3::zeros(2, 2, 2);
        w.fill_pattern(5, 3);
        let out = conv2d(&input, &[w.clone()], 1, 2);
        let want: i64 = input
            .as_slice()
            .iter()
            .zip(w.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert_eq!(out.get(0, 0, 0), want);
    }

    #[test]
    fn functional_maxpool() {
        let input = Tensor3::from_data(1, 4, 4, (0..16).collect());
        let out = maxpool(&input, 2);
        assert_eq!(out.shape(), (1, 2, 2));
        assert_eq!(out.get(0, 0, 0), 5);
        assert_eq!(out.get(0, 1, 1), 15);
    }

    #[test]
    fn functional_fc_relu() {
        let x = vec![1, -2, 3];
        let w = vec![vec![1, 1, 1], vec![-5, 0, 0]];
        let b = vec![0, 2];
        let y = fc_relu(&x, &w, &b);
        assert_eq!(y, vec![2, 0], "second output rectified to zero");
    }

    #[test]
    fn pool_counts() {
        let l = Layer::MaxPool {
            name: "p".into(),
            window: 2,
            channels: 6,
            out_h: 14,
            out_w: 14,
        };
        assert_eq!(l.outputs(), 6 * 14 * 14);
        assert_eq!(l.macs(), 0);
        assert_eq!(l.pool_candidates(), 4);
        assert_eq!(l.reduction_adds(), 0);
    }
}
