//! BWN / TWN weight quantization (paper §IV-A, §V-E).
//!
//! The DRAM PIM comparison points approximate CNN inference with binary
//! weight networks (NID-style, weights in {0, 1}) or ternary weight
//! networks (DrAcc-style, weights in {−1, 0, 1}). Both replace the
//! point-wise multiplications with bulk-bitwise operations (e.g. XNOR),
//! leaving the reduction additions as the dominant cost.

use crate::tensor::Tensor3;
use serde::{Deserialize, Serialize};

/// The numeric mode of an inference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 8-bit integer weights and activations.
    Full,
    /// Binary weights (NID-style).
    Bwn,
    /// Ternary weights (DrAcc-style).
    Twn,
}

impl Precision {
    /// Whether multiplication collapses to bulk-bitwise ops in this mode.
    pub fn mult_free(self) -> bool {
        !matches!(self, Precision::Full)
    }
}

/// Binarizes weights: positive → 1, else 0 (NID's {0,1} convention).
#[must_use]
pub fn binarize(weights: &Tensor3) -> Tensor3 {
    weights.map(|w| i64::from(w > 0))
}

/// Ternarizes weights with a symmetric threshold: `w > t → 1`,
/// `w < −t → −1`, else 0.
#[must_use]
pub fn ternarize(weights: &Tensor3, threshold: i64) -> Tensor3 {
    weights.map(|w| {
        if w > threshold {
            1
        } else if w < -threshold {
            -1
        } else {
            0
        }
    })
}

/// The XNOR-accumulate form of a binary dot product over sign-bit
/// activations: with `a, w ∈ {0, 1}` encoding signs, the ±1 dot product
/// equals `2·popcount(XNOR(a, w)) − n`. This is the identity that lets
/// NID/DrAcc-style inference run on bulk-bitwise PIM.
pub fn xnor_dot(a_bits: &[bool], w_bits: &[bool]) -> i64 {
    assert_eq!(a_bits.len(), w_bits.len(), "operand length mismatch");
    let matches = a_bits.iter().zip(w_bits).filter(|(a, w)| a == w).count() as i64;
    2 * matches - a_bits.len() as i64
}

/// Reference ±1 dot product for validating [`xnor_dot`].
pub fn signed_dot(a_bits: &[bool], w_bits: &[bool]) -> i64 {
    a_bits
        .iter()
        .zip(w_bits)
        .map(|(&a, &w)| {
            let av = if a { 1 } else { -1 };
            let wv = if w { 1 } else { -1 };
            av * wv
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binarize_thresholds_at_zero() {
        let w = Tensor3::from_data(1, 1, 5, vec![-3, -1, 0, 1, 7]);
        assert_eq!(binarize(&w).as_slice(), &[0, 0, 0, 1, 1]);
    }

    #[test]
    fn ternarize_symmetric() {
        let w = Tensor3::from_data(1, 1, 6, vec![-9, -2, -1, 1, 2, 9]);
        assert_eq!(ternarize(&w, 1).as_slice(), &[-1, -1, 0, 0, 1, 1]);
        assert_eq!(ternarize(&w, 0).as_slice(), &[-1, -1, -1, 1, 1, 1]);
    }

    #[test]
    fn xnor_identity_holds_exhaustively() {
        // All 4-bit operand pairs.
        for a in 0u8..16 {
            for w in 0u8..16 {
                let ab: Vec<bool> = (0..4).map(|i| a >> i & 1 == 1).collect();
                let wb: Vec<bool> = (0..4).map(|i| w >> i & 1 == 1).collect();
                assert_eq!(xnor_dot(&ab, &wb), signed_dot(&ab, &wb), "a={a} w={w}");
            }
        }
    }

    #[test]
    fn precision_modes() {
        assert!(!Precision::Full.mult_free());
        assert!(Precision::Bwn.mult_free());
        assert!(Precision::Twn.mult_free());
    }
}
