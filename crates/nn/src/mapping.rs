//! The per-scheme CNN inference performance model (Tables IV and VI).
//!
//! The paper reports frames per second for each scheme × network ×
//! precision. Absolute FPS depends on testbed details (dispatch
//! bandwidth, data placement) that the paper does not fully specify, so
//! this model follows the reproducible part — the per-layer operation
//! structure and each scheme's measured/fitted operation cycles — and
//! anchors the absolute scale once per (network, precision-family) on the
//! paper's CORUSCANT-7 (or, for the DRAM schemes, ELP²IM) figure. Every
//! *ratio* in the regenerated tables then follows from the operation
//! models; EXPERIMENTS.md tabulates where they land against the paper.
//!
//! Cost structure per layer (outputs run lane-parallel; the critical path
//! is the per-output reduction pipeline):
//!
//! * **Full precision**: `R` products per output (8-bit multiplies) plus
//!   the reduction of `R` partial results.
//! * **BWN/TWN**: multiplications collapse to bulk-bitwise XNOR; the cost
//!   is the reduction-addition tree of eq. (2) — `⌈log2 R⌉` 40-cycle
//!   steps on ELP²IM, carry-save `TRD → 3` steps on CORUSCANT.

use crate::models::Network;
use crate::quant::Precision;
use coruscant_core::cost_model::{add_cycles, MeasuredCosts};
use serde::{Deserialize, Serialize};

/// An evaluated scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// CORUSCANT at a given TRD (3, 5 or 7).
    Coruscant(usize),
    /// The SPIM skyrmion DWM PIM.
    Spim,
    /// The DW-NN GMR DWM PIM.
    DwNn,
    /// Ambit DRAM PIM.
    Ambit,
    /// ELP²IM DRAM PIM.
    Elp2im,
    /// The ISAAC ReRAM crossbar accelerator.
    Isaac,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Coruscant(trd) => write!(f, "CORUSCANT-{trd}"),
            Scheme::Spim => write!(f, "SPIM"),
            Scheme::DwNn => write!(f, "DW-NN"),
            Scheme::Ambit => write!(f, "Ambit"),
            Scheme::Elp2im => write!(f, "ELP2IM"),
            Scheme::Isaac => write!(f, "ISAAC"),
        }
    }
}

/// Number of carry-save reduction steps to bring `n` operands down to the
/// final-add capacity at a given TRD: each step maps groups of `TRD` rows
/// to 3 (2 at TRD = 3), all groups in parallel.
pub fn reduction_steps(n: u64, trd: usize) -> u64 {
    let outputs = if trd >= 4 { 3 } else { 2 };
    let cap = if trd >= 4 { trd as u64 - 2 } else { 2 };
    let mut n = n;
    let mut steps = 0;
    while n > cap {
        let groups = n / trd as u64;
        let rest = n % trd as u64;
        let reduced = groups * outputs + rest;
        // A partial group of >= outputs rows still needs reducing; fold it
        // in when no full group exists.
        n = if groups == 0 { outputs.min(n) } else { reduced };
        steps += 1;
        if steps > 200 {
            break; // defensive: cannot happen for n < 2^64 at trd >= 3
        }
    }
    steps
}

/// Per-step cycle cost of a carry-save reduction including operand
/// staging through the ports (TR + output writes + window restocking).
const REDUCTION_STEP_CYCLES: u64 = 8;

/// Fixed per-layer overhead: the XNOR/product pass, result write-back and
/// predication commands.
const LAYER_OVERHEAD_CYCLES: u64 = 10;

/// Device-to-wall-clock: CORUSCANT device cycle (1 ns).
const DEVICE_NS: f64 = 1.0;
/// Memory cycle of the DRAM schemes (1.25 ns, DDR3-1600).
const MEMORY_NS: f64 = 1.25;

/// BWN (NID-style) popcount-tree step cycles on the DRAM schemes: binary
/// operands reduce with narrow counters, fitted to the BWN/TWN gap of
/// Table IV.
const ELP2IM_BWN_STEP: f64 = 15.0;
const AMBIT_BWN_STEP: f64 = 17.0;

/// The relative work (ns of critical path per frame) of one scheme.
///
/// # Panics
///
/// Panics if the scheme/precision combination is not evaluated in the
/// paper (e.g. DRAM PIM at full precision).
pub fn frame_work_ns(scheme: Scheme, net: &Network, precision: Precision) -> f64 {
    match (scheme, precision) {
        (Scheme::Coruscant(trd), Precision::Full) => {
            let mc = MeasuredCosts::measure(trd).expect("measurable TRD");
            net.layers
                .iter()
                .filter(|l| l.macs_per_output() > 0)
                .map(|l| {
                    let r = l.macs_per_output();
                    let mult = r as f64 * mc.mult.cycles as f64;
                    let red = reduction_steps(r, trd) as f64 * REDUCTION_STEP_CYCLES as f64;
                    let fin = add_cycles(trd, 16) as f64;
                    (mult + red + fin + LAYER_OVERHEAD_CYCLES as f64) * DEVICE_NS
                })
                .sum()
        }
        (Scheme::Coruscant(trd), Precision::Twn | Precision::Bwn) => net
            .layers
            .iter()
            .filter(|l| l.macs_per_output() > 0)
            .map(|l| {
                let r = l.adds_per_output() + 1;
                let red = reduction_steps(r, trd) as f64 * REDUCTION_STEP_CYCLES as f64;
                let fin = add_cycles(trd, 8) as f64;
                (red + fin + LAYER_OVERHEAD_CYCLES as f64) * DEVICE_NS
            })
            .sum(),
        (Scheme::Spim | Scheme::DwNn, Precision::Full) => {
            let model = if scheme == Scheme::Spim {
                coruscant_baselines::dwm_pim::SerialDwmPim::spim()
            } else {
                coruscant_baselines::dwm_pim::SerialDwmPim::dw_nn()
            };
            net.layers
                .iter()
                .filter(|l| l.macs_per_output() > 0)
                .map(|l| {
                    let r = l.macs_per_output();
                    let mult = r as f64 * model.mult2(8).cycles as f64;
                    let red = (r - 1) as f64 * (model.add2(8).cycles + model.staging_cycles) as f64
                        / r as f64
                        * r as f64; // (R-1) staged adds on the unit
                    (mult + red + LAYER_OVERHEAD_CYCLES as f64) * DEVICE_NS
                })
                .sum()
        }
        (Scheme::Ambit, Precision::Twn) => dram_tree_work(net, 46.0),
        (Scheme::Elp2im, Precision::Twn) => dram_tree_work(net, 40.0),
        (Scheme::Ambit, Precision::Bwn) => dram_tree_work(net, AMBIT_BWN_STEP),
        (Scheme::Elp2im, Precision::Bwn) => dram_tree_work(net, ELP2IM_BWN_STEP),
        (scheme, precision) => {
            panic!("{scheme} at {precision:?} is not evaluated in the paper")
        }
    }
}

fn dram_tree_work(net: &Network, step_cycles: f64) -> f64 {
    net.layers
        .iter()
        .filter(|l| l.macs_per_output() > 0)
        .map(|l| {
            let r = l.adds_per_output() + 1;
            let levels = 64 - (r - 1).leading_zeros() as u64;
            (levels as f64 * step_cycles + 2.0 * step_cycles) * MEMORY_NS
        })
        .sum()
}

/// Per-layer share of a scheme's frame work: `(layer name, ns, fraction)`.
///
/// Pooling layers cost no reduction work in this model (their max/avg
/// passes are orders of magnitude below the conv/fc reductions) and are
/// omitted, as in [`frame_work_ns`].
pub fn layer_breakdown(
    scheme: Scheme,
    net: &Network,
    precision: Precision,
) -> Vec<(String, f64, f64)> {
    let total = frame_work_ns(scheme, net, precision);
    net.layers
        .iter()
        .filter(|l| l.macs_per_output() > 0)
        .map(|l| {
            let single = Network {
                name: net.name.clone(),
                layers: vec![l.clone()],
            };
            let ns = frame_work_ns(scheme, &single, precision);
            (l.name().to_string(), ns, ns / total)
        })
        .collect()
}

/// The paper's Table IV FPS figures, used as anchors and for side-by-side
/// printing.
pub fn paper_fps(scheme: Scheme, network: &str, precision: Precision) -> Option<f64> {
    use Precision::*;
    use Scheme::*;
    Some(match (scheme, network, precision) {
        (Spim, "alexnet", Full) => 32.1,
        (Coruscant(3), "alexnet", Full) => 71.1,
        (Coruscant(5), "alexnet", Full) => 84.0,
        (Coruscant(7), "alexnet", Full) => 90.5,
        (Spim, "lenet5", Full) => 59.0,
        (Coruscant(3), "lenet5", Full) => 131.0,
        (Coruscant(5), "lenet5", Full) => 153.0,
        (Coruscant(7), "lenet5", Full) => 163.0,
        (Isaac, "alexnet", Full) => 34.0,
        (Isaac, "lenet5", Full) => 2581.0,
        (Ambit, "alexnet", Bwn) => 227.0,
        (Elp2im, "alexnet", Bwn) => 253.0,
        (Ambit, "lenet5", Bwn) => 7525.0,
        (Elp2im, "lenet5", Bwn) => 9959.0,
        (Ambit, "alexnet", Twn) => 84.8,
        (Elp2im, "alexnet", Twn) => 96.4,
        (Ambit, "lenet5", Twn) => 7697.0,
        (Elp2im, "lenet5", Twn) => 8330.0,
        (Coruscant(3), "alexnet", Twn) => 358.0,
        (Coruscant(5), "alexnet", Twn) => 449.0,
        (Coruscant(7), "alexnet", Twn) => 490.0,
        (Coruscant(3), "lenet5", Twn) => 22172.0,
        (Coruscant(5), "lenet5", Twn) => 26453.0,
        (Coruscant(7), "lenet5", Twn) => 32075.0,
        _ => return None,
    })
}

/// Model FPS: the per-frame work scaled so CORUSCANT-7 matches the
/// paper's figure for that (network, precision); ISAAC uses its own
/// analytic model.
pub fn model_fps(scheme: Scheme, net: &Network, precision: Precision) -> f64 {
    if scheme == Scheme::Isaac {
        // ISAAC is a headline-number comparison point: use its reported
        // figure when the paper gives one (small networks are latency-
        // rather than MAC-bound on the crossbar), else scale by MACs.
        return coruscant_baselines::isaac::Isaac::reported_fps(&net.name).unwrap_or_else(|| {
            coruscant_baselines::isaac::Isaac::paper().fps(net.total_macs() as f64)
        });
    }
    // The paper has no CORUSCANT BWN row, so BWN anchors on ELP²IM.
    let anchor_scheme = match precision {
        Precision::Bwn => Scheme::Elp2im,
        _ => Scheme::Coruscant(7),
    };
    let anchor_fps =
        paper_fps(anchor_scheme, &net.name, precision).expect("anchor present for mode");
    let anchor_work = frame_work_ns(anchor_scheme, net, precision);
    let work = frame_work_ns(scheme, net, precision);
    anchor_fps * anchor_work / work
}

/// N-modular-redundancy model (Table VI): every PIM step is repeated `n`
/// times with a voting operation inserted per reduction step, dividing
/// throughput accordingly.
pub fn model_fps_nmr(scheme: Scheme, net: &Network, precision: Precision, n: usize) -> f64 {
    let base = model_fps(scheme, net, precision);
    // n repetitions plus one vote (2 cycles vs an 8-cycle step) per step.
    let vote_overhead = 1.0 + 2.0 / REDUCTION_STEP_CYCLES as f64;
    base / (n as f64 * vote_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{alexnet, lenet5};

    #[test]
    fn reduction_steps_match_paper_example() {
        // §IV-A: 362 operands -> about five 7→3 steps (we count 6 with
        // strict ceilings) then one addition.
        let s = reduction_steps(362, 7);
        assert!((5..=6).contains(&s), "got {s}");
        // TRD 3 needs many more steps, TRD 5 in between.
        assert!(reduction_steps(362, 3) > reduction_steps(362, 5));
        assert!(reduction_steps(362, 5) > reduction_steps(362, 7));
    }

    #[test]
    fn reduction_steps_edge_cases() {
        assert_eq!(reduction_steps(1, 7), 0);
        assert_eq!(reduction_steps(5, 7), 0, "already within add capacity");
        assert_eq!(reduction_steps(6, 7), 1);
        assert_eq!(reduction_steps(7, 7), 1);
        assert_eq!(reduction_steps(2, 3), 0);
        assert_eq!(reduction_steps(3, 3), 1);
    }

    #[test]
    fn full_precision_ordering_matches_table4() {
        for net in [alexnet(), lenet5()] {
            let isaac = model_fps(Scheme::Isaac, &net, Precision::Full);
            let spim = model_fps(Scheme::Spim, &net, Precision::Full);
            let c3 = model_fps(Scheme::Coruscant(3), &net, Precision::Full);
            let c5 = model_fps(Scheme::Coruscant(5), &net, Precision::Full);
            let c7 = model_fps(Scheme::Coruscant(7), &net, Precision::Full);
            assert!(spim < c3, "{}: SPIM {spim:.1} vs C3 {c3:.1}", net.name);
            assert!(c3 < c5 && c5 < c7, "{}: {c3:.1} {c5:.1} {c7:.1}", net.name);
            // ISAAC loses to CORUSCANT at full precision on AlexNet.
            if net.name == "alexnet" {
                assert!(isaac < c7);
            }
        }
    }

    #[test]
    fn twn_ordering_matches_table4() {
        for net in [alexnet(), lenet5()] {
            let ambit = model_fps(Scheme::Ambit, &net, Precision::Twn);
            let elp = model_fps(Scheme::Elp2im, &net, Precision::Twn);
            let c3 = model_fps(Scheme::Coruscant(3), &net, Precision::Twn);
            let c5 = model_fps(Scheme::Coruscant(5), &net, Precision::Twn);
            let c7 = model_fps(Scheme::Coruscant(7), &net, Precision::Twn);
            assert!(ambit < elp, "{}", net.name);
            assert!(elp < c3, "{}: ELP2IM {elp:.0} vs C3 {c3:.0}", net.name);
            assert!(c3 < c5 && c5 < c7, "{}", net.name);
        }
    }

    #[test]
    fn twn_speedup_over_elp2im_in_paper_band() {
        // Paper: C3 is 3.7x over ELP2IM on AlexNet TWN, growing past 5x at
        // C7. Accept a generous band around those ratios.
        let net = alexnet();
        let elp = model_fps(Scheme::Elp2im, &net, Precision::Twn);
        let c3 = model_fps(Scheme::Coruscant(3), &net, Precision::Twn);
        let c7 = model_fps(Scheme::Coruscant(7), &net, Precision::Twn);
        let r3 = c3 / elp;
        let r7 = c7 / elp;
        assert!(r3 > 2.0 && r3 < 6.0, "C3/ELP2IM = {r3:.2}");
        assert!(r7 > r3, "C7 ratio {r7:.2} must exceed C3 ratio {r3:.2}");
        assert!(r7 < 9.0, "C7/ELP2IM = {r7:.2}");
    }

    #[test]
    fn bwn_faster_than_twn_on_dram_schemes() {
        let net = alexnet();
        let bwn = model_fps(Scheme::Elp2im, &net, Precision::Bwn);
        let twn = model_fps(Scheme::Elp2im, &net, Precision::Twn);
        assert!(bwn > 2.0 * twn, "bwn {bwn:.0} vs twn {twn:.0}");
    }

    #[test]
    fn anchored_values_reproduce_the_anchor() {
        let net = alexnet();
        let c7 = model_fps(Scheme::Coruscant(7), &net, Precision::Full);
        assert!((c7 - 90.5).abs() < 1e-6);
        let c7_twn = model_fps(Scheme::Coruscant(7), &net, Precision::Twn);
        assert!((c7_twn - 490.0).abs() < 1e-6);
    }

    #[test]
    fn trd_sensitivity_bands() {
        // Paper: TRD 3→5 improves performance 30-40%, 5→7 another 10-20%.
        // Require monotone improvement with each hop in a generous band.
        let net = alexnet();
        for precision in [Precision::Full, Precision::Twn] {
            let c3 = model_fps(Scheme::Coruscant(3), &net, precision);
            let c5 = model_fps(Scheme::Coruscant(5), &net, precision);
            let c7 = model_fps(Scheme::Coruscant(7), &net, precision);
            let g35 = c5 / c3 - 1.0;
            let g57 = c7 / c5 - 1.0;
            // Our measured TRD-5 multiply schedule is pessimistic relative
            // to the paper's interpolated value, so the full-precision
            // gains skew toward the 5→7 hop; require monotone improvement
            // within a generous band (see EXPERIMENTS.md).
            assert!(g35 > 0.02 && g35 < 0.9, "{precision:?} 3→5 gain {g35:.2}");
            assert!(g57 > 0.03 && g57 < 1.0, "{precision:?} 5→7 gain {g57:.2}");
        }
    }

    #[test]
    fn nmr_costs_throughput_proportionally() {
        let net = alexnet();
        let base = model_fps(Scheme::Coruscant(7), &net, Precision::Twn);
        let tmr = model_fps_nmr(Scheme::Coruscant(7), &net, Precision::Twn, 3);
        let n5 = model_fps_nmr(Scheme::Coruscant(7), &net, Precision::Twn, 5);
        let n7 = model_fps_nmr(Scheme::Coruscant(7), &net, Precision::Twn, 7);
        assert!(tmr < base / 3.0 * 1.01);
        assert!(n5 < tmr && n7 < n5);
        // Table VI shape: CORUSCANT with TMR still beats Ambit/ELP2IM
        // without fault tolerance on ternary AlexNet.
        let ambit = model_fps(Scheme::Ambit, &net, Precision::Twn);
        let elp = model_fps(Scheme::Elp2im, &net, Precision::Twn);
        assert!(tmr > ambit, "TMR {tmr:.0} vs Ambit {ambit:.0}");
        assert!(tmr > elp, "TMR {tmr:.0} vs ELP2IM {elp:.0}");
    }

    #[test]
    fn layer_breakdown_sums_to_one() {
        let net = alexnet();
        for (scheme, precision) in [
            (Scheme::Coruscant(7), Precision::Twn),
            (Scheme::Elp2im, Precision::Twn),
            (Scheme::Coruscant(7), Precision::Full),
        ] {
            let breakdown = layer_breakdown(scheme, &net, precision);
            assert_eq!(breakdown.len(), 8, "5 convs + 3 fcs");
            let total: f64 = breakdown.iter().map(|(_, _, f)| f).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{scheme} {precision:?}: {total}"
            );
            assert!(breakdown.iter().all(|(_, ns, _)| *ns > 0.0));
        }
    }

    #[test]
    fn full_precision_work_tracks_macs_per_output() {
        // conv2 (1200 MACs/output) must dominate conv1 (363) in the
        // full-precision per-layer shares.
        let net = alexnet();
        let b = layer_breakdown(Scheme::Coruscant(7), &net, Precision::Full);
        let conv1 = b.iter().find(|(n, _, _)| n == "conv1").unwrap().1;
        let fc6 = b.iter().find(|(n, _, _)| n == "fc6").unwrap().1;
        assert!(fc6 > conv1, "fc6 reduces 9216 operands per output");
    }

    #[test]
    fn paper_table_lookup() {
        assert_eq!(
            paper_fps(Scheme::Coruscant(7), "alexnet", Precision::Twn),
            Some(490.0)
        );
        assert_eq!(paper_fps(Scheme::DwNn, "alexnet", Precision::Full), None);
    }

    #[test]
    #[should_panic(expected = "not evaluated")]
    fn unsupported_combination_panics() {
        frame_work_ns(Scheme::Ambit, &alexnet(), Precision::Full);
    }
}
