//! Functional CNN inference **on the PIM engine** (paper §IV).
//!
//! This module actually executes a ternary-weight CNN with CORUSCANT
//! operations — no shortcut arithmetic on the hot path:
//!
//! * convolution and fully-connected layers split each output's window by
//!   weight sign and compute `Σ(+1·act) − Σ(−1·act)` with the
//!   carry-save [`ArithmeticUnit::sum_rows`] accumulator and the
//!   two's-complement subtractor (DrAcc-style ternary inference,
//!   §IV-A);
//! * ReLU is the predicated row refresh on the lane sign bit (§IV-C);
//! * max pooling runs the transverse-write max function (§IV-B).
//!
//! Outputs are packed several per row (16-bit lanes), so a handful of
//! spatially adjacent outputs share every DBC operation — the lane-level
//! parallelism the architecture provides. Between layers, activations are
//! requantized to 8 bits in the row buffer (a data-formatting step, not
//! arithmetic).

use coruscant_core::arith::ArithmeticUnit;
use coruscant_core::maxpool::MaxExecutor;
use coruscant_core::relu::relu_row;
use coruscant_core::Result;
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::{Cost, CostMeter};

use crate::tensor::Tensor3;

/// Lane width used for accumulations (sums of 8-bit products fit
/// comfortably).
const LANE: usize = 16;

/// A ternary-weight CNN executor over a PIM-enabled DBC.
#[derive(Debug)]
pub struct PimCnn {
    config: MemoryConfig,
    arith: ArithmeticUnit,
    maxer: MaxExecutor,
    meter: CostMeter,
}

impl PimCnn {
    /// Creates an executor for the configuration.
    pub fn new(config: &MemoryConfig) -> PimCnn {
        PimCnn {
            config: config.clone(),
            arith: ArithmeticUnit::new(config),
            maxer: MaxExecutor::new(config),
            meter: CostMeter::new(),
        }
    }

    /// Total device cost accumulated so far.
    pub fn cost(&self) -> Cost {
        self.meter.total()
    }

    fn lanes(&self) -> usize {
        self.config.nanowires_per_dbc / LANE
    }

    fn fresh_dbc(&self) -> Dbc {
        Dbc::pim_enabled(&self.config)
    }

    /// Ternary convolution + ReLU: `weights[oc]` has entries in
    /// {−1, 0, 1}; activations are unsigned 8-bit. Valid padding,
    /// stride 1.
    ///
    /// # Errors
    ///
    /// Propagates PIM errors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (one weight tensor per output channel,
    /// weight shape `in_channels × k × k`).
    pub fn conv2d_ternary(
        &mut self,
        input: &Tensor3,
        weights: &[Tensor3],
        kernel: usize,
    ) -> Result<Tensor3> {
        let (ic, ih, iw) = input.shape();
        let oh = ih - kernel + 1;
        let ow = iw - kernel + 1;
        let oc = weights.len();
        let mut out = Tensor3::zeros(oc, oh, ow);
        let lanes = self.lanes();

        for (f, w) in weights.iter().enumerate() {
            assert_eq!(w.shape(), (ic, kernel, kernel), "weight shape");
            // Split the window positions by weight sign (fixed per filter).
            let mut plus = Vec::new();
            let mut minus = Vec::new();
            for c in 0..ic {
                for dy in 0..kernel {
                    for dx in 0..kernel {
                        match w.get(c, dy, dx) {
                            1 => plus.push((c, dy, dx)),
                            -1 => minus.push((c, dy, dx)),
                            0 => {}
                            other => panic!("non-ternary weight {other}"),
                        }
                    }
                }
            }

            // Outputs in lane groups.
            let coords: Vec<(usize, usize)> =
                (0..oh).flat_map(|y| (0..ow).map(move |x| (y, x))).collect();
            for group in coords.chunks(lanes) {
                let width = self.config.nanowires_per_dbc;
                let gather = |positions: &[(usize, usize, usize)]| -> Vec<Row> {
                    positions
                        .iter()
                        .map(|&(c, dy, dx)| {
                            let vals: Vec<u64> = group
                                .iter()
                                .map(|&(y, x)| input.get(c, y + dy, x + dx) as u64)
                                .collect();
                            Row::pack(width, LANE, &vals)
                        })
                        .collect()
                };
                let plus_rows = gather(&plus);
                let minus_rows = gather(&minus);
                let mut dbc = self.fresh_dbc();
                let p = self.sum_or_zero(&mut dbc, &plus_rows)?;
                let n = self.sum_or_zero(&mut dbc, &minus_rows)?;
                let diff = self
                    .arith
                    .subtract(&mut dbc, &p, &n, LANE, &mut self.meter)?;
                // ReLU on the 16-bit lane sign bit (predicated refresh).
                let relu_slot = self.config.rows_per_dbc - 1;
                dbc.write_row(relu_slot, &diff, &mut self.meter)?;
                let rect = relu_row(&mut dbc, relu_slot, LANE, &mut self.meter)?;
                for (l, &(y, x)) in group.iter().enumerate() {
                    out.set(f, y, x, rect.unpack(LANE)[l] as i64);
                }
            }
        }
        Ok(out)
    }

    fn sum_or_zero(&mut self, dbc: &mut Dbc, rows: &[Row]) -> Result<Row> {
        if rows.is_empty() {
            Ok(Row::zeros(self.config.nanowires_per_dbc))
        } else {
            self.arith.sum_rows(dbc, rows, LANE, &mut self.meter)
        }
    }

    /// Max pooling over non-overlapping `window × window` regions using
    /// the transverse-write max function.
    ///
    /// # Errors
    ///
    /// Propagates PIM errors (the window area must be at most TRD).
    pub fn maxpool(&mut self, input: &Tensor3, window: usize) -> Result<Tensor3> {
        let (c, h, w) = input.shape();
        let oh = h / window;
        let ow = w / window;
        let mut out = Tensor3::zeros(c, oh, ow);
        let lanes = self.lanes();

        for ch in 0..c {
            let coords: Vec<(usize, usize)> =
                (0..oh).flat_map(|y| (0..ow).map(move |x| (y, x))).collect();
            for group in coords.chunks(lanes) {
                // One candidate row per window position; lane l carries
                // output l's candidate.
                let mut candidates = Vec::with_capacity(window * window);
                for dy in 0..window {
                    for dx in 0..window {
                        let vals: Vec<u64> = group
                            .iter()
                            .map(|&(y, x)| input.get(ch, y * window + dy, x * window + dx) as u64)
                            .collect();
                        candidates.push(Row::pack(self.config.nanowires_per_dbc, LANE, &vals));
                    }
                }
                let mut dbc = self.fresh_dbc();
                let m = self
                    .maxer
                    .max_rows(&mut dbc, &candidates, LANE, &mut self.meter)?;
                for (l, &(y, x)) in group.iter().enumerate() {
                    out.set(ch, y, x, m.unpack(LANE)[l] as i64);
                }
            }
        }
        Ok(out)
    }

    /// Average pooling over non-overlapping `window × window` regions
    /// (paper §IV-B mentions both average and maximum). The window sum
    /// runs on the carry-save accumulator; the divide by the window area
    /// is a power-of-two right shift applied during row-buffer
    /// write-back (windows are 2×2 or 4×4 in the evaluated networks).
    ///
    /// # Errors
    ///
    /// Propagates PIM errors.
    ///
    /// # Panics
    ///
    /// Panics if `window * window` is not a power of two.
    pub fn avgpool(&mut self, input: &Tensor3, window: usize) -> Result<Tensor3> {
        let area = window * window;
        assert!(area.is_power_of_two(), "window area must be a power of two");
        let shift = area.trailing_zeros();
        let (c, h, w) = input.shape();
        let oh = h / window;
        let ow = w / window;
        let mut out = Tensor3::zeros(c, oh, ow);
        let lanes = self.lanes();
        let width = self.config.nanowires_per_dbc;

        for ch in 0..c {
            let coords: Vec<(usize, usize)> =
                (0..oh).flat_map(|y| (0..ow).map(move |x| (y, x))).collect();
            for group in coords.chunks(lanes) {
                let rows: Vec<Row> = (0..window)
                    .flat_map(|dy| (0..window).map(move |dx| (dy, dx)))
                    .map(|(dy, dx)| {
                        let vals: Vec<u64> = group
                            .iter()
                            .map(|&(y, x)| input.get(ch, y * window + dy, x * window + dx) as u64)
                            .collect();
                        Row::pack(width, LANE, &vals)
                    })
                    .collect();
                let mut dbc = self.fresh_dbc();
                let sums = self
                    .arith
                    .sum_rows(&mut dbc, &rows, LANE, &mut self.meter)?;
                for (l, &(y, x)) in group.iter().enumerate() {
                    out.set(ch, y, x, (sums.unpack(LANE)[l] >> shift) as i64);
                }
            }
        }
        Ok(out)
    }

    /// Ternary fully-connected layer with ReLU.
    ///
    /// # Errors
    ///
    /// Propagates PIM errors.
    ///
    /// # Panics
    ///
    /// Panics if weight rows do not match the input length.
    pub fn fc_ternary(&mut self, input: &[u64], weights: &[Vec<i8>]) -> Result<Vec<u64>> {
        let lanes = self.lanes();
        let mut out = vec![0u64; weights.len()];
        let indices: Vec<usize> = (0..weights.len()).collect();
        for group in indices.chunks(lanes) {
            let width = self.config.nanowires_per_dbc;
            let gather = |sign: i8| -> Vec<Row> {
                (0..input.len())
                    .filter_map(|i| {
                        let vals: Vec<u64> = group
                            .iter()
                            .map(|&o| {
                                assert_eq!(weights[o].len(), input.len(), "weight row width");
                                if weights[o][i] == sign {
                                    input[i]
                                } else {
                                    0
                                }
                            })
                            .collect();
                        if vals.iter().all(|&v| v == 0) {
                            None
                        } else {
                            Some(Row::pack(width, LANE, &vals))
                        }
                    })
                    .collect()
            };
            let plus_rows = gather(1);
            let minus_rows = gather(-1);
            let mut dbc = self.fresh_dbc();
            let p = self.sum_or_zero(&mut dbc, &plus_rows)?;
            let n = self.sum_or_zero(&mut dbc, &minus_rows)?;
            let diff = self
                .arith
                .subtract(&mut dbc, &p, &n, LANE, &mut self.meter)?;
            let relu_slot = self.config.rows_per_dbc - 1;
            dbc.write_row(relu_slot, &diff, &mut self.meter)?;
            let rect = relu_row(&mut dbc, relu_slot, LANE, &mut self.meter)?;
            for (l, &o) in group.iter().enumerate() {
                out[o] = rect.unpack(LANE)[l];
            }
        }
        Ok(out)
    }

    /// Requantizes activations back to 8 bits between layers (row-buffer
    /// data formatting): `min(v >> shift, 255)`.
    pub fn requantize(t: &Tensor3, shift: u32) -> Tensor3 {
        t.map(|v| ((v as u64) >> shift).min(255) as i64)
    }

    /// Full-precision (integer-weight) convolution + ReLU: weights carry
    /// signed 8-bit-range magnitudes, activations are unsigned 8-bit.
    /// Each window position multiplies the activation row by the
    /// broadcast weight-magnitude row on the carry-save multiplier;
    /// positive- and negative-weight products accumulate separately and
    /// meet in the two's-complement subtractor, exactly like the ternary
    /// path but with true products instead of sign-selected activations.
    ///
    /// Products and partial sums ride 16-bit lanes: callers keep
    /// `Σ|w|·act` per output under 2¹⁵ (the evaluated reduced-geometry
    /// networks do by construction).
    ///
    /// # Errors
    ///
    /// Propagates PIM errors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn conv2d_full(
        &mut self,
        input: &Tensor3,
        weights: &[Tensor3],
        kernel: usize,
    ) -> Result<Tensor3> {
        let (ic, ih, iw) = input.shape();
        let oh = ih - kernel + 1;
        let ow = iw - kernel + 1;
        let oc = weights.len();
        let mut out = Tensor3::zeros(oc, oh, ow);
        let lanes = self.lanes();
        let width = self.config.nanowires_per_dbc;
        let mult = coruscant_core::mult::Multiplier::new(&self.config);

        for (f, w) in weights.iter().enumerate() {
            assert_eq!(w.shape(), (ic, kernel, kernel), "weight shape");
            // Non-zero positions with their magnitudes, split by sign.
            let mut plus = Vec::new();
            let mut minus = Vec::new();
            for c in 0..ic {
                for dy in 0..kernel {
                    for dx in 0..kernel {
                        let v = w.get(c, dy, dx);
                        match v.cmp(&0) {
                            std::cmp::Ordering::Greater => plus.push((c, dy, dx, v as u64)),
                            std::cmp::Ordering::Less => minus.push((c, dy, dx, (-v) as u64)),
                            std::cmp::Ordering::Equal => {}
                        }
                    }
                }
            }

            let coords: Vec<(usize, usize)> =
                (0..oh).flat_map(|y| (0..ow).map(move |x| (y, x))).collect();
            for group in coords.chunks(lanes) {
                let mut dbc = self.fresh_dbc();
                let mut products =
                    |dbc: &mut Dbc, positions: &[(usize, usize, usize, u64)]| -> Result<Vec<Row>> {
                        positions
                            .iter()
                            .map(|&(c, dy, dx, mag)| {
                                let acts: Vec<u64> = group
                                    .iter()
                                    .map(|&(y, x)| input.get(c, y + dy, x + dx) as u64)
                                    .collect();
                                let a = Row::pack(width, LANE, &acts);
                                let b = Row::pack(width, LANE, &vec![mag; group.len()]);
                                mult.multiply_packed(dbc, &a, &b, LANE / 2, &mut self.meter)
                            })
                            .collect()
                    };
                let plus_rows = products(&mut dbc, &plus)?;
                let minus_rows = products(&mut dbc, &minus)?;
                let p = self.sum_or_zero(&mut dbc, &plus_rows)?;
                let n = self.sum_or_zero(&mut dbc, &minus_rows)?;
                let diff = self
                    .arith
                    .subtract(&mut dbc, &p, &n, LANE, &mut self.meter)?;
                let relu_slot = self.config.rows_per_dbc - 1;
                dbc.write_row(relu_slot, &diff, &mut self.meter)?;
                let rect = relu_row(&mut dbc, relu_slot, LANE, &mut self.meter)?;
                for (l, &(y, x)) in group.iter().enumerate() {
                    out.set(f, y, x, rect.unpack(LANE)[l] as i64);
                }
            }
        }
        Ok(out)
    }

    /// Full-precision fully-connected layer with ReLU: per input, the
    /// activation row multiplies the per-output weight-magnitude row,
    /// accumulating positive- and negative-weight products separately
    /// (the lane-overflow discipline of [`PimCnn::conv2d_full`] applies).
    ///
    /// # Errors
    ///
    /// Propagates PIM errors.
    ///
    /// # Panics
    ///
    /// Panics if weight rows do not match the input length.
    pub fn fc_full(&mut self, input: &[u64], weights: &[Vec<i8>]) -> Result<Vec<u64>> {
        let lanes = self.lanes();
        let width = self.config.nanowires_per_dbc;
        let mult = coruscant_core::mult::Multiplier::new(&self.config);
        let mut out = vec![0u64; weights.len()];
        let indices: Vec<usize> = (0..weights.len()).collect();
        for group in indices.chunks(lanes) {
            let mut dbc = self.fresh_dbc();
            let mut products = |dbc: &mut Dbc, sign: i8| -> Result<Vec<Row>> {
                (0..input.len())
                    .filter_map(|i| {
                        let mags: Vec<u64> = group
                            .iter()
                            .map(|&o| {
                                assert_eq!(weights[o].len(), input.len(), "weight row width");
                                let w = weights[o][i];
                                if (sign > 0 && w > 0) || (sign < 0 && w < 0) {
                                    w.unsigned_abs() as u64
                                } else {
                                    0
                                }
                            })
                            .collect();
                        if mags.iter().all(|&v| v == 0) {
                            return None;
                        }
                        let a = Row::pack(width, LANE, &vec![input[i]; group.len()]);
                        let b = Row::pack(width, LANE, &mags);
                        Some(mult.multiply_packed(dbc, &a, &b, LANE / 2, &mut self.meter))
                    })
                    .collect()
            };
            let plus_rows = products(&mut dbc, 1)?;
            let minus_rows = products(&mut dbc, -1)?;
            let p = self.sum_or_zero(&mut dbc, &plus_rows)?;
            let n = self.sum_or_zero(&mut dbc, &minus_rows)?;
            let diff = self
                .arith
                .subtract(&mut dbc, &p, &n, LANE, &mut self.meter)?;
            let relu_slot = self.config.rows_per_dbc - 1;
            dbc.write_row(relu_slot, &diff, &mut self.meter)?;
            let rect = relu_row(&mut dbc, relu_slot, LANE, &mut self.meter)?;
            for (l, &o) in group.iter().enumerate() {
                out[o] = rect.unpack(LANE)[l];
            }
        }
        Ok(out)
    }

    /// Binary (XNOR-net, NID-style) convolution: both activations and
    /// weights are sign bits; the ±1 dot product of an `n`-position
    /// window is `2·popcount(XNOR(a, w)) − n` (paper §IV-A). The XNOR of
    /// each window position is one bulk-bitwise PIM operation; the
    /// popcount is the reduction addition of the match bits.
    ///
    /// `input_bits` / `weights[f]` hold `true` for +1, `false` for −1.
    /// Returns the signed dot products.
    ///
    /// # Errors
    ///
    /// Propagates PIM errors.
    ///
    /// # Panics
    ///
    /// Panics on weight shape mismatches.
    pub fn conv2d_bwn(
        &mut self,
        input_bits: &Tensor3,
        weights: &[Tensor3],
        kernel: usize,
    ) -> Result<Tensor3> {
        let (ic, ih, iw) = input_bits.shape();
        let oh = ih - kernel + 1;
        let ow = iw - kernel + 1;
        let mut out = Tensor3::zeros(weights.len(), oh, ow);
        let lanes = self.lanes();
        let width = self.config.nanowires_per_dbc;
        let n_positions = ic * kernel * kernel;
        let bulk = coruscant_core::bulk::BulkExecutor::new(&self.config);

        for (f, w) in weights.iter().enumerate() {
            assert_eq!(w.shape(), (ic, kernel, kernel), "weight shape");
            let coords: Vec<(usize, usize)> =
                (0..oh).flat_map(|y| (0..ow).map(move |x| (y, x))).collect();
            for group in coords.chunks(lanes) {
                // One XNOR per window position: activation-bit row vs the
                // broadcast weight-bit row. The match bits accumulate as
                // 1-per-lane rows for the popcount reduction.
                let mut match_rows = Vec::with_capacity(n_positions);
                for c in 0..ic {
                    for dy in 0..kernel {
                        for dx in 0..kernel {
                            let acts: Vec<u64> = group
                                .iter()
                                .map(|&(y, x)| u64::from(input_bits.get(c, y + dy, x + dx) != 0))
                                .collect();
                            let a_row = Row::pack(width, LANE, &acts);
                            let w_bit = w.get(c, dy, dx) != 0;
                            let w_row =
                                Row::pack(width, LANE, &vec![u64::from(w_bit); group.len()]);
                            let mut dbc = self.fresh_dbc();
                            let m = bulk.execute(
                                &mut dbc,
                                coruscant_core::bulk::BulkOp::Xnor,
                                &[a_row, w_row],
                                &mut self.meter,
                            )?;
                            // Keep only the lane LSB (the match bit).
                            let bits: Vec<u64> =
                                m.unpack(LANE).into_iter().map(|v| v & 1).collect();
                            match_rows.push(Row::pack(width, LANE, &bits));
                        }
                    }
                }
                // Popcount via the carry-save accumulator.
                let mut dbc = self.fresh_dbc();
                let count = self
                    .arith
                    .sum_rows(&mut dbc, &match_rows, LANE, &mut self.meter)?;
                for (l, &(y, x)) in group.iter().enumerate() {
                    let matches = count.unpack(LANE)[l] as i64;
                    out.set(f, y, x, 2 * matches - n_positions as i64);
                }
            }
        }
        Ok(out)
    }
}

/// Reference binary (±1) convolution (oracle): sign bits in, signed dot
/// products out.
pub fn reference_conv_bwn(input_bits: &Tensor3, weights: &[Tensor3], kernel: usize) -> Tensor3 {
    let (ic, ih, iw) = input_bits.shape();
    let oh = ih - kernel + 1;
    let ow = iw - kernel + 1;
    let mut out = Tensor3::zeros(weights.len(), oh, ow);
    for (f, w) in weights.iter().enumerate() {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0i64;
                for c in 0..ic {
                    for dy in 0..kernel {
                        for dx in 0..kernel {
                            let a = if input_bits.get(c, y + dy, x + dx) != 0 {
                                1
                            } else {
                                -1
                            };
                            let ww = if w.get(c, dy, dx) != 0 { 1 } else { -1 };
                            acc += a * ww;
                        }
                    }
                }
                out.set(f, y, x, acc);
            }
        }
    }
    out
}

/// Reference ternary convolution + ReLU (oracle).
pub fn reference_conv_ternary(input: &Tensor3, weights: &[Tensor3], kernel: usize) -> Tensor3 {
    let conv = crate::layers::conv2d(input, weights, weights.len(), kernel);
    conv.map(|v| v.max(0))
}

/// Reference full-precision convolution + ReLU (oracle).
pub fn reference_conv_full(input: &Tensor3, weights: &[Tensor3], kernel: usize) -> Tensor3 {
    let conv = crate::layers::conv2d(input, weights, weights.len(), kernel);
    conv.map(|v| v.max(0))
}

/// Reference full-precision FC + ReLU (oracle). The signed dot product
/// is the same shape as the ternary one, just with wider weights.
pub fn reference_fc_full(input: &[u64], weights: &[Vec<i8>]) -> Vec<u64> {
    reference_fc_ternary(input, weights)
}

/// Reference ternary FC + ReLU (oracle).
pub fn reference_fc_ternary(input: &[u64], weights: &[Vec<i8>]) -> Vec<u64> {
    weights
        .iter()
        .map(|row| {
            let acc: i64 = row
                .iter()
                .zip(input)
                .map(|(&w, &x)| i64::from(w) * x as i64)
                .sum();
            acc.max(0) as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ternary_weights(oc: usize, ic: usize, k: usize, seed: u64) -> Vec<Tensor3> {
        (0..oc)
            .map(|f| {
                let mut t = Tensor3::zeros(ic, k, k);
                t.fill_pattern(seed + f as u64, 1); // values in {-1, 0, 1}
                t
            })
            .collect()
    }

    fn small_input(c: usize, h: usize, w: usize, seed: u64) -> Tensor3 {
        let mut t = Tensor3::zeros(c, h, w);
        t.fill_pattern(seed, 4);
        t.map(|v| v.abs().min(15)) // unsigned small activations
    }

    #[test]
    fn pim_conv_matches_reference() {
        let config = MemoryConfig::tiny();
        let input = small_input(1, 6, 6, 3);
        let weights = ternary_weights(2, 1, 3, 11);
        let mut pim = PimCnn::new(&config);
        let got = pim.conv2d_ternary(&input, &weights, 3).unwrap();
        let want = reference_conv_ternary(&input, &weights, 3);
        assert_eq!(got, want);
        assert!(pim.cost().cycles > 0, "real device work was done");
    }

    #[test]
    fn pim_maxpool_matches_reference() {
        let config = MemoryConfig::tiny();
        let input = small_input(2, 6, 6, 5);
        let mut pim = PimCnn::new(&config);
        let got = pim.maxpool(&input, 2).unwrap();
        assert_eq!(got, crate::layers::maxpool(&input, 2));
    }

    #[test]
    fn pim_fc_matches_reference() {
        let config = MemoryConfig::tiny();
        let input: Vec<u64> = (0..12).map(|i| (i * 7) % 16).collect();
        let weights: Vec<Vec<i8>> = (0..5)
            .map(|o| {
                (0..12)
                    .map(|i| (((o * 13 + i * 5) % 3) as i8) - 1)
                    .collect()
            })
            .collect();
        let mut pim = PimCnn::new(&config);
        let got = pim.fc_ternary(&input, &weights).unwrap();
        assert_eq!(got, reference_fc_ternary(&input, &weights));
    }

    #[test]
    fn tiny_network_end_to_end_on_pim() {
        // conv(3x3, 2 filters) -> ReLU -> pool(2x2) -> fc(2 outputs),
        // everything on the PIM engine, verified layer-by-layer.
        let config = MemoryConfig::tiny();
        let input = small_input(1, 8, 8, 9);
        let conv_w = ternary_weights(2, 1, 3, 21);
        let fc_w: Vec<Vec<i8>> = (0..2)
            .map(|o| {
                (0..2 * 3 * 3)
                    .map(|i| (((o * 7 + i * 3) % 3) as i8) - 1)
                    .collect()
            })
            .collect();

        let mut pim = PimCnn::new(&config);
        let c1 = pim.conv2d_ternary(&input, &conv_w, 3).unwrap(); // 2x6x6
        let q1 = PimCnn::requantize(&c1, 0);
        let p1 = pim.maxpool(&q1, 2).unwrap(); // 2x3x3
        let flat: Vec<u64> = p1.as_slice().iter().map(|&v| v as u64).collect();
        let out = pim.fc_ternary(&flat, &fc_w).unwrap();

        // Oracle chain.
        let rc1 = reference_conv_ternary(&input, &conv_w, 3);
        let rp1 = crate::layers::maxpool(&rc1, 2);
        let rflat: Vec<u64> = rp1.as_slice().iter().map(|&v| v as u64).collect();
        let rout = reference_fc_ternary(&rflat, &fc_w);
        assert_eq!(out, rout);
        assert!(pim.cost().cycles > 100, "cost: {}", pim.cost());
    }

    #[test]
    fn pim_avgpool_matches_reference() {
        let config = MemoryConfig::tiny();
        let input = small_input(2, 8, 8, 17);
        let mut pim = PimCnn::new(&config);
        let got = pim.avgpool(&input, 2).unwrap();
        // Reference: floor-average of each 2x2 window.
        let (c, _, _) = input.shape();
        let (gc, gh, gw) = got.shape();
        assert_eq!((gc, gh, gw), (c, 4, 4));
        for ch in 0..gc {
            for y in 0..gh {
                for x in 0..gw {
                    let sum: i64 = (0..2)
                        .flat_map(|dy| (0..2).map(move |dx| (dy, dx)))
                        .map(|(dy, dx)| input.get(ch, y * 2 + dy, x * 2 + dx))
                        .sum();
                    assert_eq!(got.get(ch, y, x), sum / 4, "({ch},{y},{x})");
                }
            }
        }
        assert!(pim.cost().cycles > 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn avgpool_rejects_non_pow2_windows() {
        let config = MemoryConfig::tiny();
        let input = small_input(1, 9, 9, 3);
        let _ = PimCnn::new(&config).avgpool(&input, 3);
    }

    #[test]
    fn bwn_conv_matches_signed_reference() {
        let config = MemoryConfig::tiny();
        let mut bits = Tensor3::zeros(1, 5, 5);
        bits.fill_pattern(13, 1);
        let bits = bits.map(|v| i64::from(v > 0));
        let weights: Vec<Tensor3> = (0..2)
            .map(|f| {
                let mut t = Tensor3::zeros(1, 3, 3);
                t.fill_pattern(31 + f, 1);
                t.map(|v| i64::from(v > 0))
            })
            .collect();
        let mut pim = PimCnn::new(&config);
        let got = pim.conv2d_bwn(&bits, &weights, 3).unwrap();
        let want = reference_conv_bwn(&bits, &weights, 3);
        assert_eq!(got, want);
        // Every output is in [-9, 9] with the parity of 9.
        for &v in got.as_slice() {
            assert!((-9..=9).contains(&v) && (v - 9) % 2 == 0);
        }
    }

    #[test]
    fn bwn_multichannel() {
        let config = MemoryConfig::tiny();
        let mut bits = Tensor3::zeros(2, 4, 4);
        bits.fill_pattern(77, 1);
        let bits = bits.map(|v| i64::from(v > 0));
        let weights: Vec<Tensor3> = (0..3)
            .map(|f| {
                let mut t = Tensor3::zeros(2, 2, 2);
                t.fill_pattern(91 + f, 1);
                t.map(|v| i64::from(v > 0))
            })
            .collect();
        let mut pim = PimCnn::new(&config);
        let got = pim.conv2d_bwn(&bits, &weights, 2).unwrap();
        assert_eq!(got, reference_conv_bwn(&bits, &weights, 2));
    }

    #[test]
    fn full_precision_conv_matches_reference() {
        let config = MemoryConfig::tiny();
        let input = small_input(2, 5, 5, 7);
        let weights: Vec<Tensor3> = (0..2)
            .map(|f| {
                let mut t = Tensor3::zeros(2, 3, 3);
                t.fill_pattern(41 + f, 2); // values in {-2..=2}
                t
            })
            .collect();
        let mut pim = PimCnn::new(&config);
        let got = pim.conv2d_full(&input, &weights, 3).unwrap();
        assert_eq!(got, reference_conv_full(&input, &weights, 3));
        assert!(pim.cost().cycles > 0);
    }

    #[test]
    fn full_precision_fc_matches_reference() {
        let config = MemoryConfig::tiny();
        let input: Vec<u64> = (0..10).map(|i| (i * 11) % 32).collect();
        let weights: Vec<Vec<i8>> = (0..6)
            .map(|o| {
                (0..10)
                    .map(|i| (((o * 17 + i * 7) % 7) as i8) - 3) // {-3..=3}
                    .collect()
            })
            .collect();
        let mut pim = PimCnn::new(&config);
        let got = pim.fc_full(&input, &weights).unwrap();
        assert_eq!(got, reference_fc_full(&input, &weights));
    }

    #[test]
    fn requantize_clamps_and_shifts() {
        let t = Tensor3::from_data(1, 1, 4, vec![1024, 511, 0, 70000]);
        let q = PimCnn::requantize(&t, 2);
        assert_eq!(q.as_slice(), &[255, 127, 0, 255]);
    }
}
