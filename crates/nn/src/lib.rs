//! CNN case study for CORUSCANT (paper §IV, §V-E).
//!
//! The paper demonstrates CORUSCANT by running convolutional neural
//! network inference entirely in memory: convolutions map to PIM
//! multiplications and carry-save reductions, pooling to the TR-based max
//! function, and fully-connected layers to multiply-accumulate plus a
//! predicated ReLU. Two networks are evaluated — LeNet-5 and AlexNet — in
//! three numeric modes:
//!
//! * **full precision** (8-bit integer) — multiplications dominate;
//! * **BWN** (binary weights, NID-style) — multiplications collapse to
//!   XNOR and the cost is governed by the reduction additions of eq. (2);
//! * **TWN** (ternary weights, DrAcc-style) — likewise addition-governed.
//!
//! Provided here:
//!
//! * [`tensor`] / [`layers`] — functional integer tensors and
//!   conv/pool/fc layers for bit-exact verification;
//! * [`models`] — the LeNet-5 and AlexNet layer descriptors with exact
//!   MAC and reduction counts (AlexNet's first layer reduces 362 operands
//!   per output, the paper's §IV-A example);
//! * [`quant`] — BWN/TWN weight quantization and the XNOR-convolution
//!   equivalence;
//! * [`mapping`] — the per-scheme inference performance model behind
//!   Tables IV and VI;
//! * [`throughput`] — the peak TOPS / GOPJ figures of §V-E.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod infer;
pub mod layers;
pub mod mapping;
pub mod models;
pub mod pim_exec;
pub mod quant;
pub mod tensor;
pub mod throughput;
