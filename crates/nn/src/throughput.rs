//! Peak convolution throughput and efficiency (paper §V-E).
//!
//! "Presuming DDR3-1600 memory, CORUSCANT is capable of executing
//! convolution at 26 Tera Ops Per Second (TOPS) with 108 Giga Ops Per
//! Joule (GOPJ)", versus 0.34 TOPS / 12.5 GOPJ for the cited same-
//! precision FPGA accelerator. This module derives the peak from the
//! memory geometry and the per-operation costs.

use coruscant_core::cost_model::MeasuredCosts;
use coruscant_mem::MemoryConfig;
use serde::{Deserialize, Serialize};

/// The FPGA comparison point of §V-E.
pub const FPGA_TOPS: f64 = 0.34;
/// The FPGA comparison point's efficiency.
pub const FPGA_GOPJ: f64 = 12.5;

/// Peak-throughput estimate for CORUSCANT convolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakThroughput {
    /// Tera-operations per second (one MAC = two ops).
    pub tops: f64,
    /// Giga-operations per joule.
    pub gopj: f64,
}

/// Computes the peak convolution throughput: every PIM DBC works on
/// `width / 16` 8-bit lanes simultaneously; a lane completes one multiply
/// (with its embedded reductions) per `mult.cycles` device cycles.
pub fn peak(config: &MemoryConfig) -> PeakThroughput {
    let mc = MeasuredCosts::measure(config.trd).expect("measurable TRD");
    let units = config.total_pim_dbcs() as f64;
    let lanes = (config.nanowires_per_dbc / 16) as f64;
    let macs_per_cycle = units * lanes / mc.mult.cycles as f64;
    let cycles_per_second = 1e9 / coruscant_racetrack::params::DEVICE_CYCLE_NS;
    let ops_per_second = 2.0 * macs_per_cycle * cycles_per_second;
    // Energy: the measured per-16-wire-unit multiply energy covers one
    // lane's MAC.
    let joules_per_mac = mc.mult.energy_pj * 1e-12;
    PeakThroughput {
        tops: ops_per_second / 1e12,
        gopj: 2.0 / joules_per_mac / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_tens_of_tops() {
        // Paper: 26 TOPS. Our measured multiply is ~1.5x the paper's 64
        // cycles, so the peak lands proportionally lower but in the same
        // decade, and far above the FPGA point.
        let p = peak(&MemoryConfig::paper());
        assert!(p.tops > 5.0 && p.tops < 60.0, "tops {}", p.tops);
        assert!(p.tops > 10.0 * FPGA_TOPS);
    }

    #[test]
    fn efficiency_beats_fpga() {
        let p = peak(&MemoryConfig::paper());
        assert!(p.gopj > FPGA_GOPJ, "gopj {}", p.gopj);
    }

    #[test]
    fn larger_trd_gives_higher_peak() {
        let p3 = peak(&MemoryConfig::paper().with_trd(3));
        let p7 = peak(&MemoryConfig::paper().with_trd(7));
        assert!(p7.tops > p3.tops);
    }
}
