//! A minimal integer tensor for functional CNN verification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A channel-major 3-D integer tensor (`channels × height × width`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor3 {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<i64>,
}

impl Tensor3 {
    /// Creates a zero tensor.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Tensor3 {
        Tensor3 {
            channels,
            height,
            width,
            data: vec![0; channels * height * width],
        }
    }

    /// Creates a tensor from raw channel-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * height * width`.
    pub fn from_data(channels: usize, height: usize, width: usize, data: Vec<i64>) -> Tensor3 {
        assert_eq!(data.len(), channels * height * width, "shape mismatch");
        Tensor3 {
            channels,
            height,
            width,
            data,
        }
    }

    /// Shape as `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn idx(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (c * self.height + y) * self.width + x
    }

    /// Element accessor.
    pub fn get(&self, c: usize, y: usize, x: usize) -> i64 {
        self.data[self.idx(c, y, x)]
    }

    /// Element mutator.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: i64) {
        let i = self.idx(c, y, x);
        self.data[i] = v;
    }

    /// Flat view of the data (channel-major).
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }

    /// Applies a function elementwise.
    #[must_use]
    pub fn map(&self, f: impl Fn(i64) -> i64) -> Tensor3 {
        Tensor3 {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Fills the tensor with a deterministic pseudo-random pattern in
    /// `[-bound, bound]` (a test helper).
    pub fn fill_pattern(&mut self, seed: u64, bound: i64) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for v in &mut self.data {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % (2 * bound as u64 + 1)) as i64 - bound;
        }
    }
}

impl fmt::Display for Tensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor3[{}x{}x{}]",
            self.channels, self.height, self.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_access() {
        let mut t = Tensor3::zeros(2, 3, 4);
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.len(), 24);
        t.set(1, 2, 3, 42);
        assert_eq!(t.get(1, 2, 3), 42);
        assert_eq!(t.get(0, 0, 0), 0);
    }

    #[test]
    fn from_data_roundtrip() {
        let data: Vec<i64> = (0..12).collect();
        let t = Tensor3::from_data(2, 2, 3, data.clone());
        assert_eq!(t.as_slice(), &data[..]);
        assert_eq!(t.get(1, 1, 2), 11);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        Tensor3::from_data(2, 2, 2, vec![0; 7]);
    }

    #[test]
    fn map_is_elementwise() {
        let t = Tensor3::from_data(1, 1, 3, vec![-1, 0, 5]);
        let r = t.map(|v| v.max(0));
        assert_eq!(r.as_slice(), &[0, 0, 5]);
    }

    #[test]
    fn fill_pattern_is_deterministic_and_bounded() {
        let mut a = Tensor3::zeros(2, 4, 4);
        let mut b = Tensor3::zeros(2, 4, 4);
        a.fill_pattern(7, 10);
        b.fill_pattern(7, 10);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (-10..=10).contains(&v)));
        assert!(a.as_slice().iter().any(|&v| v != 0));
    }
}
