//! Model-level CNN inference: one place that fixes the layer-by-layer
//! numeric contract (weight synthesis, activation quantization, host
//! post-ops) so every execution path — the standalone
//! [`PimCnn`](crate::pim_exec::PimCnn) engine, the host reference
//! oracle, and the serving pipeline's per-layer job programs — computes
//! the *same function* and can be compared bit-for-bit.
//!
//! The contract, per [`Precision`]:
//!
//! * **Full** — unsigned 8-bit activations; convolution and FC run true
//!   products against signed integer weights, ReLU on the device, then
//!   conv outputs requantize with shift [`FULL_CONV_SHIFT`].
//! * **Twn** — ternary weights in {−1, 0, 1} (DrAcc-style sign-selected
//!   accumulation); conv outputs requantize with shift 0 (clamp only).
//! * **Bwn** — binarized weights; conv activations binarize to sign
//!   bits, the device computes XNOR-popcounts, and the host maps count
//!   `m` over `n` positions to `relu(2m − n)` ([`bwn_act`]). FC layers
//!   run the ±1 sign-selected path on the 8-bit activations.
//!
//! Geometry note: the paper-scale LeNet-5/AlexNet graphs are far too
//! large for the functional simulator's instruction-level execution, so
//! exactness testing runs on *reduced-geometry proxies*
//! ([`proxy_lenet5`], [`proxy_alexnet`]) that preserve each network's
//! layer structure (conv/pool/FC sequence, all three precisions) at
//! tractable channel counts. Paper-scale throughput comes from the
//! analytic model in [`crate::mapping`].

use coruscant_core::Result;
use coruscant_mem::MemoryConfig;

use crate::layers::Layer;
use crate::models::Network;
use crate::pim_exec::{
    reference_conv_bwn, reference_conv_full, reference_conv_ternary, reference_fc_full,
    reference_fc_ternary, PimCnn,
};
use crate::quant::Precision;
use crate::tensor::Tensor3;

/// Requantization shift applied after full-precision conv layers.
pub const FULL_CONV_SHIFT: u32 = 2;

/// One layer's weights (pool layers carry none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerWeights {
    /// Convolution filters, one tensor (`ic × k × k`) per output channel.
    Conv(Vec<Tensor3>),
    /// Fully-connected weight rows, one per output.
    Fc(Vec<Vec<i8>>),
    /// Pooling (no weights).
    None,
}

/// A network's weights under one precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelWeights {
    /// The precision the weights were synthesized for.
    pub precision: Precision,
    /// Per-layer weights, aligned with [`Network::layers`].
    pub layers: Vec<LayerWeights>,
}

/// Deterministic weight value in `-bound..=bound` (tiny LCG, the same
/// shape as [`Tensor3::fill_pattern`]).
fn pattern(seed: u64, i: u64, bound: i64) -> i64 {
    let mut state = (seed.wrapping_add(i.wrapping_mul(0xA076_1D64_78BD_642F)))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        | 1;
    state ^= state >> 29;
    state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state ^= state >> 32;
    let span = (2 * bound + 1) as u64;
    (state % span) as i64 - bound
}

/// Synthesizes deterministic weights for `net` under `precision`.
/// The same `(net, precision, seed)` triple always produces identical
/// weights, so distributed executors agree without shipping tensors.
pub fn synth_weights(net: &Network, precision: Precision, seed: u64) -> ModelWeights {
    let mut layers = Vec::with_capacity(net.layers.len());
    for (li, layer) in net.layers.iter().enumerate() {
        let lseed = seed.wrapping_mul(1_000_003).wrapping_add(li as u64 * 7919);
        let w = match layer {
            Layer::Conv {
                kernel,
                in_channels,
                out_channels,
                ..
            } => {
                let filters: Vec<Tensor3> = (0..*out_channels)
                    .map(|f| {
                        let mut t = Tensor3::zeros(*in_channels, *kernel, *kernel);
                        let n = t.len();
                        let vals: Vec<i64> = (0..n)
                            .map(|i| {
                                let raw = pattern(lseed, (f * n + i) as u64, 2);
                                // Skew positive ({-2} → {1}) so ReLU chains keep
                                // signal through deep proxies.
                                let skew = if raw == -2 { 1 } else { raw };
                                match precision {
                                    Precision::Full => skew,         // {-1..=2}
                                    Precision::Twn => skew.signum(), // {-1, 0, 1}
                                    // 4:1 one-bit skew keeps `2m − n` positive
                                    // often enough for signal to reach the FCs.
                                    Precision::Bwn => i64::from(raw >= -1),
                                }
                            })
                            .collect();
                        for (i, v) in vals.into_iter().enumerate() {
                            let (ic, k, _) = t.shape();
                            let _ = ic;
                            let c = i / (k * k);
                            let y = (i / k) % k;
                            let x = i % k;
                            t.set(c, y, x, v);
                        }
                        t
                    })
                    .collect();
                LayerWeights::Conv(filters)
            }
            Layer::Fc {
                inputs, outputs, ..
            } => {
                let rows: Vec<Vec<i8>> = (0..*outputs)
                    .map(|o| {
                        (0..*inputs)
                            .map(|i| {
                                let raw = pattern(lseed, (o * inputs + i) as u64, 2);
                                let skew = if raw == -2 { 1 } else { raw };
                                match precision {
                                    Precision::Full => skew as i8, // {-1..=2}
                                    Precision::Twn => skew.signum() as i8,
                                    // 4:1 positive skew keeps ±1 dot products
                                    // above zero on small BWN activations.
                                    Precision::Bwn => {
                                        if raw >= -1 {
                                            1
                                        } else {
                                            -1
                                        }
                                    }
                                }
                            })
                            .collect()
                    })
                    .collect();
                LayerWeights::Fc(rows)
            }
            Layer::MaxPool { .. } => LayerWeights::None,
        };
        layers.push(w);
    }
    ModelWeights { precision, layers }
}

/// Deterministic unsigned 8-bit test image for `net`'s input shape.
pub fn synth_image(net: &Network, seed: u64) -> Tensor3 {
    let (c, h, w) = input_shape(net);
    let n = Tensor3::zeros(c, h, w).len();
    let vals: Vec<i64> = (0..n)
        .map(|i| pattern(seed ^ 0xDEAD_BEEF, i as u64, 127).abs().min(255))
        .collect();
    Tensor3::from_data(c, h, w, vals)
}

/// The input tensor shape `net` expects, derived from its first layer.
///
/// # Panics
///
/// Panics if the network starts with an FC layer (flat networks supply
/// their own input).
pub fn input_shape(net: &Network) -> (usize, usize, usize) {
    match net.layers.first().expect("non-empty network") {
        Layer::Conv {
            kernel,
            in_channels,
            out_h,
            out_w,
            ..
        } => (*in_channels, out_h + kernel - 1, out_w + kernel - 1),
        Layer::MaxPool {
            window,
            channels,
            out_h,
            out_w,
            ..
        } => (*channels, out_h * window, out_w * window),
        Layer::Fc { .. } => panic!("networks starting with FC supply their own input"),
    }
}

/// Host post-op for BWN conv outputs: XNOR match count `m` over `n`
/// window positions → `relu(2m − n)`, the signed ±1 dot product
/// rectified (paper §IV-A).
pub fn bwn_act(count: u64, n_positions: usize) -> u64 {
    (2 * count as i64 - n_positions as i64).max(0) as u64
}

/// Requantization to unsigned 8 bits: `min(v >> shift, 255)` — the
/// row-buffer data-formatting step between layers.
pub fn requant(v: u64, shift: u32) -> u64 {
    (v >> shift).min(255)
}

/// Activation binarization for BWN conv inputs: the sign bit of an
/// unsigned activation (`1` iff non-zero).
pub fn binarize_act(v: u64) -> u64 {
    u64::from(v > 0)
}

/// The requantization shift a conv layer applies under `precision`.
pub fn conv_shift(precision: Precision) -> u32 {
    match precision {
        Precision::Full => FULL_CONV_SHIFT,
        Precision::Twn | Precision::Bwn => 0,
    }
}

/// Reduced-geometry LeNet-5 proxy: same conv → pool → conv → pool →
/// FC×2 stack at simulator-tractable dimensions.
pub fn proxy_lenet5() -> Network {
    Network {
        name: "lenet5-proxy".into(),
        layers: vec![
            Layer::Conv {
                name: "c1".into(),
                kernel: 3,
                in_channels: 1,
                out_channels: 2,
                out_h: 10,
                out_w: 10,
            },
            Layer::MaxPool {
                name: "s2".into(),
                window: 2,
                channels: 2,
                out_h: 5,
                out_w: 5,
            },
            Layer::Fc {
                name: "f3".into(),
                inputs: 50,
                outputs: 8,
            },
            Layer::Fc {
                name: "f4".into(),
                inputs: 8,
                outputs: 4,
            },
        ],
    }
}

/// Reduced-geometry AlexNet proxy: five convs, three pools, three FCs —
/// the published layer stack at simulator-tractable dimensions.
pub fn proxy_alexnet() -> Network {
    Network {
        name: "alexnet-proxy".into(),
        layers: vec![
            Layer::Conv {
                name: "conv1".into(),
                kernel: 3,
                in_channels: 1,
                out_channels: 2,
                out_h: 14,
                out_w: 14,
            },
            Layer::MaxPool {
                name: "pool1".into(),
                window: 2,
                channels: 2,
                out_h: 7,
                out_w: 7,
            },
            Layer::Conv {
                name: "conv2".into(),
                kernel: 2,
                in_channels: 2,
                out_channels: 3,
                out_h: 6,
                out_w: 6,
            },
            Layer::MaxPool {
                name: "pool2".into(),
                window: 2,
                channels: 3,
                out_h: 3,
                out_w: 3,
            },
            Layer::Conv {
                name: "conv3".into(),
                kernel: 2,
                in_channels: 3,
                out_channels: 4,
                out_h: 2,
                out_w: 2,
            },
            Layer::Conv {
                name: "conv4".into(),
                kernel: 1,
                in_channels: 4,
                out_channels: 4,
                out_h: 2,
                out_w: 2,
            },
            Layer::Conv {
                name: "conv5".into(),
                kernel: 1,
                in_channels: 4,
                out_channels: 3,
                out_h: 2,
                out_w: 2,
            },
            Layer::MaxPool {
                name: "pool3".into(),
                window: 2,
                channels: 3,
                out_h: 1,
                out_w: 1,
            },
            Layer::Fc {
                name: "fc6".into(),
                inputs: 3,
                outputs: 6,
            },
            Layer::Fc {
                name: "fc7".into(),
                inputs: 6,
                outputs: 6,
            },
            Layer::Fc {
                name: "fc8".into(),
                inputs: 6,
                outputs: 4,
            },
        ],
    }
}

/// The reduced-geometry proxy for a paper network name, if one exists.
pub fn proxy_for(name: &str) -> Option<Network> {
    match name {
        "lenet5" | "lenet5-proxy" => Some(proxy_lenet5()),
        "alexnet" | "alexnet-proxy" => Some(proxy_alexnet()),
        _ => None,
    }
}

/// Runs `net` end to end on the PIM engine ([`PimCnn`]) and returns the
/// logits (final FC outputs, post-ReLU).
///
/// # Errors
///
/// Propagates PIM errors.
///
/// # Panics
///
/// Panics on weight/layer misalignment.
pub fn run_pim(
    config: &MemoryConfig,
    net: &Network,
    weights: &ModelWeights,
    image: &Tensor3,
) -> Result<Vec<u64>> {
    assert_eq!(weights.layers.len(), net.layers.len(), "weights per layer");
    let mut pim = PimCnn::new(config);
    let precision = weights.precision;
    let mut act = image.clone();
    let mut flat: Option<Vec<u64>> = None;
    let last = net.layers.len() - 1;
    for (li, (layer, w)) in net.layers.iter().zip(&weights.layers).enumerate() {
        match (layer, w) {
            (Layer::Conv { kernel, .. }, LayerWeights::Conv(filters)) => {
                let out = match precision {
                    Precision::Full => pim.conv2d_full(&act, filters, *kernel)?,
                    Precision::Twn => pim.conv2d_ternary(&act, filters, *kernel)?,
                    Precision::Bwn => {
                        let bits = act.map(|v| binarize_act(v as u64) as i64);
                        let dots = pim.conv2d_bwn(&bits, filters, *kernel)?;
                        dots.map(|v| v.max(0))
                    }
                };
                act = PimCnn::requantize(&out, conv_shift(precision));
            }
            (Layer::MaxPool { window, .. }, LayerWeights::None) => {
                act = pim.maxpool(&act, *window)?;
            }
            (Layer::Fc { .. }, LayerWeights::Fc(rows)) => {
                let input = flat
                    .take()
                    .unwrap_or_else(|| act.as_slice().iter().map(|&v| v as u64).collect());
                let mut out = match precision {
                    Precision::Full => pim.fc_full(&input, rows)?,
                    Precision::Twn | Precision::Bwn => pim.fc_ternary(&input, rows)?,
                };
                if li < last {
                    // Hidden FC activations requantize to 8 bits like conv
                    // outputs; only the final layer keeps raw logits.
                    out = out
                        .into_iter()
                        .map(|v| requant(v, conv_shift(precision)))
                        .collect();
                }
                flat = Some(out);
            }
            (l, _) => panic!("weights misaligned at layer {}", l.name()),
        }
    }
    Ok(flat.unwrap_or_else(|| act.as_slice().iter().map(|&v| v as u64).collect()))
}

/// Runs `net` end to end on the host reference oracle — the same
/// numeric contract as [`run_pim`], pure `i64` arithmetic.
///
/// # Panics
///
/// Panics on weight/layer misalignment.
pub fn run_reference(net: &Network, weights: &ModelWeights, image: &Tensor3) -> Vec<u64> {
    assert_eq!(weights.layers.len(), net.layers.len(), "weights per layer");
    let precision = weights.precision;
    let mut act = image.clone();
    let mut flat: Option<Vec<u64>> = None;
    let last = net.layers.len() - 1;
    for (li, (layer, w)) in net.layers.iter().zip(&weights.layers).enumerate() {
        match (layer, w) {
            (Layer::Conv { kernel, .. }, LayerWeights::Conv(filters)) => {
                let out = match precision {
                    Precision::Full => reference_conv_full(&act, filters, *kernel),
                    Precision::Twn => reference_conv_ternary(&act, filters, *kernel),
                    Precision::Bwn => {
                        let bits = act.map(|v| binarize_act(v as u64) as i64);
                        reference_conv_bwn(&bits, filters, *kernel).map(|v| v.max(0))
                    }
                };
                act = PimCnn::requantize(&out, conv_shift(precision));
            }
            (Layer::MaxPool { window, .. }, LayerWeights::None) => {
                act = crate::layers::maxpool(&act, *window);
            }
            (Layer::Fc { .. }, LayerWeights::Fc(rows)) => {
                let input = flat
                    .take()
                    .unwrap_or_else(|| act.as_slice().iter().map(|&v| v as u64).collect());
                let mut out = match precision {
                    Precision::Full => reference_fc_full(&input, rows),
                    Precision::Twn | Precision::Bwn => reference_fc_ternary(&input, rows),
                };
                if li < last {
                    out = out
                        .into_iter()
                        .map(|v| requant(v, conv_shift(precision)))
                        .collect();
                }
                flat = Some(out);
            }
            (l, _) => panic!("weights misaligned at layer {}", l.name()),
        }
    }
    flat.unwrap_or_else(|| act.as_slice().iter().map(|&v| v as u64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_synthesis_is_deterministic_and_precision_shaped() {
        let net = proxy_lenet5();
        for precision in [Precision::Full, Precision::Twn, Precision::Bwn] {
            let a = synth_weights(&net, precision, 42);
            let b = synth_weights(&net, precision, 42);
            assert_eq!(a, b);
            for lw in &a.layers {
                match lw {
                    LayerWeights::Conv(filters) => {
                        for f in filters {
                            for &v in f.as_slice() {
                                match precision {
                                    Precision::Full => assert!((-2..=2).contains(&v)),
                                    Precision::Twn => assert!((-1..=1).contains(&v)),
                                    Precision::Bwn => assert!(v == 0 || v == 1),
                                }
                            }
                        }
                    }
                    LayerWeights::Fc(rows) => {
                        for row in rows {
                            for &v in row {
                                match precision {
                                    Precision::Full => assert!((-2..=2).contains(&v)),
                                    Precision::Twn => assert!((-1..=1).contains(&v)),
                                    Precision::Bwn => assert!(v == -1 || v == 1),
                                }
                            }
                        }
                    }
                    LayerWeights::None => {}
                }
            }
        }
    }

    #[test]
    fn proxies_have_consistent_shapes() {
        for net in [proxy_lenet5(), proxy_alexnet()] {
            let image = synth_image(&net, 1);
            let w = synth_weights(&net, Precision::Twn, 1);
            // The reference chain panics on any shape inconsistency.
            let logits = run_reference(&net, &w, &image);
            assert!(!logits.is_empty());
        }
    }

    #[test]
    fn pim_inference_matches_reference_across_models_and_precisions() {
        let config = MemoryConfig::tiny();
        for net in [proxy_lenet5(), proxy_alexnet()] {
            let image = synth_image(&net, 7);
            for precision in [Precision::Full, Precision::Bwn, Precision::Twn] {
                let w = synth_weights(&net, precision, 3);
                let pim = run_pim(&config, &net, &w, &image).unwrap();
                let oracle = run_reference(&net, &w, &image);
                assert_eq!(pim, oracle, "{} @ {:?}", net.name, precision);
                // A degenerate all-zero output would make the equality
                // vacuous — the synthesis skew exists to prevent that.
                assert!(
                    pim.iter().any(|&v| v > 0),
                    "{} @ {:?} produced all-zero logits",
                    net.name,
                    precision
                );
            }
        }
    }
}
