//! A command-level memory controller with functional storage.
//!
//! The controller keeps the DRAM I/O interface (paper §II-B): requests are
//! decoded to bank/subarray/tile/DBC coordinates, serviced with DDR-style
//! timing ([`DeviceTiming`]), and queued per bank. For DWM the precharge
//! slot is replaced by the shift distance between the currently aligned
//! row and the target row of the same DBC.
//!
//! PIM commands (issued by `cpim` instructions, paper §III-E) occupy the
//! target bank for the internal operation latency; the *high-throughput*
//! dispatch mode sends successive PIM commands to different banks in a
//! circular fashion so the per-bank latencies overlap (paper §V-C).
//!
//! Storage is *sparse*: DBCs are materialized lazily on first touch, so a
//! 1 GB memory can be simulated functionally without allocating 1 GB.

use crate::address::{DbcLocation, RowAddress};
use crate::config::MemoryConfig;
use crate::dbc::Dbc;
use crate::fault::{FaultPlan, ScrubOutcome};
use crate::row::Row;
use crate::rowbuffer::RowBuffer;
use crate::timing::DeviceTiming;
use crate::Result;
use coruscant_racetrack::{Cost, CostMeter};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A request presented to the memory controller.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Read one row (or burst within it) at a byte address.
    Read(u64),
    /// Write one row (or burst within it) at a byte address.
    Write(u64),
    /// A PIM operation occupying `location`'s bank for `device_cycles`
    /// device cycles (the internal CORUSCANT operation latency).
    Pim {
        /// Target DBC.
        location: DbcLocation,
        /// Internal operation latency in device cycles.
        device_cycles: u64,
        /// Internal operation energy in picojoules.
        energy_pj: f64,
    },
}

/// Aggregate statistics of a controller run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Requests serviced.
    pub requests: u64,
    /// Open-row (alignment) hits.
    pub row_hits: u64,
    /// Open-row misses.
    pub row_misses: u64,
    /// Total shift cycles spent realigning DWM DBCs.
    pub shift_cycles: u64,
    /// Total queuing delay (memory cycles spent waiting for a busy bank).
    pub queue_cycles: u64,
    /// Total bus transfer cycles.
    pub bus_cycles: u64,
    /// Total energy charged (pJ).
    pub energy_pj: f64,
}

/// Per-bank load distribution of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BankStats {
    /// Requests serviced per bank.
    pub requests: Vec<u64>,
    /// Busy (service) cycles accumulated per bank.
    pub busy_cycles: Vec<u64>,
}

impl BankStats {
    /// The bank with the most requests and its count.
    pub fn hottest(&self) -> Option<(usize, u64)> {
        self.requests
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, n)| n)
    }

    /// Load-imbalance ratio: hottest bank's requests over the mean.
    /// 1.0 means perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.requests.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.requests.len() as f64;
        self.hottest().map_or(1.0, |(_, n)| n as f64 / mean)
    }
}

/// The memory controller plus functional backing store.
#[derive(Debug)]
pub struct MemoryController {
    config: MemoryConfig,
    timing: DeviceTiming,
    /// Completion time (memory cycles) after which each bank is free.
    bank_free: Vec<u64>,
    /// Shared command/data bus occupancy.
    bus_free: u64,
    /// Currently aligned row per DBC (models the shift head position).
    aligned: HashMap<DbcLocation, usize>,
    /// Lazily materialized DBCs.
    store: HashMap<DbcLocation, Dbc>,
    /// Per-(bank, subarray) row buffers, lazily materialized.
    buffers: HashMap<(usize, usize), RowBuffer>,
    /// Round-robin cursor for high-throughput PIM dispatch.
    pim_cursor: usize,
    /// Fault model applied to DBCs as they materialize.
    faults: Option<FaultPlan>,
    now: u64,
    stats: ControllerStats,
    bank_stats: BankStats,
}

/// Burst length in bus cycles for one 64-byte transfer on a 64-bit DDR bus.
const BURST_CYCLES: u64 = 4;

impl MemoryController {
    /// Creates a controller for a DWM memory with the given configuration.
    pub fn new(config: MemoryConfig) -> MemoryController {
        MemoryController::with_timing(config, DeviceTiming::DWM_PAPER)
    }

    /// Creates a controller with an explicit timing profile (used for the
    /// DRAM comparison points).
    pub fn with_timing(config: MemoryConfig, timing: DeviceTiming) -> MemoryController {
        let banks = config.banks;
        MemoryController {
            config,
            timing,
            bank_free: vec![0; banks],
            bus_free: 0,
            aligned: HashMap::new(),
            store: HashMap::new(),
            buffers: HashMap::new(),
            pim_cursor: 0,
            faults: None,
            now: 0,
            stats: ControllerStats::default(),
            bank_stats: BankStats {
                requests: vec![0; banks],
                busy_cycles: vec![0; banks],
            },
        }
    }

    /// Creates a controller whose DBCs run under the given fault plan:
    /// every DBC of a bank with an active [`FaultPlan`] configuration
    /// materializes with seeded per-wire injectors, and (when shift
    /// faults are active) with position codes installed for scrubbing.
    pub fn with_faults(config: MemoryConfig, plan: FaultPlan) -> MemoryController {
        let mut ctrl = MemoryController::new(config);
        ctrl.faults = Some(plan);
        ctrl
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Total faults injected so far across all materialized DBCs.
    pub fn injected_fault_count(&self) -> u64 {
        self.store.values().map(Dbc::injected_fault_count).sum()
    }

    /// Runs a position-code scrub pass over every materialized DBC of
    /// `bank`, charging the maintenance cost to `meter`, and forgets the
    /// controller's aligned-row hints for the scrubbed DBCs (they end at
    /// canonical alignment).
    ///
    /// # Errors
    ///
    /// Propagates device errors from the checks.
    pub fn scrub_bank(&mut self, bank: usize, meter: &mut CostMeter) -> Result<ScrubOutcome> {
        let mut total = ScrubOutcome::default();
        for (loc, dbc) in self.store.iter_mut() {
            if loc.bank != bank {
                continue;
            }
            total.merge(dbc.scrub(meter)?);
            self.aligned.remove(loc);
        }
        Ok(total)
    }

    /// The configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// The timing profile.
    pub fn timing(&self) -> &DeviceTiming {
        &self.timing
    }

    /// Current simulated time in memory cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the wall clock (e.g. to model CPU compute between bursts of
    /// requests).
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Per-bank load distribution so far.
    pub fn bank_stats(&self) -> &BankStats {
        &self.bank_stats
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.bank_free.len()
    }

    /// The memory cycle at which `bank` finishes its outstanding work
    /// (`<= now` means idle). Schedulers use this to pick the least-loaded
    /// bank and to predict queueing before submitting.
    pub fn bank_free_at(&self, bank: usize) -> u64 {
        self.bank_free[bank]
    }

    /// Per-bank completion times of outstanding work, indexed by bank.
    pub fn bank_occupancy(&self) -> &[u64] {
        &self.bank_free
    }

    /// Whether `bank` is still servicing work at the current time.
    pub fn bank_busy(&self, bank: usize) -> bool {
        self.bank_free[bank] > self.now
    }

    /// Number of banks with outstanding work at the current time.
    pub fn busy_bank_count(&self) -> usize {
        let now = self.now;
        self.bank_free.iter().filter(|&&t| t > now).count()
    }

    /// Converts device cycles (1 ns) to memory cycles (1.25 ns), rounding
    /// up.
    pub fn device_to_memory_cycles(&self, device_cycles: u64) -> u64 {
        let ratio = coruscant_racetrack::params::DEVICE_CYCLE_NS / self.config.memory_cycle_ns;
        (device_cycles as f64 * ratio).ceil() as u64
    }

    /// Mutable access to the DBC at `location`, materializing it on first
    /// touch (PIM geometry per the configuration's convention).
    ///
    /// # Errors
    ///
    /// Returns [`crate::MemError::BadLocation`] for out-of-range coordinates.
    pub fn dbc_mut(&mut self, location: DbcLocation) -> Result<&mut Dbc> {
        location.validate(&self.config)?;
        let config = &self.config;
        let faults = &self.faults;
        Ok(self.store.entry(location).or_insert_with(|| {
            let dbc = if location.is_pim(config) {
                Dbc::pim_enabled(config)
            } else {
                Dbc::storage(config)
            };
            match faults {
                Some(plan) => {
                    let fc = plan.config_for_bank(location.bank);
                    if fc.is_active() {
                        let mut dbc = dbc.with_faults(fc, plan.dbc_seed(location, config));
                        if fc.p_over_shift > 0.0 || fc.p_under_shift > 0.0 {
                            // Shift faults drift alignment: guard with
                            // position codes so scrub passes can check and
                            // repair. Best-effort — storage wires without
                            // overhead room simply go unguarded.
                            let _ = dbc.install_position_codes();
                        }
                        dbc
                    } else {
                        dbc
                    }
                }
                None => dbc,
            }
        }))
    }

    /// Immutable view of a DBC if it has been materialized.
    pub fn dbc(&self, location: DbcLocation) -> Option<&Dbc> {
        self.store.get(&location)
    }

    /// The row buffer of `location`'s subarray, materializing it on first
    /// touch.
    pub fn row_buffer_mut(&mut self, location: DbcLocation) -> &mut RowBuffer {
        let width = self.config.nanowires_per_dbc;
        self.buffers
            .entry((location.bank, location.subarray))
            .or_insert_with(|| RowBuffer::new(width))
    }

    fn service_row_access(&mut self, addr: RowAddress, is_write: bool) -> u64 {
        let bank = addr.location.bank;
        let start = self.now.max(self.bank_free[bank]);
        self.stats.queue_cycles += start - self.now;

        // Shift distance from current alignment (DWM); DRAM ignores it.
        let prev = self.aligned.get(&addr.location).copied();
        let (hit, shift) = match prev {
            Some(p) if p == addr.row => (true, 0),
            Some(p) => (false, (p as i64 - addr.row as i64).unsigned_abs()),
            None => (false, (self.config.rows_per_dbc / 2) as u64),
        };
        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
            self.stats.shift_cycles += shift;
        }
        self.aligned.insert(addr.location, addr.row);

        let service = if hit {
            self.timing.row_hit()
        } else if is_write {
            self.timing.write_miss(shift)
        } else {
            self.timing.row_miss(shift)
        };
        // The shared bus is only occupied while the burst transfers, so
        // accesses to different banks pipeline their array service.
        let data_ready = start + service;
        let burst_start = data_ready.max(self.bus_free);
        let done = burst_start + BURST_CYCLES;
        self.bank_free[bank] = done;
        self.bus_free = done;
        self.stats.bus_cycles += BURST_CYCLES;
        self.stats.requests += 1;
        self.bank_stats.requests[bank] += 1;
        self.bank_stats.busy_cycles[bank] += done - start;
        done
    }

    /// Submits a request; returns its completion time in memory cycles.
    /// Requests are processed in submission order with per-bank queuing.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MemError::BadLocation`] for an out-of-range address.
    pub fn submit(&mut self, request: Request) -> Result<u64> {
        match request {
            Request::Read(a) => {
                let (addr, _) = RowAddress::decode(a, &self.config)?;
                Ok(self.service_row_access(addr, false))
            }
            Request::Write(a) => {
                let (addr, _) = RowAddress::decode(a, &self.config)?;
                Ok(self.service_row_access(addr, true))
            }
            Request::Pim {
                location,
                device_cycles,
                energy_pj,
            } => {
                location.validate(&self.config)?;
                let bank = location.bank;
                // One command-bus cycle to issue, then the bank is busy for
                // the internal operation.
                let issue = self.now.max(self.bus_free);
                let start = issue.max(self.bank_free[bank]);
                self.stats.queue_cycles += start - self.now;
                self.bus_free = issue + 1;
                let service = self.device_to_memory_cycles(device_cycles);
                let done = start + service;
                self.bank_free[bank] = done;
                self.stats.requests += 1;
                self.stats.energy_pj += energy_pj;
                self.bank_stats.requests[bank] += 1;
                self.bank_stats.busy_cycles[bank] += service;
                Ok(done)
            }
        }
    }

    /// Dispatches a PIM operation to the next PIM-enabled DBC in the
    /// round-robin *high-throughput mode* (paper §V-C: instructions are
    /// sent to the different banks consecutively, in a circular fashion).
    /// Returns the chosen location and the completion time.
    pub fn dispatch_pim_high_throughput(
        &mut self,
        device_cycles: u64,
        energy_pj: f64,
    ) -> Result<(DbcLocation, u64)> {
        let units = self.pim_unit_count();
        let idx = self.pim_cursor % units;
        self.pim_cursor = (self.pim_cursor + 1) % units;
        let location = self.pim_unit(idx);
        let done = self.submit(Request::Pim {
            location,
            device_cycles,
            energy_pj,
        })?;
        Ok((location, done))
    }

    /// Number of PIM-enabled DBCs addressable by the dispatcher.
    pub fn pim_unit_count(&self) -> usize {
        self.config.banks
            * self.config.subarrays_per_bank
            * self.config.tiles_per_subarray
            * self.config.pim_dbcs_per_tile
    }

    /// The `idx`-th PIM-enabled DBC, bank-major so consecutive indices hit
    /// different banks (maximizing overlap).
    pub fn pim_unit(&self, idx: usize) -> DbcLocation {
        let banks = self.config.banks;
        let bank = idx % banks;
        let rest = idx / banks;
        let subarray = rest % self.config.subarrays_per_bank;
        let rest = rest / self.config.subarrays_per_bank;
        let tile = rest % self.config.tiles_per_subarray;
        let pim_slot = (rest / self.config.tiles_per_subarray) % self.config.pim_dbcs_per_tile;
        DbcLocation::new(bank, subarray, tile, pim_slot)
    }

    /// Runs the clock forward to the completion of all outstanding work.
    pub fn drain(&mut self) -> u64 {
        let t = self
            .bank_free
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.bus_free)
            .max(self.now);
        self.now = t;
        t
    }

    /// Functional read of a whole row, charging device-level cost to
    /// `meter` (used by integration tests and the PIM data paths).
    ///
    /// # Errors
    ///
    /// Propagates location/row validation and device errors.
    pub fn load_row(&mut self, addr: RowAddress, meter: &mut CostMeter) -> Result<Row> {
        let dbc = self.dbc_mut(addr.location)?;
        let row = dbc.read_row(addr.row, meter)?;
        self.aligned.insert(addr.location, addr.row);
        Ok(row)
    }

    /// Functional write of a whole row, charging device-level cost.
    ///
    /// # Errors
    ///
    /// Propagates location/row validation and device errors.
    pub fn store_row(&mut self, addr: RowAddress, data: &Row, meter: &mut CostMeter) -> Result<()> {
        let dbc = self.dbc_mut(addr.location)?;
        dbc.write_row(addr.row, data, meter)?;
        self.aligned.insert(addr.location, addr.row);
        Ok(())
    }

    /// Total energy charged so far plus the device-level energy of `extra`.
    pub fn charge_energy(&mut self, cost: Cost) {
        self.stats.energy_pj += cost.energy_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> MemoryController {
        MemoryController::new(MemoryConfig::tiny())
    }

    #[test]
    fn sequential_reads_interleave_banks_and_pipeline() {
        let mut c = ctrl();
        let row_bytes = (c.config().nanowires_per_dbc / 8) as u64;
        let t0 = c.submit(Request::Read(0)).unwrap();
        let t1 = c.submit(Request::Read(row_bytes)).unwrap();
        // Different banks: the second read should not wait for the full
        // service of the first, only for the bus.
        assert!(t1 < t0 * 2, "t0={t0} t1={t1}");
        assert_eq!(c.stats().requests, 2);
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut c = ctrl();
        let banks = c.config().banks as u64;
        let row_bytes = (c.config().nanowires_per_dbc / 8) as u64;
        // Same bank, different rows: must serialize.
        let t0 = c.submit(Request::Read(0)).unwrap();
        let t1 = c.submit(Request::Read(row_bytes * banks * 37)).unwrap();
        assert!(t1 > t0);
        assert!(c.stats().queue_cycles > 0 || t1 >= t0);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut c = ctrl();
        let t0 = c.submit(Request::Read(0)).unwrap();
        c.advance(t0 - c.now());
        let before = c.now();
        let t1 = c.submit(Request::Read(0)).unwrap();
        let hit_latency = t1 - before;
        assert!(hit_latency <= DeviceTiming::DWM_PAPER.row_hit() + BURST_CYCLES);
        assert_eq!(c.stats().row_hits, 1);
        assert_eq!(c.stats().row_misses, 1);
    }

    #[test]
    fn dwm_shift_cost_depends_on_row_distance() {
        let mut c = ctrl();
        let cfg = c.config().clone();
        let loc = DbcLocation::new(0, 0, 0, 0);
        // Touch row 0, then row 1 (short shift), then row 31 (long shift).
        let a0 = RowAddress::new(loc, 0).encode(&cfg);
        let a1 = RowAddress::new(loc, 1).encode(&cfg);
        let a31 = RowAddress::new(loc, 31).encode(&cfg);
        let t0 = c.submit(Request::Read(a0)).unwrap();
        c.advance(t0 - c.now());
        let s = c.now();
        let t1 = c.submit(Request::Read(a1)).unwrap();
        let short = t1 - s;
        c.advance(t1 - c.now());
        let s = c.now();
        let t2 = c.submit(Request::Read(a31)).unwrap();
        let long = t2 - s;
        assert!(long > short, "long={long} short={short}");
        assert!(c.stats().shift_cycles > 0);
    }

    #[test]
    fn pim_requests_occupy_their_bank() {
        let mut c = ctrl();
        let loc = DbcLocation::new(0, 0, 0, 0);
        let t = c
            .submit(Request::Pim {
                location: loc,
                device_cycles: 26,
                energy_pj: 22.14,
            })
            .unwrap();
        assert_eq!(t, c.device_to_memory_cycles(26));
        assert!((c.stats().energy_pj - 22.14).abs() < 1e-9);
    }

    #[test]
    fn high_throughput_dispatch_overlaps_banks() {
        let mut c = ctrl();
        let banks = c.config().banks;
        let mut last = 0;
        for _ in 0..banks {
            let (_, done) = c.dispatch_pim_high_throughput(26, 22.14).unwrap();
            last = last.max(done);
        }
        // All banks work in parallel: total time is far below serial.
        let serial = c.device_to_memory_cycles(26) * banks as u64;
        assert!(last < serial, "last={last} serial={serial}");
    }

    #[test]
    fn pim_units_cover_distinct_banks_first() {
        let c = ctrl();
        let u0 = c.pim_unit(0);
        let u1 = c.pim_unit(1);
        assert_ne!(u0.bank, u1.bank);
        assert!(u0.is_pim(c.config()));
        assert!(u1.is_pim(c.config()));
    }

    #[test]
    fn functional_load_store_roundtrip() {
        let mut c = ctrl();
        let addr = RowAddress::new(DbcLocation::new(1, 1, 0, 2), 9);
        let row = Row::from_u64_words(64, &[0xFEED]);
        let mut m = CostMeter::new();
        c.store_row(addr, &row, &mut m).unwrap();
        assert_eq!(c.load_row(addr, &mut m).unwrap(), row);
        assert!(m.total().cycles > 0);
    }

    #[test]
    fn lazily_materializes_dbcs() {
        let mut c = ctrl();
        assert!(c.dbc(DbcLocation::new(0, 0, 0, 0)).is_none());
        c.dbc_mut(DbcLocation::new(0, 0, 0, 0)).unwrap();
        assert!(c.dbc(DbcLocation::new(0, 0, 0, 0)).is_some());
        // PIM convention: dbc 0 is PIM, dbc 1 is storage.
        assert!(c.dbc_mut(DbcLocation::new(0, 0, 0, 0)).unwrap().is_pim());
        assert!(!c.dbc_mut(DbcLocation::new(0, 0, 0, 1)).unwrap().is_pim());
    }

    #[test]
    fn bad_locations_rejected() {
        let mut c = ctrl();
        assert!(c.dbc_mut(DbcLocation::new(99, 0, 0, 0)).is_err());
        assert!(c
            .submit(Request::Pim {
                location: DbcLocation::new(99, 0, 0, 0),
                device_cycles: 1,
                energy_pj: 0.0,
            })
            .is_err());
        assert!(c.submit(Request::Read(u64::MAX)).is_err());
    }

    #[test]
    fn bank_stats_track_load_distribution() {
        let mut c = ctrl();
        let row_bytes = (c.config().nanowires_per_dbc / 8) as u64;
        // Sequential row addresses interleave over both banks evenly.
        for i in 0..40u64 {
            c.submit(Request::Read(i * row_bytes)).unwrap();
        }
        let bs = c.bank_stats().clone();
        assert_eq!(bs.requests.iter().sum::<u64>(), 40);
        assert_eq!(bs.requests.len(), c.config().banks);
        assert!(
            (bs.imbalance() - 1.0).abs() < 0.11,
            "imbalance {}",
            bs.imbalance()
        );
        assert!(bs.busy_cycles.iter().all(|&b| b > 0));

        // Hammering one bank skews the distribution.
        let mut c = ctrl();
        let banks = c.config().banks as u64;
        for i in 0..30u64 {
            c.submit(Request::Read(i * banks * row_bytes)).unwrap(); // bank 0
        }
        c.submit(Request::Read(row_bytes)).unwrap(); // bank 1, once
        let bs = c.bank_stats();
        assert_eq!(bs.hottest().unwrap().0, 0);
        assert!(bs.imbalance() > 1.5);
    }

    #[test]
    fn hottest_bank_edge_cases() {
        // No banks at all.
        let empty = BankStats::default();
        assert_eq!(empty.hottest(), None);
        assert_eq!(empty.imbalance(), 1.0);

        // A single bank is trivially the hottest.
        let single = BankStats {
            requests: vec![17],
            busy_cycles: vec![40],
        };
        assert_eq!(single.hottest(), Some((0, 17)));
        assert!((single.imbalance() - 1.0).abs() < 1e-12);

        // Ties resolve to one of the tied banks with the tied count.
        let tied = BankStats {
            requests: vec![5, 9, 9, 2],
            busy_cycles: vec![0; 4],
        };
        let (bank, n) = tied.hottest().unwrap();
        assert_eq!(n, 9);
        assert!(bank == 1 || bank == 2, "tied bank {bank}");

        // Banks present but no traffic: a zero count from one of the
        // (all-tied) banks; `max_by_key` resolves ties to the last.
        let idle = BankStats {
            requests: vec![0, 0],
            busy_cycles: vec![0, 0],
        };
        assert_eq!(idle.hottest(), Some((1, 0)));
        assert_eq!(idle.imbalance(), 1.0);
    }

    #[test]
    fn stats_roundtrip_through_serde() {
        let mut c = ctrl();
        let row_bytes = (c.config().nanowires_per_dbc / 8) as u64;
        for i in 0..10u64 {
            c.submit(Request::Read(i * row_bytes)).unwrap();
        }
        c.submit(Request::Pim {
            location: DbcLocation::new(0, 0, 0, 0),
            device_cycles: 26,
            energy_pj: 22.14,
        })
        .unwrap();

        let stats = *c.stats();
        let json = serde::json::to_string(&stats);
        let back: ControllerStats = serde::json::from_str(&json).unwrap();
        assert_eq!(back, stats);

        let bank_stats = c.bank_stats().clone();
        let json = serde::json::to_string(&bank_stats);
        let back: BankStats = serde::json::from_str(&json).unwrap();
        assert_eq!(back, bank_stats);
    }

    #[test]
    fn bank_occupancy_queries_track_outstanding_work() {
        let mut c = ctrl();
        assert_eq!(c.bank_count(), c.config().banks);
        assert_eq!(c.busy_bank_count(), 0);

        let loc = DbcLocation::new(0, 0, 0, 0);
        let done = c
            .submit(Request::Pim {
                location: loc,
                device_cycles: 26,
                energy_pj: 0.0,
            })
            .unwrap();
        assert!(c.bank_busy(0));
        assert!(!c.bank_busy(1));
        assert_eq!(c.bank_free_at(0), done);
        assert_eq!(c.bank_occupancy()[0], done);
        assert_eq!(c.busy_bank_count(), 1);

        c.advance(done);
        assert!(!c.bank_busy(0));
        assert_eq!(c.busy_bank_count(), 0);
    }

    #[test]
    fn fault_plan_attaches_injectors_per_bank() {
        use coruscant_racetrack::FaultConfig;
        let hot = FaultConfig::NONE.with_tr_fault_rate(1.0);
        let plan = FaultPlan::healthy(9).with_bank(1, hot).unwrap();
        let mut c = MemoryController::with_faults(MemoryConfig::tiny(), plan);
        assert!(c.fault_plan().is_some());

        // Bank 0 is healthy: TRs on its PIM DBC never fault.
        let mut m = CostMeter::new();
        let healthy = c.dbc_mut(DbcLocation::new(0, 0, 0, 0)).unwrap();
        let before = healthy.injected_fault_count();
        healthy.transverse_read_all(&mut m).unwrap();
        assert_eq!(healthy.injected_fault_count(), before);

        // Bank 1 faults on every TR.
        let faulty = c.dbc_mut(DbcLocation::new(1, 0, 0, 0)).unwrap();
        faulty.transverse_read_all(&mut m).unwrap();
        assert_eq!(faulty.injected_fault_count(), 64, "one fault per wire");
        assert_eq!(c.injected_fault_count(), 64);
    }

    #[test]
    fn fault_plan_is_deterministic_across_controllers() {
        use coruscant_racetrack::FaultConfig;
        let cfg = FaultConfig::NONE.with_tr_fault_rate(0.3);
        let read_all = |seed: u64| {
            let plan = FaultPlan::uniform(cfg, seed).unwrap();
            let mut c = MemoryController::with_faults(MemoryConfig::tiny(), plan);
            let mut m = CostMeter::new();
            let d = c.dbc_mut(DbcLocation::new(0, 0, 0, 0)).unwrap();
            let out: Vec<u8> = (0..20)
                .flat_map(|_| d.transverse_read_all(&mut m).unwrap())
                .map(|o| o.value)
                .collect();
            out
        };
        assert_eq!(read_all(5), read_all(5), "same seed, same stream");
        assert_ne!(read_all(5), read_all(6), "different seed, different stream");
    }

    #[test]
    fn shift_faults_get_position_codes_and_scrub_realigns() {
        use coruscant_racetrack::FaultConfig;
        let plan = FaultPlan::uniform(FaultConfig::NONE.with_shift_fault_rate(0.1), 11).unwrap();
        let mut c = MemoryController::with_faults(MemoryConfig::tiny(), plan);
        let loc = DbcLocation::new(0, 0, 0, 0);
        let mut m = CostMeter::new();
        c.store_row(
            RowAddress::new(loc, 9),
            &Row::from_u64_words(64, &[0xCAFE]),
            &mut m,
        )
        .unwrap();
        assert!(
            c.dbc(loc).unwrap().position_code().is_some(),
            "shift-fault DBCs carry position codes"
        );
        // Walk interior rows so alignment shifts draw plenty of fault
        // events without running any wire into its extremity.
        for r in [16, 9, 20, 12, 9] {
            c.load_row(RowAddress::new(loc, r), &mut m).unwrap();
        }
        let out = c.scrub_bank(0, &mut m).unwrap();
        assert_eq!(out.wires_checked, 64);
        assert_eq!(out.realigned, 64, "every wire was away from canonical");
        assert!(
            out.repaired > 0,
            "the scrub's own realigning shifts fault and get repaired: {out:?}"
        );
        assert_eq!(out.out_of_range, 0, "drift within code range (seeded)");
        // Every wire ends at its canonical alignment...
        let canonical = c.dbc(loc).unwrap().wire(0).spec().initial_offset as isize;
        for i in 0..64 {
            assert_eq!(c.dbc(loc).unwrap().wire(i).offset(), canonical, "wire {i}");
        }
        // ...so a second scrub (shift-free) finds nothing to do.
        let again = c.scrub_bank(0, &mut m).unwrap();
        assert_eq!(again.realigned, 0);
        assert_eq!(again.repaired, 0);
        assert_eq!(c.scrub_bank(1, &mut m).unwrap(), ScrubOutcome::default());
    }

    #[test]
    fn drain_reaches_quiescence() {
        let mut c = ctrl();
        let t = c.submit(Request::Read(0)).unwrap();
        let drained = c.drain();
        assert!(drained >= t);
        assert_eq!(c.now(), drained);
    }
}
