//! Domain-block clusters: the lock-step nanowire groups of a tile.

use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::ScrubOutcome;
use crate::row::Row;
use crate::Result;
use coruscant_racetrack::{
    Alignment, Cost, CostMeter, FaultConfig, FaultInjector, Nanowire, NanowireSpec, OpClass,
    PortId, PositionCode, TrOutcome,
};

/// A domain-block cluster: `X` parallel nanowires that shift together and
/// share sensing circuitry (paper Fig. 2d).
///
/// Bit `i` of every row is stored in nanowire `i`; the rows of the DBC are
/// the distinct domain positions. Reading or writing a row first aligns it
/// under an access port (a lock-step shift of all wires), then accesses all
/// wires in parallel: the latency is that of a single wire, while the
/// energy scales with the wire count.
///
/// PIM-enabled DBCs are built with the two-port CORUSCANT wire geometry
/// and additionally expose per-wire transverse reads/writes, which the
/// `coruscant-core` crate composes into logic, addition, multiplication
/// and max operations.
#[derive(Debug, Clone)]
pub struct Dbc {
    wires: Vec<Nanowire>,
    rows: usize,
    pim: bool,
    /// Position code installed on every wire (shift-fault scrubbing).
    code: Option<PositionCode>,
}

impl Dbc {
    /// Creates a PIM-enabled DBC (two ports, TR segment of `config.trd`).
    pub fn pim_enabled(config: &MemoryConfig) -> Dbc {
        let spec = NanowireSpec::coruscant(config.rows_per_dbc, config.trd);
        Dbc::from_spec(spec, config.nanowires_per_dbc, config.rows_per_dbc, true)
    }

    /// Creates a conventional storage DBC (single port, no PIM).
    pub fn storage(config: &MemoryConfig) -> Dbc {
        let spec = NanowireSpec::single_port(config.rows_per_dbc);
        Dbc::from_spec(spec, config.nanowires_per_dbc, config.rows_per_dbc, false)
    }

    fn from_spec(spec: NanowireSpec, width: usize, rows: usize, pim: bool) -> Dbc {
        let wires = (0..width).map(|_| Nanowire::new(spec.clone())).collect();
        Dbc {
            wires,
            rows,
            pim,
            code: None,
        }
    }

    /// Attaches fault injectors to every wire (each wire gets a distinct
    /// seed derived from `seed`).
    #[must_use]
    pub fn with_faults(mut self, config: FaultConfig, seed: u64) -> Dbc {
        self.wires = self
            .wires
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                // Spread per-wire seeds through the SplitMix64 finalizer.
                // A bare additive walk is NOT enough: the injector's RNG
                // advances its state by the same golden-ratio constant
                // per draw, so `seed + i*G` would make wire i's draw k+1
                // identical to wire i+1's draw k — consecutive program
                // executions would replay each other's faults shifted by
                // one wire, correlating re-execution compare-pairs.
                w.with_fault_injector(FaultInjector::new(
                    config,
                    crate::fault::mix(
                        seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ),
                ))
            })
            .collect();
        self
    }

    /// Installs a position code on every wire for shift-fault scrubbing
    /// (paper §V-F / DSN'19 scheme): the widest even check window that
    /// fits both the TRD and the left overhead. The wires must be at
    /// their canonical alignment (they are at construction).
    ///
    /// # Errors
    ///
    /// Returns a device error when the geometry leaves no room for a
    /// code (e.g. single-port storage wires with no left overhead).
    pub fn install_position_codes(&mut self) -> Result<()> {
        let spec = self.wires[0].spec();
        let window = spec.trd_limit.min(spec.initial_offset) & !1;
        let code = PositionCode::plan(&self.wires[0], window)?;
        for w in &mut self.wires {
            code.install(w)?;
        }
        self.code = Some(code);
        Ok(())
    }

    /// The installed position code, if any.
    pub fn position_code(&self) -> Option<&PositionCode> {
        self.code.as_ref()
    }

    /// A maintenance scrub pass: commands every wire back to its
    /// canonical alignment (the realigning shifts themselves run under
    /// fault injection) and, when position codes are installed, checks
    /// and repairs each wire's alignment with one transverse read per
    /// wire.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the checks.
    pub fn scrub(&mut self, meter: &mut CostMeter) -> Result<ScrubOutcome> {
        let mut out = ScrubOutcome::default();
        for w in &mut self.wires {
            out.wires_checked += 1;
            let delta = w.spec().initial_offset as isize - w.offset();
            if delta != 0 {
                out.realigned += 1;
                if w.shift(delta, meter).is_err() {
                    w.force_shift(delta, meter);
                }
            }
            if let Some(code) = &self.code {
                match code.check_and_repair(w, meter)? {
                    Alignment::Aligned => {}
                    Alignment::OutOfRange => out.out_of_range += 1,
                    _ => out.repaired += 1,
                }
            }
        }
        Ok(out)
    }

    /// Total faults injected so far across all wires.
    pub fn injected_fault_count(&self) -> u64 {
        self.wires.iter().map(Nanowire::injected_fault_count).sum()
    }

    /// Number of nanowires (bits per row).
    pub fn width(&self) -> usize {
        self.wires.len()
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether this DBC carries the PIM extensions (second port, TR).
    pub fn is_pim(&self) -> bool {
        self.pim
    }

    /// Length of the inter-port segment (0 for storage DBCs).
    pub fn segment_len(&self) -> usize {
        self.wires[0].segment_len()
    }

    /// Immutable access to wire `i` (oracle inspection).
    pub fn wire(&self, i: usize) -> &Nanowire {
        &self.wires[i]
    }

    /// Mutable access to wire `i` (used by PIM algorithms for per-wire
    /// micro-operations like the addition carry chain).
    pub fn wire_mut(&mut self, i: usize) -> &mut Nanowire {
        &mut self.wires[i]
    }

    fn check_row(&self, r: usize) -> Result<()> {
        if r >= self.rows {
            return Err(MemError::RowOutOfRange {
                row: r,
                rows: self.rows,
            });
        }
        Ok(())
    }

    /// Lock-step shift of every wire by `delta` domains. Latency is one
    /// wire's shift; energy accumulates across all wires.
    ///
    /// # Errors
    ///
    /// Returns a device error if the shift would overrun the wires.
    pub fn shift_all(&mut self, delta: isize, meter: &mut CostMeter) -> Result<()> {
        let mut combined = Cost::ZERO;
        for w in &mut self.wires {
            let mut local = CostMeter::new();
            w.shift(delta, &mut local)?;
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge_class(OpClass::Shift, combined);
        Ok(())
    }

    /// Aligns data row `r` under `port` on every wire.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`] or a device error for an
    /// unreachable alignment.
    pub fn align_row(&mut self, r: usize, port: PortId, meter: &mut CostMeter) -> Result<()> {
        self.check_row(r)?;
        let mut combined = Cost::ZERO;
        for w in &mut self.wires {
            let mut local = CostMeter::new();
            w.align_row(r, port, &mut local)?;
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge_class(OpClass::Shift, combined);
        Ok(())
    }

    /// Picks a feasible access port for row `r` (the one with the shortest
    /// reachable alignment), mirroring the controller's shift-minimizing
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`] for a bad row.
    pub fn nearest_port(&self, r: usize) -> Result<PortId> {
        self.check_row(r)?;
        let w = &self.wires[0];
        let n_ports = w.spec().ports.len();
        let mut best: Option<(PortId, isize)> = None;
        for p in 0..n_ports {
            let port = PortId(p);
            let d = w.align_distance(r, port)?;
            // Check feasibility: the resulting offset must stay in range.
            let new_offset = w.offset() + d;
            let max_offset = (w.spec().total_domains - w.spec().data_domains) as isize;
            if new_offset < 0 || new_offset > max_offset {
                continue;
            }
            match best {
                Some((_, bd)) if bd.abs() <= d.abs() => {}
                _ => best = Some((port, d)),
            }
        }
        best.map(|(p, _)| p)
            .ok_or_else(|| MemError::BadLocation(format!("row {r} unreachable from any port")))
    }

    /// Reads row `r`: aligns it under the nearest feasible port and senses
    /// all wires in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`] or a device error.
    pub fn read_row(&mut self, r: usize, meter: &mut CostMeter) -> Result<Row> {
        let port = self.nearest_port(r)?;
        self.align_row(r, port, meter)?;
        let mut combined = Cost::ZERO;
        let mut bits = Vec::with_capacity(self.wires.len());
        for w in &mut self.wires {
            let mut local = CostMeter::new();
            bits.push(w.read(port, &mut local)?);
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge_class(OpClass::Read, combined);
        Ok(Row::from_bits(bits))
    }

    /// Writes row `r` (align + parallel write).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] if `data` is not exactly one bit
    /// per wire, [`MemError::RowOutOfRange`], or a device error.
    pub fn write_row(&mut self, r: usize, data: &Row, meter: &mut CostMeter) -> Result<()> {
        if data.width() != self.wires.len() {
            return Err(MemError::WidthMismatch {
                got: data.width(),
                expected: self.wires.len(),
            });
        }
        let port = self.nearest_port(r)?;
        self.align_row(r, port, meter)?;
        let mut combined = Cost::ZERO;
        for (w, bit) in self.wires.iter_mut().zip(data.iter()) {
            let mut local = CostMeter::new();
            w.write(port, bit, &mut local)?;
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge_class(OpClass::Write, combined);
        Ok(())
    }

    /// Reads row `r` without device access or cost — an oracle for tests
    /// and verification.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`] for a bad row.
    pub fn peek_row(&self, r: usize) -> Result<Row> {
        self.check_row(r)?;
        Ok(self
            .wires
            .iter()
            .map(|w| w.row(r).expect("validated row"))
            .collect())
    }

    /// Writes row `r` directly into the model (setup helper; no cost).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] or [`MemError::RowOutOfRange`].
    pub fn poke_row(&mut self, r: usize, data: &Row) -> Result<()> {
        self.check_row(r)?;
        if data.width() != self.wires.len() {
            return Err(MemError::WidthMismatch {
                got: data.width(),
                expected: self.wires.len(),
            });
        }
        for (w, bit) in self.wires.iter_mut().zip(data.iter()) {
            w.set_row(r, bit)?;
        }
        Ok(())
    }

    /// Transverse read on every wire in parallel, returning one ones-count
    /// per wire. Latency of a single TR; energy scales with width.
    ///
    /// # Errors
    ///
    /// Returns a device error if the DBC has fewer than two ports or the
    /// segment exceeds the TRD.
    pub fn transverse_read_all(&mut self, meter: &mut CostMeter) -> Result<Vec<TrOutcome>> {
        let mut combined = Cost::ZERO;
        let mut out = Vec::with_capacity(self.wires.len());
        for w in &mut self.wires {
            let mut local = CostMeter::new();
            out.push(w.transverse_read(PortId::LEFT, PortId::RIGHT, &mut local)?);
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge_class(OpClass::TransverseRead, combined);
        Ok(out)
    }

    /// Transverse read on a subset of wires in parallel (one TR latency).
    ///
    /// # Errors
    ///
    /// As [`Dbc::transverse_read_all`]; also if a wire index is out of
    /// range the missing wires are reported via panic in debug builds.
    pub fn transverse_read_wires(
        &mut self,
        wires: &[usize],
        meter: &mut CostMeter,
    ) -> Result<Vec<TrOutcome>> {
        let mut combined = Cost::ZERO;
        let mut out = Vec::with_capacity(wires.len());
        for &i in wires {
            let mut local = CostMeter::new();
            out.push(self.wires[i].transverse_read(PortId::LEFT, PortId::RIGHT, &mut local)?);
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge_class(OpClass::TransverseRead, combined);
        Ok(out)
    }

    /// Parallel single-bit writes: each `(wire, port, bit)` triple is
    /// written simultaneously (one write latency, energy per write).
    ///
    /// # Errors
    ///
    /// Returns a device error for bad ports.
    pub fn write_bits(
        &mut self,
        writes: &[(usize, PortId, bool)],
        meter: &mut CostMeter,
    ) -> Result<()> {
        let mut combined = Cost::ZERO;
        for &(i, port, bit) in writes {
            let mut local = CostMeter::new();
            self.wires[i].write(port, bit, &mut local)?;
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge_class(OpClass::Write, combined);
        Ok(())
    }

    /// Transverse write on every wire in parallel: writes `row` under the
    /// left port while segment-shifting, returning the expelled row from
    /// under the right ports.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] or a device error.
    pub fn transverse_write_all(&mut self, row: &Row, meter: &mut CostMeter) -> Result<Row> {
        if row.width() != self.wires.len() {
            return Err(MemError::WidthMismatch {
                got: row.width(),
                expected: self.wires.len(),
            });
        }
        let mut combined = Cost::ZERO;
        let mut expelled = Vec::with_capacity(self.wires.len());
        for (w, bit) in self.wires.iter_mut().zip(row.iter()) {
            let mut local = CostMeter::new();
            expelled.push(w.transverse_write(bit, &mut local)?);
            combined = combined.in_parallel_with(local.total());
        }
        meter.charge_class(OpClass::TransverseWrite, combined);
        Ok(Row::from_bits(expelled))
    }

    /// The segment contents of every wire as rows: element `s` is the row
    /// formed by segment position `s` across all wires (oracle; no cost).
    pub fn peek_segment_rows(&self) -> Vec<Row> {
        let seg = self.segment_len();
        (0..seg)
            .map(|s| {
                self.wires
                    .iter()
                    .map(|w| w.segment_bit(s).expect("segment position"))
                    .collect()
            })
            .collect()
    }

    /// Writes segment position `s` across all wires directly (setup
    /// helper; no cost).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::WidthMismatch`] or a device error for a bad
    /// segment position.
    pub fn poke_segment_row(&mut self, s: usize, data: &Row) -> Result<()> {
        if data.width() != self.wires.len() {
            return Err(MemError::WidthMismatch {
                got: data.width(),
                expected: self.wires.len(),
            });
        }
        for (w, bit) in self.wires.iter_mut().zip(data.iter()) {
            w.set_segment_bit(s, bit)?;
        }
        Ok(())
    }

    /// The logical row index currently under the left port of wire 0, if
    /// the port is over the data window.
    pub fn row_under_left_port(&self) -> Option<usize> {
        self.wires[0].row_under_port(PortId::LEFT).ok().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pim() -> Dbc {
        Dbc::pim_enabled(&MemoryConfig::tiny())
    }

    #[test]
    fn geometry_matches_config() {
        let c = MemoryConfig::tiny();
        let d = Dbc::pim_enabled(&c);
        assert_eq!(d.width(), 64);
        assert_eq!(d.rows(), 32);
        assert!(d.is_pim());
        assert_eq!(d.segment_len(), 7);

        let s = Dbc::storage(&c);
        assert!(!s.is_pim());
    }

    #[test]
    fn row_write_read_roundtrip() {
        let mut d = tiny_pim();
        let mut m = CostMeter::new();
        let row = Row::from_u64_words(64, &[0xAAAA_5555_F0F0_0F0F]);
        d.write_row(7, &row, &mut m).unwrap();
        let got = d.read_row(7, &mut m).unwrap();
        assert_eq!(got, row);
        // Oracle agrees.
        assert_eq!(d.peek_row(7).unwrap(), row);
    }

    #[test]
    fn row_access_cost_is_shift_plus_one() {
        let mut d = tiny_pim();
        let mut m = CostMeter::new();
        let row = Row::zeros(64);
        d.write_row(0, &row, &mut m).unwrap();
        let shift_then_write = m.take();
        // Writing the same row again needs no realignment: 1 cycle.
        d.write_row(0, &row, &mut m).unwrap();
        assert_eq!(m.total().cycles, 1);
        assert!(shift_then_write.cycles >= 1);
        // Energy of the parallel write scales with width.
        assert!(m.total().energy_pj > 0.1 * 63.0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut d = tiny_pim();
        let mut m = CostMeter::new();
        let err = d.write_row(0, &Row::zeros(8), &mut m).unwrap_err();
        assert!(matches!(err, MemError::WidthMismatch { .. }));
        assert!(d.poke_row(0, &Row::zeros(8)).is_err());
    }

    #[test]
    fn row_out_of_range_rejected() {
        let mut d = tiny_pim();
        let mut m = CostMeter::new();
        assert!(matches!(
            d.read_row(32, &mut m),
            Err(MemError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn all_rows_reachable() {
        let mut d = tiny_pim();
        let mut m = CostMeter::new();
        for r in 0..32 {
            let mut row = Row::zeros(64);
            row.set(r % 64, true);
            d.write_row(r, &row, &mut m).unwrap();
        }
        for r in 0..32 {
            let got = d.read_row(r, &mut m).unwrap();
            assert_eq!(got.popcount(), 1, "row {r}");
            assert_eq!(got.get(r % 64), Some(true));
        }
    }

    #[test]
    fn transverse_read_all_counts_segment_ones() {
        let mut d = tiny_pim();
        // Fill segment rows: positions 0..3 all ones, rest zeros.
        for s in 0..4 {
            d.poke_segment_row(s, &Row::ones(64)).unwrap();
        }
        let mut m = CostMeter::new();
        let out = d.transverse_read_all(&mut m).unwrap();
        assert!(out.iter().all(|o| o.value == 4 && o.span == 7));
        assert_eq!(m.total().cycles, 1, "parallel TR is one cycle");
    }

    #[test]
    fn transverse_write_all_shifts_segment() {
        let mut d = tiny_pim();
        let marker = Row::from_u64_words(64, &[0x1234_5678]);
        d.poke_segment_row(6, &marker).unwrap(); // under the right port
        let mut m = CostMeter::new();
        let expelled = d.transverse_write_all(&Row::ones(64), &mut m).unwrap();
        assert_eq!(expelled, marker);
        let rows = d.peek_segment_rows();
        assert_eq!(rows[0], Row::ones(64));
    }

    #[test]
    fn write_bits_is_one_cycle() {
        let mut d = tiny_pim();
        let mut m = CostMeter::new();
        d.write_bits(
            &[
                (0, PortId::LEFT, true),
                (1, PortId::RIGHT, true),
                (2, PortId::LEFT, false),
            ],
            &mut m,
        )
        .unwrap();
        assert_eq!(m.total().cycles, 1);
        assert!(d.wire(0).segment_bit(0).unwrap());
        assert!(d.wire(1).segment_bit(6).unwrap());
    }

    #[test]
    fn lockstep_shift_moves_all_wires() {
        let mut d = tiny_pim();
        let row = Row::ones(64);
        d.poke_row(10, &row).unwrap();
        let mut m = CostMeter::new();
        d.shift_all(3, &mut m).unwrap();
        assert_eq!(m.total().cycles, 3);
        assert_eq!(d.peek_row(10).unwrap(), row, "data follows the shift");
    }

    #[test]
    fn nearest_port_prefers_shorter_alignment() {
        let d = tiny_pim();
        // Row 0 is far left: the left port must win.
        assert_eq!(d.nearest_port(0).unwrap(), PortId::LEFT);
        // Row 31 is far right: the right port must win.
        assert_eq!(d.nearest_port(31).unwrap(), PortId::RIGHT);
    }
}
