//! Memory-wide fault planning: per-bank fault configurations with
//! deterministic per-DBC seed derivation.
//!
//! A [`FaultPlan`] describes how a whole memory misbehaves: a base
//! [`FaultConfig`] applied to every bank plus per-bank overrides (e.g. one
//! marginal bank at an accelerated rate for a quarantine campaign). The
//! controller materializes DBCs lazily, so the plan also fixes how each
//! DBC's injector seed is derived from the plan seed — the same plan and
//! seed always produce the same fault stream regardless of
//! materialization order, which keeps campaigns reproducible.

use crate::address::DbcLocation;
use crate::config::MemoryConfig;
use crate::Result;
use coruscant_racetrack::FaultConfig;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: decorrelates consecutive DBC indices so the
/// per-wire spreading inside [`crate::Dbc::with_faults`] (an additive
/// golden-ratio walk) cannot collide across neighbouring DBCs.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, per-bank fault model for a whole memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    base: FaultConfig,
    /// Per-bank overrides, kept sorted by bank for deterministic lookup.
    overrides: Vec<(usize, FaultConfig)>,
    seed: u64,
}

impl FaultPlan {
    /// A plan applying `base` to every bank.
    ///
    /// # Errors
    ///
    /// Returns a device error if `base` fails
    /// [`FaultConfig::validate`].
    pub fn uniform(base: FaultConfig, seed: u64) -> Result<FaultPlan> {
        base.validate()?;
        Ok(FaultPlan {
            base,
            overrides: Vec::new(),
            seed,
        })
    }

    /// A fault-free plan (useful as a base for per-bank overrides).
    pub fn healthy(seed: u64) -> FaultPlan {
        FaultPlan {
            base: FaultConfig::NONE,
            overrides: Vec::new(),
            seed,
        }
    }

    /// Overrides the configuration of one bank (replacing any previous
    /// override for that bank).
    ///
    /// # Errors
    ///
    /// Returns a device error if `config` fails
    /// [`FaultConfig::validate`].
    pub fn with_bank(mut self, bank: usize, config: FaultConfig) -> Result<FaultPlan> {
        config.validate()?;
        self.overrides.retain(|&(b, _)| b != bank);
        self.overrides.push((bank, config));
        self.overrides.sort_by_key(|&(b, _)| b);
        Ok(self)
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The base configuration applied to non-overridden banks.
    pub fn base(&self) -> &FaultConfig {
        &self.base
    }

    /// The effective configuration of `bank`.
    pub fn config_for_bank(&self, bank: usize) -> FaultConfig {
        self.overrides
            .iter()
            .find(|&&(b, _)| b == bank)
            .map_or(self.base, |&(_, c)| c)
    }

    /// Whether any bank can inject faults under this plan.
    pub fn is_active(&self) -> bool {
        self.base.is_active() || self.overrides.iter().any(|(_, c)| c.is_active())
    }

    /// The injector seed for the DBC at `location`: a SplitMix64 mix of
    /// the plan seed and the DBC's linear index, so every DBC draws an
    /// independent, reproducible fault stream.
    pub fn dbc_seed(&self, location: DbcLocation, config: &MemoryConfig) -> u64 {
        let idx = ((location.bank * config.subarrays_per_bank + location.subarray)
            * config.tiles_per_subarray
            + location.tile)
            * config.dbcs_per_tile
            + location.dbc;
        mix(self
            .seed
            .wrapping_add((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// The outcome of a position-code scrub pass over a DBC or bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubOutcome {
    /// Wires checked.
    pub wires_checked: u64,
    /// Wires commanded back to canonical alignment before the check.
    pub realigned: u64,
    /// Wires whose position code detected and repaired a misalignment.
    pub repaired: u64,
    /// Wires whose misalignment exceeded the code's detection range.
    pub out_of_range: u64,
}

impl ScrubOutcome {
    /// Accumulates another outcome into this one.
    pub fn merge(&mut self, other: ScrubOutcome) {
        self.wires_checked += other.wires_checked;
        self.realigned += other.realigned;
        self.repaired += other.repaired;
        self.out_of_range += other.out_of_range;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemError;

    #[test]
    fn uniform_plan_applies_base_everywhere() {
        let base = FaultConfig::NONE.with_tr_fault_rate(1e-3);
        let plan = FaultPlan::uniform(base, 7).unwrap();
        assert_eq!(plan.config_for_bank(0), base);
        assert_eq!(plan.config_for_bank(31), base);
        assert!(plan.is_active());
        assert!(!FaultPlan::healthy(7).is_active());
    }

    #[test]
    fn bank_overrides_shadow_the_base() {
        let hot = FaultConfig::NONE.with_tr_fault_rate(0.5);
        let plan = FaultPlan::healthy(1).with_bank(3, hot).unwrap();
        assert_eq!(plan.config_for_bank(3), hot);
        assert_eq!(plan.config_for_bank(2), FaultConfig::NONE);
        assert!(plan.is_active());

        // Replacing an override keeps one entry per bank.
        let plan = plan.with_bank(3, FaultConfig::NONE).unwrap();
        assert!(!plan.is_active());
    }

    #[test]
    fn invalid_configs_are_rejected_with_typed_error() {
        let bad = FaultConfig::NONE.with_tr_fault_rate(f64::NAN);
        assert!(matches!(
            FaultPlan::uniform(bad, 0).unwrap_err(),
            MemError::Device(coruscant_racetrack::Error::BadFaultConfig(_))
        ));
        assert!(FaultPlan::healthy(0).with_bank(0, bad).is_err());
    }

    #[test]
    fn dbc_seeds_are_distinct_and_reproducible() {
        let config = MemoryConfig::tiny();
        let plan = FaultPlan::healthy(42);
        let mut seeds = Vec::new();
        for bank in 0..config.banks {
            for sub in 0..config.subarrays_per_bank {
                for tile in 0..config.tiles_per_subarray {
                    for dbc in 0..config.dbcs_per_tile {
                        seeds.push(plan.dbc_seed(DbcLocation::new(bank, sub, tile, dbc), &config));
                    }
                }
            }
        }
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "every DBC draws its own stream");
        assert_eq!(
            plan.dbc_seed(DbcLocation::new(1, 1, 1, 1), &config),
            FaultPlan::healthy(42).dbc_seed(DbcLocation::new(1, 1, 1, 1), &config)
        );
        assert_ne!(
            plan.dbc_seed(DbcLocation::new(0, 0, 0, 0), &config),
            FaultPlan::healthy(43).dbc_seed(DbcLocation::new(0, 0, 0, 0), &config)
        );
    }

    #[test]
    fn scrub_outcome_merges() {
        let mut a = ScrubOutcome {
            wires_checked: 64,
            realigned: 3,
            repaired: 2,
            out_of_range: 1,
        };
        a.merge(a);
        assert_eq!(a.wires_checked, 128);
        assert_eq!(a.repaired, 4);
    }
}
