//! Interface-level timing for DRAM and DWM (paper Table II).
//!
//! DWM keeps the DDR3-1600 command protocol but replaces the precharge time
//! `tRP` with the data-placement-dependent shift time `S`: a spintronic
//! array has no bitline precharge, it must instead shift the target row
//! under an access port.

use serde::{Deserialize, Serialize};

/// Which protocol a timing profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Conventional DRAM (fixed `tRP`).
    Dram,
    /// Domain-wall memory (`tRP` replaced by shift cycles).
    Dwm,
}

/// DDR-style timing parameters in memory cycles (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceTiming {
    /// Protocol family.
    pub protocol: Protocol,
    /// Row-access strobe: minimum time a row stays open.
    pub t_ras: u64,
    /// RAS-to-CAS delay: activation to column access.
    pub t_rcd: u64,
    /// Row precharge (DRAM only; DWM uses shift time instead).
    pub t_rp: u64,
    /// Column access strobe latency.
    pub t_cas: u64,
    /// Write recovery.
    pub t_wr: u64,
}

impl DeviceTiming {
    /// DRAM timing from Table II: `tRAS-tRCD-tRP-tCAS-tWR = 20-8-8-8-8`.
    pub const DRAM_PAPER: DeviceTiming = DeviceTiming {
        protocol: Protocol::Dram,
        t_ras: 20,
        t_rcd: 8,
        t_rp: 8,
        t_cas: 8,
        t_wr: 8,
    };

    /// DWM timing from Table II: `9-4-S-4-4`; the shift term `S` is
    /// supplied per access via [`DeviceTiming::row_hit`] /
    /// [`DeviceTiming::row_miss`].
    pub const DWM_PAPER: DeviceTiming = DeviceTiming {
        protocol: Protocol::Dwm,
        t_ras: 9,
        t_rcd: 4,
        t_rp: 0, // replaced by shift cycles
        t_cas: 4,
        t_wr: 4,
    };

    /// Latency (memory cycles) of an access that hits the open row:
    /// column access only.
    pub fn row_hit(&self) -> u64 {
        self.t_cas
    }

    /// Latency (memory cycles) of an access that misses the open row:
    /// close the current row (precharge or shift), activate, column access.
    ///
    /// `shift_cycles` is the DWM shift distance in cycles; ignored for
    /// DRAM.
    pub fn row_miss(&self, shift_cycles: u64) -> u64 {
        let close = match self.protocol {
            Protocol::Dram => self.t_rp,
            Protocol::Dwm => shift_cycles,
        };
        close + self.t_rcd + self.t_cas
    }

    /// Latency (memory cycles) of a write completing (miss path), including
    /// write recovery.
    pub fn write_miss(&self, shift_cycles: u64) -> u64 {
        self.row_miss(shift_cycles) + self.t_wr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_paper_values() {
        let t = DeviceTiming::DRAM_PAPER;
        assert_eq!(
            (t.t_ras, t.t_rcd, t.t_rp, t.t_cas, t.t_wr),
            (20, 8, 8, 8, 8)
        );
        assert_eq!(t.row_hit(), 8);
        assert_eq!(t.row_miss(0), 8 + 8 + 8);
    }

    #[test]
    fn dwm_replaces_precharge_with_shift() {
        let t = DeviceTiming::DWM_PAPER;
        assert_eq!(t.row_miss(0), 4 + 4, "zero-shift miss is rcd + cas");
        assert_eq!(t.row_miss(5), 5 + 4 + 4);
        assert_eq!(t.row_hit(), 4);
    }

    #[test]
    fn dwm_beats_dram_for_short_shifts() {
        // Paper §V-C: DRAM is slower than DWM because, while DWM needs S
        // shift cycles, its peripheral circuitry is faster.
        let dram = DeviceTiming::DRAM_PAPER;
        let dwm = DeviceTiming::DWM_PAPER;
        for s in 0..=15 {
            assert!(dwm.row_miss(s) <= dram.row_miss(0) + s.saturating_sub(8));
        }
        assert!(dwm.row_miss(4) < dram.row_miss(0));
    }

    #[test]
    fn write_adds_recovery() {
        let t = DeviceTiming::DWM_PAPER;
        assert_eq!(t.write_miss(3), t.row_miss(3) + 4);
    }
}
