//! In-memory data movement: RowClone-style copies between DBCs.
//!
//! CORUSCANT moves operands from storage DBCs to PIM-enabled DBCs through
//! the hierarchical row buffer (paper §III-A: "the shared row buffer in the
//! subarray or across subarrays can be used to move data from non-PIM DBCs
//! to PIM-enabled DBCs"), following the RowClone intra-subarray /
//! inter-bank copy mechanisms the paper builds on.

use crate::address::RowAddress;
use crate::controller::MemoryController;
use crate::Result;
use coruscant_racetrack::CostMeter;

/// Scope of a row copy, which determines its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyScope {
    /// Source and destination share a subarray (fast RowClone path: the
    /// row buffer refreshes the source and overrides the destination).
    IntraSubarray,
    /// Source and destination share a bank but not a subarray.
    IntraBank,
    /// Source and destination are in different banks (uses the shared
    /// internal bus).
    InterBank,
}

/// Classifies the copy scope of a source/destination pair.
pub fn classify(src: RowAddress, dst: RowAddress) -> CopyScope {
    if src.location.bank == dst.location.bank {
        if src.location.subarray == dst.location.subarray {
            CopyScope::IntraSubarray
        } else {
            CopyScope::IntraBank
        }
    } else {
        CopyScope::InterBank
    }
}

/// Copies one row from `src` to `dst` through the row-buffer hierarchy.
///
/// The copy is functional (the destination DBC really receives the data)
/// and charges device-level cost to `meter`: a row read, the buffer
/// traversal, and a row write. Wider scopes add bus cycles.
///
/// Returns the scope that was used.
///
/// # Errors
///
/// Propagates address validation and device errors.
pub fn copy_row(
    ctrl: &mut MemoryController,
    src: RowAddress,
    dst: RowAddress,
    meter: &mut CostMeter,
) -> Result<CopyScope> {
    let scope = classify(src, dst);
    let data = ctrl.load_row(src, meter)?;

    // Stage in the source subarray's row buffer.
    ctrl.row_buffer_mut(src.location).load(src, data.clone());

    // Crossing subarrays or banks costs extra interconnect cycles.
    let extra = match scope {
        CopyScope::IntraSubarray => 0,
        CopyScope::IntraBank => 2,
        CopyScope::InterBank => 8,
    };
    if extra > 0 {
        meter.charge(coruscant_racetrack::Cost::cycles(extra));
    }

    ctrl.store_row(dst, &data, meter)?;
    // The destination subarray's buffer now holds the row too.
    ctrl.row_buffer_mut(dst.location).load(dst, data);
    Ok(scope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::DbcLocation;
    use crate::config::MemoryConfig;
    use crate::row::Row;

    fn setup() -> MemoryController {
        MemoryController::new(MemoryConfig::tiny())
    }

    #[test]
    fn scope_classification() {
        let a = RowAddress::new(DbcLocation::new(0, 0, 0, 1), 0);
        let same_sub = RowAddress::new(DbcLocation::new(0, 0, 1, 0), 3);
        let same_bank = RowAddress::new(DbcLocation::new(0, 1, 0, 0), 3);
        let other_bank = RowAddress::new(DbcLocation::new(1, 0, 0, 0), 3);
        assert_eq!(classify(a, same_sub), CopyScope::IntraSubarray);
        assert_eq!(classify(a, same_bank), CopyScope::IntraBank);
        assert_eq!(classify(a, other_bank), CopyScope::InterBank);
    }

    #[test]
    fn copy_moves_data_functionally() {
        let mut c = setup();
        let src = RowAddress::new(DbcLocation::new(0, 0, 0, 1), 4);
        let dst = RowAddress::new(DbcLocation::new(0, 0, 0, 0), 2);
        let row = Row::from_u64_words(64, &[0xC0FFEE]);
        let mut m = CostMeter::new();
        c.store_row(src, &row, &mut m).unwrap();

        let scope = copy_row(&mut c, src, dst, &mut m).unwrap();
        assert_eq!(scope, CopyScope::IntraSubarray);
        assert_eq!(c.load_row(dst, &mut m).unwrap(), row);
        // Both subarray buffers hold it (same subarray here).
        assert!(c.row_buffer_mut(dst.location).hits(dst));
    }

    #[test]
    fn wider_scopes_cost_more() {
        let row = Row::from_u64_words(64, &[1]);
        let mut costs = Vec::new();
        for dst_loc in [
            DbcLocation::new(0, 0, 1, 0), // intra-subarray? same subarray 0
            DbcLocation::new(0, 1, 0, 0), // intra-bank
            DbcLocation::new(1, 0, 0, 0), // inter-bank
        ] {
            let mut c = setup();
            let src = RowAddress::new(DbcLocation::new(0, 0, 0, 1), 4);
            let dst = RowAddress::new(dst_loc, 4);
            let mut m = CostMeter::new();
            c.store_row(src, &row, &mut m).unwrap();
            m.take();
            copy_row(&mut c, src, dst, &mut m).unwrap();
            costs.push(m.total().cycles);
        }
        assert!(costs[0] < costs[1], "{costs:?}");
        assert!(costs[1] < costs[2], "{costs:?}");
    }

    #[test]
    fn copy_into_pim_dbc_lands_in_pim_geometry() {
        let mut c = setup();
        let src = RowAddress::new(DbcLocation::new(0, 0, 0, 2), 0);
        let dst = RowAddress::new(DbcLocation::new(0, 0, 0, 0), 0);
        let row = Row::ones(64);
        let mut m = CostMeter::new();
        c.store_row(src, &row, &mut m).unwrap();
        copy_row(&mut c, src, dst, &mut m).unwrap();
        let dbc = c.dbc(dst.location).unwrap();
        assert!(dbc.is_pim());
        assert_eq!(dbc.peek_row(0).unwrap(), row);
    }
}
