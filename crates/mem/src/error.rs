use std::fmt;

/// Errors produced by the memory-architecture layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// A device-level error bubbled up from a nanowire operation.
    Device(coruscant_racetrack::Error),
    /// A row index was out of range for the DBC.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
        /// Rows per DBC.
        rows: usize,
    },
    /// Row data length did not match the DBC width.
    WidthMismatch {
        /// Provided bit count.
        got: usize,
        /// Expected bit count (nanowires per DBC).
        expected: usize,
    },
    /// A physical location (bank/subarray/tile/DBC) was out of range.
    BadLocation(String),
    /// The referenced DBC is not PIM-enabled but a PIM command targeted it.
    NotPimCapable {
        /// Human-readable location.
        location: String,
    },
    /// The configuration is inconsistent.
    BadConfig(String),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Device(e) => write!(f, "device error: {e}"),
            MemError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for a {rows}-row DBC")
            }
            MemError::WidthMismatch { got, expected } => {
                write!(f, "row data has {got} bits but the DBC is {expected} wide")
            }
            MemError::BadLocation(s) => write!(f, "bad physical location: {s}"),
            MemError::NotPimCapable { location } => {
                write!(f, "DBC at {location} is not PIM-enabled")
            }
            MemError::BadConfig(s) => write!(f, "invalid memory configuration: {s}"),
        }
    }
}

impl std::error::Error for MemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<coruscant_racetrack::Error> for MemError {
    fn from(e: coruscant_racetrack::Error) -> Self {
        MemError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let cases = [
            MemError::Device(coruscant_racetrack::Error::UnknownPort(0)),
            MemError::RowOutOfRange { row: 40, rows: 32 },
            MemError::WidthMismatch {
                got: 8,
                expected: 512,
            },
            MemError::BadLocation("bank 99".into()),
            MemError::NotPimCapable {
                location: "bank 0 subarray 0 tile 0 dbc 3".into(),
            },
            MemError::BadConfig("zero banks".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn device_error_has_source() {
        use std::error::Error as _;
        let e = MemError::from(coruscant_racetrack::Error::UnknownPort(1));
        assert!(e.source().is_some());
    }
}
