//! Memory request traces: a serializable request stream and a replayer.
//!
//! The paper drives its system-level evaluation from pintool traces
//! replayed through an RTSIM-based model (§V-C). This module provides the
//! equivalent machinery: a compact trace record format (serializable with
//! serde for storage), synthetic trace generators with controllable
//! locality, and a replayer that runs a trace through the
//! [`MemoryController`] and reports latency and
//! row-buffer statistics.

use crate::config::MemoryConfig;
use crate::controller::{ControllerStats, MemoryController, Request};
use crate::Result;
use serde::{Deserialize, Serialize};

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Read at a byte address.
    Read(u64),
    /// Write at a byte address.
    Write(u64),
    /// CPU compute gap: the next request arrives this many memory cycles
    /// later.
    Gap(u64),
}

/// A request trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Number of records (including gaps).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The records.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of memory requests (reads + writes).
    pub fn request_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, TraceOp::Gap(_)))
            .count()
    }

    /// A sequential streaming trace: `n` word-granularity reads walking
    /// consecutive rows (four accesses land in each row before moving
    /// on, so an open-row policy sees hits).
    pub fn streaming(config: &MemoryConfig, n: usize) -> Trace {
        let row_bytes = (config.nanowires_per_dbc / 8) as u64;
        let cap = config.capacity_bytes();
        Trace {
            ops: (0..n as u64)
                .map(|i| TraceOp::Read((i / 4 * row_bytes + (i % 4) * 2) % cap))
                .collect(),
        }
    }

    /// A strided trace with a read/write mix: every fourth access is a
    /// write, rows advance by `stride_rows`.
    pub fn strided(config: &MemoryConfig, n: usize, stride_rows: u64) -> Trace {
        let row_bytes = (config.nanowires_per_dbc / 8) as u64;
        let cap = config.capacity_bytes();
        Trace {
            ops: (0..n as u64)
                .map(|i| {
                    let addr = (i * stride_rows * row_bytes) % cap;
                    if i % 4 == 3 {
                        TraceOp::Write(addr)
                    } else {
                        TraceOp::Read(addr)
                    }
                })
                .collect(),
        }
    }

    /// A pointer-chasing trace: pseudo-random rows (poor locality), with
    /// a compute gap between every access.
    pub fn pointer_chase(config: &MemoryConfig, n: usize, gap: u64, seed: u64) -> Trace {
        let row_bytes = (config.nanowires_per_dbc / 8) as u64;
        let rows = config.capacity_bytes() / row_bytes;
        let mut state = seed | 1;
        let mut ops = Vec::with_capacity(2 * n);
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ops.push(TraceOp::Read((state % rows) * row_bytes));
            if gap > 0 {
                ops.push(TraceOp::Gap(gap));
            }
        }
        Trace { ops }
    }
}

/// The outcome of a trace replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Completion time of the last request (memory cycles).
    pub finish_cycles: u64,
    /// Controller statistics after the run.
    pub stats: ControllerStats,
    /// Requests replayed.
    pub requests: u64,
}

impl ReplayReport {
    /// Average cycles per request.
    pub fn cycles_per_request(&self) -> f64 {
        self.finish_cycles as f64 / self.requests.max(1) as f64
    }

    /// Row-buffer hit rate observed by the controller.
    pub fn hit_rate(&self) -> f64 {
        let total = self.stats.row_hits + self.stats.row_misses;
        if total == 0 {
            0.0
        } else {
            self.stats.row_hits as f64 / total as f64
        }
    }
}

/// Replays a trace through a fresh controller. Requests arrive at one
/// per memory cycle (the command-bus issue rate); `Gap` records insert
/// additional idle cycles, so the queuing statistics measure genuine
/// waiting rather than artifacts of instantaneous arrival.
///
/// # Errors
///
/// Propagates address-validation errors.
pub fn replay(trace: &Trace, ctrl: &mut MemoryController) -> Result<ReplayReport> {
    let mut finish = 0;
    let mut requests = 0;
    for op in trace.ops() {
        match *op {
            TraceOp::Read(a) => {
                finish = finish.max(ctrl.submit(Request::Read(a))?);
                ctrl.advance(1);
                requests += 1;
            }
            TraceOp::Write(a) => {
                finish = finish.max(ctrl.submit(Request::Write(a))?);
                ctrl.advance(1);
                requests += 1;
            }
            TraceOp::Gap(g) => ctrl.advance(g),
        }
    }
    let finish = finish.max(ctrl.drain());
    Ok(ReplayReport {
        finish_cycles: finish,
        stats: *ctrl.stats(),
        requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DeviceTiming;

    fn cfg() -> MemoryConfig {
        MemoryConfig::tiny()
    }

    #[test]
    fn streaming_trace_has_high_locality() {
        let config = cfg();
        let trace = Trace::streaming(&config, 1000);
        let mut ctrl = MemoryController::new(config);
        let report = replay(&trace, &mut ctrl).unwrap();
        assert_eq!(report.requests, 1000);
        assert!(
            report.hit_rate() > 0.5,
            "streaming hit rate {}",
            report.hit_rate()
        );
    }

    #[test]
    fn pointer_chase_has_poor_locality() {
        let config = cfg();
        let stream = replay(
            &Trace::streaming(&config, 500),
            &mut MemoryController::new(config.clone()),
        )
        .unwrap();
        let chase = replay(
            &Trace::pointer_chase(&config, 500, 0, 42),
            &mut MemoryController::new(config.clone()),
        )
        .unwrap();
        assert!(chase.hit_rate() < stream.hit_rate());
        assert!(chase.cycles_per_request() > stream.cycles_per_request());
    }

    #[test]
    fn gaps_stretch_the_timeline_without_requests() {
        let config = cfg();
        let mut with_gaps = Trace::new();
        let mut without = Trace::new();
        for i in 0..50u64 {
            with_gaps.push(TraceOp::Read(i * 64));
            with_gaps.push(TraceOp::Gap(100));
            without.push(TraceOp::Read(i * 64));
        }
        let a = replay(&with_gaps, &mut MemoryController::new(config.clone())).unwrap();
        let b = replay(&without, &mut MemoryController::new(config)).unwrap();
        assert_eq!(a.requests, b.requests);
        assert!(a.finish_cycles > b.finish_cycles + 4000);
    }

    #[test]
    fn dwm_vs_dram_on_the_same_trace() {
        // The DWM timing (9-4-S-4-4) services the same trace faster than
        // DRAM (20-8-8-8-8) when shifts are short.
        let config = cfg();
        let trace = Trace::strided(&config, 2000, 1);
        let dwm = replay(
            &trace,
            &mut MemoryController::with_timing(config.clone(), DeviceTiming::DWM_PAPER),
        )
        .unwrap();
        let dram = replay(
            &trace,
            &mut MemoryController::with_timing(config, DeviceTiming::DRAM_PAPER),
        )
        .unwrap();
        assert!(
            dwm.finish_cycles <= dram.finish_cycles,
            "dwm {} vs dram {}",
            dwm.finish_cycles,
            dram.finish_cycles
        );
    }

    #[test]
    fn trace_file_roundtrip_replays_identically() {
        let config = cfg();
        let trace = Trace::strided(&config, 300, 2);

        // Serialize to a file and load it back.
        let json = serde::json::to_string(&trace);
        let path = std::env::temp_dir().join("coruscant_trace_roundtrip.json");
        std::fs::write(&path, &json).unwrap();
        let loaded: Trace =
            serde::json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);

        // The reloaded trace drives the replayer to identical results.
        let a = replay(&trace, &mut MemoryController::new(config.clone())).unwrap();
        let b = replay(&loaded, &mut MemoryController::new(config)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.requests, 300);
    }

    #[test]
    fn trace_accessors() {
        let config = cfg();
        let trace = Trace::strided(&config, 64, 3);
        assert_eq!(trace.request_count(), 64);
        assert_eq!(trace.len(), 64);
        assert!(!trace.is_empty());
        assert!(Trace::new().is_empty());
        // Writes appear every fourth record.
        let writes = trace
            .ops()
            .iter()
            .filter(|op| matches!(op, TraceOp::Write(_)))
            .count();
        assert_eq!(writes, 16);
    }
}
