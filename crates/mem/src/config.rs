//! Memory geometry and system parameters (paper Table II).

use crate::error::MemError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Geometry and interface parameters of the DWM main memory.
///
/// Defaults reproduce the paper's Table II: a 1 GB (8 Gb) memory with 32
/// banks, 64 subarrays per bank, 16 tiles per subarray, and 16 DBCs per
/// tile of which one is PIM-enabled. Each DBC is 512 nanowires wide and
/// stores 32 data rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of banks.
    pub banks: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Tiles per subarray.
    pub tiles_per_subarray: usize,
    /// DBCs per tile (including the PIM-enabled ones).
    pub dbcs_per_tile: usize,
    /// PIM-enabled DBCs per tile (paper: 1, "1-PIM").
    pub pim_dbcs_per_tile: usize,
    /// Nanowires per DBC (X; bits accessed simultaneously).
    pub nanowires_per_dbc: usize,
    /// Data domains per nanowire (Y; distinct row addresses per DBC).
    pub rows_per_dbc: usize,
    /// Transverse-read distance of the PIM-enabled DBCs.
    pub trd: usize,
    /// Bus speed in MHz.
    pub bus_mhz: u64,
    /// Memory-interface cycle time in nanoseconds.
    pub memory_cycle_ns: f64,
}

impl MemoryConfig {
    /// The paper's Table II configuration.
    pub fn paper() -> MemoryConfig {
        MemoryConfig {
            banks: 32,
            subarrays_per_bank: 64,
            tiles_per_subarray: 16,
            dbcs_per_tile: 16,
            pim_dbcs_per_tile: 1,
            nanowires_per_dbc: 512,
            rows_per_dbc: 32,
            trd: 7,
            bus_mhz: 1000,
            memory_cycle_ns: 1.25,
        }
    }

    /// A small configuration for fast tests: 2 banks, 2 subarrays, 2 tiles,
    /// 4 DBCs of 64×32 bits.
    pub fn tiny() -> MemoryConfig {
        MemoryConfig {
            banks: 2,
            subarrays_per_bank: 2,
            tiles_per_subarray: 2,
            dbcs_per_tile: 4,
            pim_dbcs_per_tile: 1,
            nanowires_per_dbc: 64,
            rows_per_dbc: 32,
            trd: 7,
            bus_mhz: 1000,
            memory_cycle_ns: 1.25,
        }
    }

    /// Sets the transverse-read distance (sensitivity study, TRD ∈ {3,5,7}).
    #[must_use]
    pub fn with_trd(mut self, trd: usize) -> MemoryConfig {
        self.trd = trd;
        self
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.banks as u64
            * self.subarrays_per_bank as u64
            * self.tiles_per_subarray as u64
            * self.dbcs_per_tile as u64
            * self.nanowires_per_dbc as u64
            * self.rows_per_dbc as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bits() / 8
    }

    /// Total number of DBCs.
    pub fn total_dbcs(&self) -> u64 {
        self.banks as u64
            * self.subarrays_per_bank as u64
            * self.tiles_per_subarray as u64
            * self.dbcs_per_tile as u64
    }

    /// Total number of PIM-enabled DBCs.
    pub fn total_pim_dbcs(&self) -> u64 {
        self.banks as u64
            * self.subarrays_per_bank as u64
            * self.tiles_per_subarray as u64
            * self.pim_dbcs_per_tile as u64
    }

    /// Whether DBC index `d` within a tile is PIM-enabled. By convention
    /// the first `pim_dbcs_per_tile` DBCs of each tile carry the second
    /// access port and the PIM sense/logic extensions.
    pub fn is_pim_dbc(&self, d: usize) -> bool {
        d < self.pim_dbcs_per_tile
    }

    /// Maximum addition operands at this TRD: the carry chain reserves the
    /// two port domains for `C` and `C'` (paper §III-C), except at TRD = 3
    /// where no super-carry exists and only the right port is reserved.
    pub fn max_add_operands(&self) -> usize {
        if self.trd <= 3 {
            self.trd - 1
        } else {
            self.trd - 2
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadConfig`] if any dimension is zero, the PIM
    /// DBC count exceeds the DBC count, or the TRD exceeds the rows per
    /// DBC.
    pub fn validate(&self) -> Result<()> {
        let dims = [
            ("banks", self.banks),
            ("subarrays_per_bank", self.subarrays_per_bank),
            ("tiles_per_subarray", self.tiles_per_subarray),
            ("dbcs_per_tile", self.dbcs_per_tile),
            ("nanowires_per_dbc", self.nanowires_per_dbc),
            ("rows_per_dbc", self.rows_per_dbc),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(MemError::BadConfig(format!("{name} must be nonzero")));
            }
        }
        if self.pim_dbcs_per_tile > self.dbcs_per_tile {
            return Err(MemError::BadConfig(
                "more PIM DBCs than DBCs per tile".into(),
            ));
        }
        if self.trd < 2 || self.trd > self.rows_per_dbc {
            return Err(MemError::BadConfig(format!(
                "trd {} outside 2..={}",
                self.trd, self.rows_per_dbc
            )));
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_1gb() {
        let c = MemoryConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.capacity_bytes(), 1 << 30, "1 GB (8 Gb) per Table II");
    }

    #[test]
    fn paper_pim_dbc_count() {
        let c = MemoryConfig::paper();
        // 32 banks x 64 subarrays x 16 tiles x 1 PIM DBC.
        assert_eq!(c.total_pim_dbcs(), 32 * 64 * 16);
        assert_eq!(c.total_dbcs(), 32 * 64 * 16 * 16);
    }

    #[test]
    fn pim_dbc_convention() {
        let c = MemoryConfig::paper();
        assert!(c.is_pim_dbc(0));
        assert!(!c.is_pim_dbc(1));
        assert!(!c.is_pim_dbc(15));
    }

    #[test]
    fn max_add_operands_by_trd() {
        assert_eq!(MemoryConfig::paper().with_trd(7).max_add_operands(), 5);
        assert_eq!(MemoryConfig::paper().with_trd(5).max_add_operands(), 3);
        assert_eq!(MemoryConfig::paper().with_trd(3).max_add_operands(), 2);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = MemoryConfig::paper();
        c.banks = 0;
        assert!(c.validate().is_err());

        let mut c = MemoryConfig::paper();
        c.pim_dbcs_per_tile = 17;
        assert!(c.validate().is_err());

        let mut c = MemoryConfig::paper();
        c.trd = 1;
        assert!(c.validate().is_err());

        let mut c = MemoryConfig::paper();
        c.trd = 33;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_config_valid() {
        MemoryConfig::tiny().validate().unwrap();
    }
}
