//! The hierarchical row buffer shared by the tiles of a subarray.
//!
//! CORUSCANT reuses the row buffer for two PIM duties (paper §III-A,
//! §IV-B): staging data moved between non-PIM and PIM DBCs (RowClone-style
//! copies), and holding the candidate word during the predicated max
//! function, where a *predicated reset* clears the buffer when the tested
//! bit eliminates the candidate.

use crate::address::RowAddress;
use crate::row::Row;
use serde::{Deserialize, Serialize};

/// A subarray-level row buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowBuffer {
    width: usize,
    tag: Option<RowAddress>,
    data: Row,
    valid: bool,
}

impl RowBuffer {
    /// Creates an empty row buffer of `width` bits.
    pub fn new(width: usize) -> RowBuffer {
        RowBuffer {
            width,
            tag: None,
            data: Row::zeros(width),
            valid: false,
        }
    }

    /// Buffer width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the buffer holds valid data.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The address of the buffered row, if any.
    pub fn tag(&self) -> Option<RowAddress> {
        self.tag
    }

    /// The buffered data (all zeros when invalid).
    pub fn data(&self) -> &Row {
        &self.data
    }

    /// Whether the buffer currently holds `addr` (an open-row hit).
    pub fn hits(&self, addr: RowAddress) -> bool {
        self.valid && self.tag == Some(addr)
    }

    /// Loads a row into the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the buffer width.
    pub fn load(&mut self, addr: RowAddress, data: Row) {
        assert_eq!(data.width(), self.width, "row buffer width mismatch");
        self.tag = Some(addr);
        self.data = data;
        self.valid = true;
    }

    /// Loads untagged data (e.g. a PIM intermediate that has no home row).
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the buffer width.
    pub fn load_untagged(&mut self, data: Row) {
        assert_eq!(data.width(), self.width, "row buffer width mismatch");
        self.tag = None;
        self.data = data;
        self.valid = true;
    }

    /// The predicated reset of the max function: clears the buffer to
    /// zeros if `predicate` is true, otherwise leaves it unchanged. Always
    /// leaves the buffer valid (a zero vector is meaningful data for the
    /// max subroutine).
    pub fn predicated_reset(&mut self, predicate: bool) {
        if predicate {
            self.data = Row::zeros(self.width);
            self.tag = None;
            self.valid = true;
        }
    }

    /// Invalidates the buffer.
    pub fn invalidate(&mut self) {
        self.tag = None;
        self.valid = false;
        self.data = Row::zeros(self.width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::DbcLocation;

    fn addr(row: usize) -> RowAddress {
        RowAddress::new(DbcLocation::new(0, 0, 0, 0), row)
    }

    #[test]
    fn starts_invalid() {
        let rb = RowBuffer::new(64);
        assert!(!rb.is_valid());
        assert_eq!(rb.tag(), None);
        assert!(!rb.hits(addr(0)));
    }

    #[test]
    fn load_and_hit() {
        let mut rb = RowBuffer::new(64);
        let row = Row::from_u64_words(64, &[42]);
        rb.load(addr(3), row.clone());
        assert!(rb.hits(addr(3)));
        assert!(!rb.hits(addr(4)));
        assert_eq!(rb.data(), &row);
    }

    #[test]
    fn predicated_reset_clears_only_when_true() {
        let mut rb = RowBuffer::new(64);
        let row = Row::ones(64);
        rb.load(addr(1), row.clone());
        rb.predicated_reset(false);
        assert_eq!(rb.data(), &row);
        rb.predicated_reset(true);
        assert_eq!(rb.data(), &Row::zeros(64));
        assert!(rb.is_valid(), "zero vector is valid max-candidate data");
    }

    #[test]
    fn untagged_load_has_no_tag() {
        let mut rb = RowBuffer::new(64);
        rb.load_untagged(Row::ones(64));
        assert!(rb.is_valid());
        assert_eq!(rb.tag(), None);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut rb = RowBuffer::new(64);
        rb.load(addr(2), Row::ones(64));
        rb.invalidate();
        assert!(!rb.is_valid());
        assert!(!rb.hits(addr(2)));
        assert_eq!(rb.data().popcount(), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        RowBuffer::new(64).load(addr(0), Row::zeros(32));
    }
}
