//! Bit-layout transposition between row-parallel and bit-serial storage.
//!
//! CORUSCANT stores operands *row-parallel*: bit `i` of every packed lane
//! lives in nanowire `lane·blocksize + i`, and one row holds one operand.
//! Prior DWM PIM (DW-NN) instead stores operands *bit-serial*, with the
//! bits of one operand stacked along a single nanowire. Moving data
//! between the two layouts — or preparing CPU-written data for the
//! addition carry chain — is a transposition, performed in memory with
//! one shifted read/write pair per bit position through the
//! neighbour-forwarding interconnect.
//!
//! This module provides the pure transposition (the oracle) and the
//! device-level version with cost accounting.

use crate::dbc::Dbc;
use crate::row::Row;
use crate::Result;
use coruscant_racetrack::CostMeter;

/// Transposes `bits`-bit values: input `values[v]` becomes output rows
/// where row `b` holds bit `b` of every value (bit-plane layout). The
/// inverse of [`untranspose_values`].
pub fn transpose_values(values: &[u64], bits: usize, width: usize) -> Vec<Row> {
    (0..bits)
        .map(|b| {
            let mut row = Row::zeros(width);
            for (v, &value) in values.iter().enumerate() {
                if v < width && value >> b & 1 == 1 {
                    row.set(v, true);
                }
            }
            row
        })
        .collect()
}

/// Rebuilds values from bit-plane rows (row `b` = bit `b` of each value).
pub fn untranspose_values(planes: &[Row], count: usize) -> Vec<u64> {
    (0..count)
        .map(|v| {
            planes.iter().enumerate().fold(0u64, |acc, (b, row)| {
                acc | (u64::from(row.get(v).unwrap_or(false)) << b)
            })
        })
        .collect()
}

/// Device-level transposition: reads the packed row at `src` and writes
/// `bits` bit-plane rows starting at `dst`, charging one read plus one
/// (masked, forwarded) write per plane — `2·bits` cycles plus alignment.
///
/// # Errors
///
/// Propagates memory errors (e.g. `dst + bits` beyond the DBC rows).
pub fn transpose_row(
    dbc: &mut Dbc,
    src: usize,
    dst: usize,
    blocksize: usize,
    meter: &mut CostMeter,
) -> Result<Vec<usize>> {
    let packed = dbc.read_row(src, meter)?;
    let lanes = dbc.width() / blocksize;
    let values = packed.unpack(blocksize);
    let planes = transpose_values(&values[..lanes], blocksize, dbc.width());
    let mut rows = Vec::with_capacity(blocksize);
    for (b, plane) in planes.iter().enumerate() {
        dbc.write_row(dst + b, plane, meter)?;
        rows.push(dst + b);
    }
    Ok(rows)
}

/// Device-level inverse: gathers `blocksize` bit-plane rows starting at
/// `src` back into one packed row at `dst`.
///
/// # Errors
///
/// Propagates memory errors.
pub fn untranspose_rows(
    dbc: &mut Dbc,
    src: usize,
    dst: usize,
    blocksize: usize,
    meter: &mut CostMeter,
) -> Result<Row> {
    let lanes = dbc.width() / blocksize;
    let mut planes = Vec::with_capacity(blocksize);
    for b in 0..blocksize {
        planes.push(dbc.read_row(src + b, meter)?);
    }
    let values = untranspose_values(&planes, lanes);
    let packed = Row::pack(dbc.width(), blocksize, &values);
    dbc.write_row(dst, &packed, meter)?;
    Ok(packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    #[test]
    fn pure_roundtrip() {
        let values = [0xA5u64, 0x3C, 0x00, 0xFF, 0x81, 0x7E, 0x01, 0x80];
        let planes = transpose_values(&values, 8, 64);
        assert_eq!(planes.len(), 8);
        assert_eq!(untranspose_values(&planes, values.len()), values.to_vec());
    }

    #[test]
    fn bit_plane_contents() {
        let values = [0b01u64, 0b10, 0b11, 0b00];
        let planes = transpose_values(&values, 2, 8);
        // Plane 0 = LSBs: values 0 and 2 have bit 0 set.
        assert!(planes[0].get(0).unwrap());
        assert!(!planes[0].get(1).unwrap());
        assert!(planes[0].get(2).unwrap());
        // Plane 1 = MSBs: values 1 and 2.
        assert!(!planes[1].get(0).unwrap());
        assert!(planes[1].get(1).unwrap());
        assert!(planes[1].get(2).unwrap());
    }

    #[test]
    fn device_roundtrip() {
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::pim_enabled(&config);
        let values = [200u64, 5, 0, 255, 17, 99, 128, 64];
        let packed = Row::pack(64, 8, &values);
        let mut m = CostMeter::new();
        dbc.write_row(0, &packed, &mut m).unwrap();

        let planes = transpose_row(&mut dbc, 0, 10, 8, &mut m).unwrap();
        assert_eq!(planes.len(), 8);
        // The bit-plane rows are physically present.
        for (b, &r) in planes.iter().enumerate() {
            let want = transpose_values(&values, 8, 64)[b].clone();
            assert_eq!(dbc.peek_row(r).unwrap(), want, "plane {b}");
        }

        let back = untranspose_rows(&mut dbc, 10, 20, 8, &mut m).unwrap();
        assert_eq!(back.unpack(8), values.to_vec());
        assert_eq!(dbc.peek_row(20).unwrap(), packed);
        assert!(m.total().cycles >= 2 * 8, "at least a read/write per plane");
    }

    #[test]
    fn short_value_lists_zero_fill() {
        let planes = transpose_values(&[1], 4, 16);
        assert_eq!(untranspose_values(&planes, 3), vec![1, 0, 0]);
    }
}
