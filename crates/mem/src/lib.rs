//! DWM main-memory architecture for CORUSCANT (paper §II-B, Fig. 2).
//!
//! The memory keeps the DRAM-compatible organization of channel → bank →
//! subarray → tile, and subdivides each tile into *domain-block clusters*
//! (DBCs): groups of `X` parallel nanowires, `Y` data domains deep, sharing
//! sensing circuitry and shifting in lock step. One DBC per tile is
//! PIM-enabled with a second access port spaced for transverse reads.
//!
//! Provided here:
//!
//! * [`MemoryConfig`] — the paper's Table II geometry (1 GB, 32 banks, 64
//!   subarrays/bank, 16 tiles/subarray, 15 + 1-PIM DBCs/tile).
//! * [`Dbc`] — a functional domain-block cluster built from
//!   [`coruscant_racetrack::Nanowire`]s, with lock-step shifting, row
//!   read/write, and the per-wire accesses PIM needs.
//! * [`Row`] — a 512-bit row with word packing/unpacking helpers.
//! * [`timing`] — DDR3-1600-style timing for DRAM and DWM (where the
//!   precharge slot is replaced by shift time, Table II).
//! * [`controller`] — a command-level memory controller with per-bank
//!   queuing, open-row tracking, and the *high-throughput* PIM dispatch
//!   mode used for Figs. 10–11.
//!
//! # Example
//!
//! ```
//! use coruscant_mem::{Dbc, MemoryConfig, Row};
//!
//! # fn main() -> Result<(), coruscant_mem::MemError> {
//! let config = MemoryConfig::paper();
//! let mut dbc = Dbc::pim_enabled(&config);
//!
//! let mut meter = coruscant_racetrack::CostMeter::new();
//! let row = Row::from_u64_words(config.nanowires_per_dbc, &[0xDEAD_BEEF]);
//! dbc.write_row(5, &row, &mut meter)?;
//! assert_eq!(dbc.read_row(5, &mut meter)?.to_u64_words()[0], 0xDEAD_BEEF);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod config;
pub mod controller;
pub mod dbc;
pub mod fault;
pub mod row;
pub mod rowbuffer;
pub mod timing;
pub mod trace;
pub mod transfer;
pub mod transpose;

mod error;

pub use address::{DbcLocation, RowAddress};
pub use config::MemoryConfig;
pub use controller::{MemoryController, Request};
pub use dbc::Dbc;
pub use error::MemError;
pub use fault::{FaultPlan, ScrubOutcome};
pub use row::Row;
pub use rowbuffer::RowBuffer;
pub use timing::{DeviceTiming, Protocol};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, MemError>;
