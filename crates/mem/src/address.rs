//! Physical location naming and byte-address mapping.

use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one DBC within the memory: bank → subarray → tile → DBC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DbcLocation {
    /// Bank index.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Tile index within the subarray.
    pub tile: usize,
    /// DBC index within the tile.
    pub dbc: usize,
}

impl DbcLocation {
    /// Creates a location.
    pub fn new(bank: usize, subarray: usize, tile: usize, dbc: usize) -> DbcLocation {
        DbcLocation {
            bank,
            subarray,
            tile,
            dbc,
        }
    }

    /// Validates the location against a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadLocation`] if any coordinate is out of range.
    pub fn validate(&self, config: &MemoryConfig) -> Result<()> {
        if self.bank >= config.banks
            || self.subarray >= config.subarrays_per_bank
            || self.tile >= config.tiles_per_subarray
            || self.dbc >= config.dbcs_per_tile
        {
            return Err(MemError::BadLocation(self.to_string()));
        }
        Ok(())
    }

    /// A dense linear index over all DBCs, bank-major.
    pub fn linear_index(&self, config: &MemoryConfig) -> u64 {
        (((self.bank as u64 * config.subarrays_per_bank as u64 + self.subarray as u64)
            * config.tiles_per_subarray as u64
            + self.tile as u64)
            * config.dbcs_per_tile as u64)
            + self.dbc as u64
    }

    /// Whether this DBC is PIM-enabled under the configuration's
    /// convention.
    pub fn is_pim(&self, config: &MemoryConfig) -> bool {
        config.is_pim_dbc(self.dbc)
    }
}

impl fmt::Display for DbcLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bank {} subarray {} tile {} dbc {}",
            self.bank, self.subarray, self.tile, self.dbc
        )
    }
}

/// A row within a DBC: the unit the `cpim` instruction's `src` names
/// ("which DBC and nanowire position to align to the leftmost access
/// port", paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowAddress {
    /// The DBC holding the row.
    pub location: DbcLocation,
    /// Row (domain) index within the DBC.
    pub row: usize,
}

impl RowAddress {
    /// Creates a row address.
    pub fn new(location: DbcLocation, row: usize) -> RowAddress {
        RowAddress { location, row }
    }

    /// Decodes a byte address into a row address plus byte offset within
    /// the row, using a row-interleaved mapping: consecutive rows walk
    /// DBC-major order so that sequential addresses spread across banks for
    /// bank-level parallelism (the SALP-style organization the paper
    /// adopts).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadLocation`] if the address exceeds capacity.
    pub fn decode(addr: u64, config: &MemoryConfig) -> Result<(RowAddress, usize)> {
        if addr >= config.capacity_bytes() {
            return Err(MemError::BadLocation(format!(
                "byte address {addr:#x} beyond capacity {:#x}",
                config.capacity_bytes()
            )));
        }
        let row_bytes = (config.nanowires_per_dbc / 8) as u64;
        let row_index = addr / row_bytes;
        let offset = (addr % row_bytes) as usize;

        // Interleave: bank is the fastest-varying coordinate.
        let bank = (row_index % config.banks as u64) as usize;
        let rest = row_index / config.banks as u64;
        let subarray = (rest % config.subarrays_per_bank as u64) as usize;
        let rest = rest / config.subarrays_per_bank as u64;
        let tile = (rest % config.tiles_per_subarray as u64) as usize;
        let rest = rest / config.tiles_per_subarray as u64;
        let dbc = (rest % config.dbcs_per_tile as u64) as usize;
        let row = (rest / config.dbcs_per_tile as u64) as usize;

        let location = DbcLocation::new(bank, subarray, tile, dbc);
        debug_assert!(row < config.rows_per_dbc);
        Ok((RowAddress { location, row }, offset))
    }

    /// Encodes this row address back to the byte address of its first byte
    /// (the inverse of [`RowAddress::decode`] at offset 0).
    pub fn encode(&self, config: &MemoryConfig) -> u64 {
        let row_bytes = (config.nanowires_per_dbc / 8) as u64;
        let l = &self.location;
        let row_index = ((((self.row as u64) * config.dbcs_per_tile as u64 + l.dbc as u64)
            * config.tiles_per_subarray as u64
            + l.tile as u64)
            * config.subarrays_per_bank as u64
            + l.subarray as u64)
            * config.banks as u64
            + l.bank as u64;
        row_index * row_bytes
    }
}

impl fmt::Display for RowAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} row {}", self.location, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_validation() {
        let c = MemoryConfig::paper();
        DbcLocation::new(31, 63, 15, 15).validate(&c).unwrap();
        assert!(DbcLocation::new(32, 0, 0, 0).validate(&c).is_err());
        assert!(DbcLocation::new(0, 64, 0, 0).validate(&c).is_err());
        assert!(DbcLocation::new(0, 0, 16, 0).validate(&c).is_err());
        assert!(DbcLocation::new(0, 0, 0, 16).validate(&c).is_err());
    }

    #[test]
    fn linear_index_is_dense_and_unique() {
        let c = MemoryConfig::tiny();
        let mut seen = std::collections::HashSet::new();
        for b in 0..c.banks {
            for s in 0..c.subarrays_per_bank {
                for t in 0..c.tiles_per_subarray {
                    for d in 0..c.dbcs_per_tile {
                        let idx = DbcLocation::new(b, s, t, d).linear_index(&c);
                        assert!(seen.insert(idx), "duplicate index {idx}");
                        assert!(idx < c.total_dbcs());
                    }
                }
            }
        }
        assert_eq!(seen.len() as u64, c.total_dbcs());
    }

    #[test]
    fn decode_encode_roundtrip() {
        let c = MemoryConfig::tiny();
        let row_bytes = (c.nanowires_per_dbc / 8) as u64;
        for addr in (0..c.capacity_bytes()).step_by((row_bytes * 7 + row_bytes) as usize) {
            let (ra, off) = RowAddress::decode(addr, &c).unwrap();
            ra.location.validate(&c).unwrap();
            assert!(ra.row < c.rows_per_dbc);
            assert_eq!(ra.encode(&c) + off as u64, addr);
        }
    }

    #[test]
    fn sequential_rows_interleave_across_banks() {
        let c = MemoryConfig::paper();
        let row_bytes = (c.nanowires_per_dbc / 8) as u64;
        let (r0, _) = RowAddress::decode(0, &c).unwrap();
        let (r1, _) = RowAddress::decode(row_bytes, &c).unwrap();
        assert_eq!(r0.location.bank, 0);
        assert_eq!(r1.location.bank, 1, "bank is the fastest coordinate");
    }

    #[test]
    fn address_beyond_capacity_rejected() {
        let c = MemoryConfig::tiny();
        assert!(RowAddress::decode(c.capacity_bytes(), &c).is_err());
    }

    #[test]
    fn pim_location_follows_config_convention() {
        let c = MemoryConfig::paper();
        assert!(DbcLocation::new(0, 0, 0, 0).is_pim(&c));
        assert!(!DbcLocation::new(0, 0, 0, 5).is_pim(&c));
    }
}
