//! A memory row: one bit per nanowire of a DBC.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// One row of a DBC: `width` bits, bit `i` belonging to nanowire `i`.
///
/// Rows are the operand granularity of bulk-bitwise PIM: a logic operation
/// combines whole rows bitwise, and an addition treats a row as `width /
/// blocksize` packed integers (paper §III-E: blocksize ∈ {8, …, 512}).
///
/// # Example
///
/// ```
/// use coruscant_mem::Row;
/// let a = Row::from_u64_words(64, &[0b1010]);
/// let b = Row::from_u64_words(64, &[0b0110]);
/// assert_eq!((&a & &b).to_u64_words()[0], 0b0010);
/// assert_eq!((&a | &b).to_u64_words()[0], 0b1110);
/// assert_eq!((&a ^ &b).to_u64_words()[0], 0b1100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Row {
    bits: Vec<bool>,
}

impl Row {
    /// Creates an all-zero row of `width` bits.
    pub fn zeros(width: usize) -> Row {
        Row {
            bits: vec![false; width],
        }
    }

    /// Creates an all-one row of `width` bits.
    pub fn ones(width: usize) -> Row {
        Row {
            bits: vec![true; width],
        }
    }

    /// Creates a row from raw bits (bit `i` → nanowire `i`).
    pub fn from_bits(bits: Vec<bool>) -> Row {
        Row { bits }
    }

    /// Creates a `width`-bit row by packing little-endian 64-bit words:
    /// word `w` bit `b` lands at row bit `64 * w + b`. Missing words are
    /// zero-filled; excess bits beyond `width` are discarded.
    pub fn from_u64_words(width: usize, words: &[u64]) -> Row {
        let mut bits = vec![false; width];
        for (i, bit) in bits.iter_mut().enumerate() {
            let w = i / 64;
            let b = i % 64;
            if let Some(word) = words.get(w) {
                *bit = (word >> b) & 1 == 1;
            }
        }
        Row { bits }
    }

    /// Packs fixed-width integers into a row: value `v` of `values` occupies
    /// bits `[v * blocksize, (v+1) * blocksize)`, little-endian within the
    /// block. Values wider than `blocksize` bits are truncated.
    pub fn pack(width: usize, blocksize: usize, values: &[u64]) -> Row {
        assert!(
            blocksize > 0 && blocksize <= 64,
            "blocksize 1..=64 supported"
        );
        let mut bits = vec![false; width];
        for (v, &value) in values.iter().enumerate() {
            for b in 0..blocksize {
                let i = v * blocksize + b;
                if i >= width {
                    break;
                }
                bits[i] = (value >> b) & 1 == 1;
            }
        }
        Row { bits }
    }

    /// Unpacks the row into `width / blocksize` fixed-width integers.
    pub fn unpack(&self, blocksize: usize) -> Vec<u64> {
        assert!(
            blocksize > 0 && blocksize <= 64,
            "blocksize 1..=64 supported"
        );
        let n = self.bits.len() / blocksize;
        (0..n)
            .map(|v| {
                (0..blocksize).fold(0u64, |acc, b| {
                    acc | (u64::from(self.bits[v * blocksize + b]) << b)
                })
            })
            .collect()
    }

    /// The row as little-endian 64-bit words (last word zero-padded).
    pub fn to_u64_words(&self) -> Vec<u64> {
        let n = self.bits.len().div_ceil(64);
        (0..n)
            .map(|w| {
                (0..64).fold(0u64, |acc, b| {
                    let i = w * 64 + b;
                    if i < self.bits.len() && self.bits[i] {
                        acc | (1 << b)
                    } else {
                        acc
                    }
                })
            })
            .collect()
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Bit `i`, or `None` out of range.
    pub fn get(&self, i: usize) -> Option<bool> {
        self.bits.get(i).copied()
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, bit: bool) {
        self.bits[i] = bit;
    }

    /// Number of `1` bits.
    pub fn popcount(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Iterates over the bits, nanowire order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// Borrows the raw bits.
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }

    /// Consumes the row, returning the raw bits.
    pub fn into_bits(self) -> Vec<bool> {
        self.bits
    }
}

impl FromIterator<bool> for Row {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Row {
        Row {
            bits: iter.into_iter().collect(),
        }
    }
}

macro_rules! rowwise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Row {
            type Output = Row;
            fn $method(self, rhs: &Row) -> Row {
                assert_eq!(
                    self.bits.len(),
                    rhs.bits.len(),
                    "bitwise ops need equal-width rows"
                );
                Row {
                    bits: self
                        .bits
                        .iter()
                        .zip(&rhs.bits)
                        .map(|(&a, &b)| a $op b)
                        .collect(),
                }
            }
        }
    };
}

rowwise_binop!(BitAnd, bitand, &);
rowwise_binop!(BitOr, bitor, |);
rowwise_binop!(BitXor, bitxor, ^);

impl Not for &Row {
    type Output = Row;
    fn not(self) -> Row {
        Row {
            bits: self.bits.iter().map(|&b| !b).collect(),
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Row[{} bits, {} ones]", self.bits.len(), self.popcount())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let values = [1u64, 200, 37, 255, 0, 128, 99, 64];
        let row = Row::pack(64, 8, &values);
        assert_eq!(row.unpack(8), values.to_vec());
    }

    #[test]
    fn pack_truncates_oversized_values() {
        let row = Row::pack(16, 8, &[300, 5]); // 300 = 0b1_0010_1100 -> 0x2C
        assert_eq!(row.unpack(8), vec![300 & 0xFF, 5]);
    }

    #[test]
    fn word_roundtrip() {
        let words = [0xDEAD_BEEF_CAFE_F00D, 0x0123_4567_89AB_CDEF];
        let row = Row::from_u64_words(128, &words);
        assert_eq!(row.to_u64_words(), words.to_vec());
    }

    #[test]
    fn bitwise_ops_match_u64() {
        let a = 0xF0F0_1234u64;
        let b = 0x0FF0_4321u64;
        let ra = Row::from_u64_words(64, &[a]);
        let rb = Row::from_u64_words(64, &[b]);
        assert_eq!((&ra & &rb).to_u64_words()[0], a & b);
        assert_eq!((&ra | &rb).to_u64_words()[0], a | b);
        assert_eq!((&ra ^ &rb).to_u64_words()[0], a ^ b);
        assert_eq!((!&ra).to_u64_words()[0], !a);
    }

    #[test]
    fn popcount_and_get_set() {
        let mut r = Row::zeros(32);
        assert_eq!(r.popcount(), 0);
        r.set(3, true);
        r.set(30, true);
        assert_eq!(r.popcount(), 2);
        assert_eq!(r.get(3), Some(true));
        assert_eq!(r.get(4), Some(false));
        assert_eq!(r.get(32), None);
        assert_eq!(Row::ones(10).popcount(), 10);
    }

    #[test]
    fn collect_from_iterator() {
        let r: Row = (0..8).map(|i| i % 2 == 0).collect();
        assert_eq!(r.width(), 8);
        assert_eq!(r.popcount(), 4);
    }

    #[test]
    #[should_panic(expected = "equal-width")]
    fn mismatched_widths_panic() {
        let _ = &Row::zeros(8) & &Row::zeros(16);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Row::zeros(4).to_string().is_empty());
    }
}
