//! Property-based tests for the memory-architecture layer.

use coruscant_mem::transpose::{transpose_values, untranspose_values};
use coruscant_mem::{Dbc, MemoryConfig, Row, RowAddress};
use coruscant_racetrack::CostMeter;
use proptest::prelude::*;

proptest! {
    /// Row pack/unpack round-trips for every supported blocksize.
    #[test]
    fn row_pack_roundtrip(
        values in proptest::collection::vec(any::<u64>(), 1..8),
        bs_idx in 0usize..4,
    ) {
        let bs = [8usize, 16, 32, 64][bs_idx];
        let width = 64;
        let lanes = width / bs;
        let mask = if bs == 64 { u64::MAX } else { (1 << bs) - 1 };
        let vals: Vec<u64> = values.iter().take(lanes).map(|v| v & mask).collect();
        let row = Row::pack(width, bs, &vals);
        let got = row.unpack(bs);
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(got[i], *v);
        }
    }

    /// Bitwise row operators agree with u64 semantics.
    #[test]
    fn row_ops_match_u64(a: u64, b: u64) {
        let ra = Row::from_u64_words(64, &[a]);
        let rb = Row::from_u64_words(64, &[b]);
        prop_assert_eq!((&ra & &rb).to_u64_words()[0], a & b);
        prop_assert_eq!((&ra | &rb).to_u64_words()[0], a | b);
        prop_assert_eq!((&ra ^ &rb).to_u64_words()[0], a ^ b);
        prop_assert_eq!((!&ra).to_u64_words()[0], !a);
        prop_assert_eq!(ra.popcount() as u32, a.count_ones());
    }

    /// Byte-address decode/encode round-trips across the address space.
    #[test]
    fn address_roundtrip(addr_frac in 0.0f64..1.0) {
        let config = MemoryConfig::tiny();
        let row_bytes = (config.nanowires_per_dbc / 8) as u64;
        let addr = ((config.capacity_bytes() - 1) as f64 * addr_frac) as u64;
        let aligned = addr / row_bytes * row_bytes;
        let (ra, off) = RowAddress::decode(aligned, &config).unwrap();
        prop_assert_eq!(off, 0);
        prop_assert_eq!(ra.encode(&config), aligned);
        ra.location.validate(&config).unwrap();
        prop_assert!(ra.row < config.rows_per_dbc);
    }

    /// Any sequence of row writes is readable back, whatever the order of
    /// rows touched (the shift machinery never corrupts other rows).
    #[test]
    fn dbc_random_row_traffic(
        writes in proptest::collection::vec((0usize..32, any::<u64>()), 1..24),
    ) {
        let config = MemoryConfig::tiny();
        let mut dbc = Dbc::pim_enabled(&config);
        let mut meter = CostMeter::new();
        let mut model = std::collections::HashMap::new();
        for (r, v) in &writes {
            let row = Row::from_u64_words(64, &[*v]);
            dbc.write_row(*r, &row, &mut meter).unwrap();
            model.insert(*r, *v);
        }
        for (r, v) in &model {
            let got = dbc.read_row(*r, &mut meter).unwrap();
            prop_assert_eq!(got.to_u64_words()[0], *v, "row {}", r);
        }
    }

    /// Bit-plane transposition is a bijection.
    #[test]
    fn transpose_bijection(values in proptest::collection::vec(0u64..256, 1..16)) {
        let planes = transpose_values(&values, 8, 64);
        prop_assert_eq!(planes.len(), 8);
        let back = untranspose_values(&planes, values.len());
        prop_assert_eq!(back, values);
    }

    /// Controller request completions never decrease as more requests are
    /// submitted (time moves forward).
    #[test]
    fn controller_time_is_monotone(rows in proptest::collection::vec(0u64..200, 1..40)) {
        use coruscant_mem::controller::Request;
        use coruscant_mem::MemoryController;
        let config = MemoryConfig::tiny();
        let row_bytes = (config.nanowires_per_dbc / 8) as u64;
        let mut ctrl = MemoryController::new(config.clone());
        let mut last_per_bank = std::collections::HashMap::new();
        for r in rows {
            let addr = (r * row_bytes) % config.capacity_bytes();
            let (ra, _) = RowAddress::decode(addr, &config).unwrap();
            let done = ctrl.submit(Request::Read(addr)).unwrap();
            if let Some(prev) = last_per_bank.insert(ra.location.bank, done) {
                prop_assert!(done >= prev, "bank time went backwards");
            }
        }
    }
}
