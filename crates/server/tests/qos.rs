//! Server-level QoS: weighted-fair per-client quotas, throttled
//! rejections, deadline expiry accounting, and the [`QosStats`] surface.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant_qos::{ClientConfig, QosOptions, RateQuota};
use coruscant_runtime::RuntimeOptions;
use coruscant_server::{Rejected, ServeError, Server, ServerOptions, SubmitOptions};
use std::time::Duration;

fn and_program(config: &MemoryConfig, a: u64, b: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    let width = config.nanowires_per_dbc;
    let lanes = width.div_ceil(64);
    let bs = BlockSize::new(64.min(width)).unwrap();
    let row = |r| RowAddress::new(loc, r);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: row(4),
                values: vec![a; lanes],
                lane: 64,
            },
            Step::Load {
                addr: row(5),
                values: vec![b; lanes],
                lane: 64,
            },
            Step::Exec(CpimInstr::new(CpimOpcode::And, row(4), 2, bs, Some(row(20))).unwrap()),
            Step::Readout {
                label: "and".into(),
                addr: row(20),
                lane: 64,
            },
        ],
    }
}

/// A zero-rate quota admits exactly its burst, then throttles; the
/// rejections surface as [`Rejected::Throttled`] and the final stats
/// count them in both `rejected_throttled` and the per-client QoS view.
#[test]
fn quota_throttles_to_burst_and_stats_balance() {
    let config = MemoryConfig::tiny();
    let qos = QosOptions::default()
        .enabled()
        .with_client(ClientConfig::new("tenant", 1.0).with_quota(RateQuota::new(0.0, 3.0)));
    let server = Server::start(
        config.clone(),
        ServerOptions {
            qos,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();
    let opts = SubmitOptions::default().for_client("tenant");
    let mut handles = Vec::new();
    let mut throttled = 0u64;
    for i in 0..8 {
        match client.submit_with(and_program(&config, i, i + 1), opts.clone()) {
            Ok(h) => handles.push(h),
            Err(Rejected::Throttled) => throttled += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert_eq!(handles.len(), 3, "zero-rate quota admits exactly burst");
    assert_eq!(throttled, 5);
    for h in handles {
        h.wait().expect("admitted jobs complete");
    }
    let stats = server.shutdown().unwrap();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.rejected_throttled, 5);
    let tenant = stats.qos.client("tenant").expect("tenant accounted");
    assert_eq!(tenant.accepted, 3);
    assert_eq!(tenant.throttled, 5);
    assert_eq!(tenant.served, 3);
}

/// Anonymous submissions (no client name) bypass the fair queue even
/// when QoS is enabled — they are never throttled and never accounted.
#[test]
fn anonymous_submissions_bypass_qos() {
    let config = MemoryConfig::tiny();
    let qos = QosOptions::default()
        .enabled()
        .with_client(ClientConfig::new("tenant", 1.0).with_quota(RateQuota::new(0.0, 1.0)));
    let server = Server::start(
        config.clone(),
        ServerOptions {
            qos,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            client
                .submit(and_program(&config, i, i))
                .expect("anonymous submissions are never throttled")
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let stats = server.shutdown().unwrap();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.rejected_throttled, 0);
    assert_eq!(stats.qos.client("tenant").unwrap().accepted, 0);
}

/// With the scheduler gate held closed, short-deadline jobs expire at
/// issue time; the server resolves them [`ServeError::Expired`], counts
/// them, and the client's fair-queue backlog is released as expiries.
#[test]
fn paused_scheduler_expires_deadline_jobs() {
    const JOBS: u64 = 4;
    let config = MemoryConfig::tiny();
    let qos = QosOptions::default()
        .enabled()
        .with_client(ClientConfig::new("tenant", 2.0));
    let server = Server::start(
        config.clone(),
        ServerOptions {
            runtime: RuntimeOptions::default().paused(),
            qos,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();
    let opts = SubmitOptions::default()
        .for_client("tenant")
        .with_deadline(Duration::from_millis(20));
    let handles: Vec<_> = (0..JOBS)
        .map(|i| {
            client
                .submit_with(and_program(&config, i, i + 2), opts.clone())
                .expect("paused queue accepts")
        })
        .collect();
    std::thread::sleep(Duration::from_millis(60));
    server.resume();
    for h in handles {
        match h.wait() {
            Err(ServeError::Expired) => {}
            other => panic!("expected Expired, got {other:?}"),
        }
    }
    let stats = server.shutdown().unwrap();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.expired, JOBS);
    let tenant = stats.qos.client("tenant").expect("tenant accounted");
    assert_eq!(tenant.accepted, JOBS);
    assert_eq!(tenant.expired, JOBS);
    assert_eq!(tenant.served, 0);
}

/// Deadline-hit accounting: generously-deadlined jobs that complete
/// count as hits, and the QoS stats ride the shutdown JSON.
#[test]
fn deadline_hits_and_stats_serialize() {
    let config = MemoryConfig::tiny();
    let qos = QosOptions::default()
        .enabled()
        .with_client(ClientConfig::new("tenant", 1.0));
    let server = Server::start(
        config.clone(),
        ServerOptions {
            qos,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();
    let opts = SubmitOptions::default()
        .for_client("tenant")
        .with_deadline(Duration::from_secs(30));
    let handles: Vec<_> = (0..5)
        .map(|i| {
            client
                .submit_with(and_program(&config, i, 7), opts.clone())
                .unwrap()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let stats = server.shutdown().unwrap();
    assert!(stats.balanced(), "{stats:?}");
    let tenant = stats.qos.client("tenant").unwrap();
    assert_eq!(tenant.deadline_hits, 5);
    assert_eq!(tenant.deadline_misses, 0);
    assert!((tenant.deadline_hit_rate() - 1.0).abs() < 1e-12);
    let json = serde::json::to_string(&stats);
    assert!(json.contains("\"qos\""));
    assert!(json.contains("\"rejected_throttled\""));
    assert!(json.contains("\"tenant\""));
}

/// Two named clients with equal offered load but unequal weights: the
/// fair queue tracks both and total accepted balances against the
/// server-level accounting.
#[test]
fn two_clients_account_independently() {
    let config = MemoryConfig::tiny();
    let qos = QosOptions::default()
        .enabled()
        .with_client(ClientConfig::new("gold", 4.0))
        .with_client(ClientConfig::new("bronze", 1.0));
    let server = Server::start(
        config.clone(),
        ServerOptions {
            qos,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();
    let mut handles = Vec::new();
    for i in 0..6 {
        let name = if i % 2 == 0 { "gold" } else { "bronze" };
        let opts = SubmitOptions::default().for_client(name);
        handles.push(
            client
                .submit_with(and_program(&config, i, 3), opts)
                .unwrap(),
        );
    }
    for h in handles {
        h.wait().unwrap();
    }
    let stats = server.shutdown().unwrap();
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.qos.total_accepted(), 6);
    assert_eq!(stats.qos.client("gold").unwrap().accepted, 3);
    assert_eq!(stats.qos.client("bronze").unwrap().accepted, 3);
    assert!((stats.qos.client("gold").unwrap().weight - 4.0).abs() < 1e-12);
}
