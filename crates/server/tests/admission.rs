//! Property tests for the admission-controlled serving frontend: every
//! accepted job completes exactly once with correct outputs, rejected
//! jobs never touch a bank, and the final accounting always balances.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant_runtime::RuntimeOptions;
use coruscant_server::{
    AdmissionOptions, Priority, Rejected, Server, ServerOptions, SubmitOptions,
};
use proptest::prelude::*;

/// A minimal two-operand AND job: load, fuse, read back. The readout is
/// `a & b`, so completions are checkable.
fn and_program(config: &MemoryConfig, a: u64, b: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0); // nominal; the scheduler retargets
    let width = config.nanowires_per_dbc;
    let lanes = width.div_ceil(64);
    let bs = BlockSize::new(64.min(width)).unwrap();
    let row = |r| RowAddress::new(loc, r);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: row(4),
                values: vec![a; lanes],
                lane: 64,
            },
            Step::Load {
                addr: row(5),
                values: vec![b; lanes],
                lane: 64,
            },
            Step::Exec(CpimInstr::new(CpimOpcode::And, row(4), 2, bs, Some(row(20))).unwrap()),
            Step::Readout {
                label: "and".into(),
                addr: row(20),
                lane: 64,
            },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under a gated scheduler and a tiny queue, admission control sheds
    /// deterministically — and every verdict is accounted for exactly
    /// once: accepted handles resolve Ok with the right value, rejected
    /// submissions never become runtime jobs.
    #[test]
    fn accepted_complete_once_rejected_never_execute(
        operands in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..24),
        queue_capacity in 1usize..8,
        priorities in proptest::collection::vec(0usize..3, 24),
    ) {
        let config = MemoryConfig::tiny();
        let mut runtime = RuntimeOptions::default().paused();
        runtime.queue_capacity = queue_capacity;
        let server = Server::start(
            config.clone(),
            ServerOptions {
                runtime,
                admission: AdmissionOptions::enabled(),
                ..ServerOptions::default()
            },
        ).unwrap();
        let client = server.client();

        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for (i, &(a, b)) in operands.iter().enumerate() {
            let priority = Priority::ALL[priorities[i]];
            match client.submit_with(
                and_program(&config, a, b),
                SubmitOptions::priority(priority),
            ) {
                Ok(handle) => accepted.push((handle, a & b)),
                Err(Rejected::Overload | Rejected::QueueFull) => rejected += 1,
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        let n_accepted = accepted.len() as u64;
        let stats = server.shutdown().unwrap();

        prop_assert!(stats.balanced(), "{stats:?}");
        prop_assert_eq!(stats.submitted, operands.len() as u64);
        prop_assert_eq!(stats.accepted, n_accepted);
        prop_assert_eq!(stats.completed, n_accepted, "accepted all complete");
        prop_assert_eq!(stats.rejected(), rejected);
        // Rejected jobs never touched a bank: the wrapped runtime only
        // ever saw the accepted ones.
        prop_assert_eq!(stats.runtime.jobs, n_accepted);
        for (handle, want) in accepted {
            let done = handle.wait().expect("accepted job resolves Ok");
            prop_assert_eq!(done.outputs.len(), 1);
            prop_assert!(done.outputs[0].1.iter().all(|&w| w == want));
        }
    }

    /// With admission disabled (the deterministic default) nothing is
    /// ever shed: submitted == accepted == completed, even through a
    /// queue far smaller than the workload (blocking backpressure).
    #[test]
    fn disabled_admission_accepts_and_completes_everything(
        operands in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..24),
        queue_capacity in 1usize..4,
    ) {
        let config = MemoryConfig::tiny();
        let runtime = RuntimeOptions { queue_capacity, ..RuntimeOptions::default() };
        let server = Server::start(
            config.clone(),
            ServerOptions {
                runtime,
                admission: AdmissionOptions::default(),
                ..ServerOptions::default()
            },
        ).unwrap();
        let client = server.client();
        let handles: Vec<_> = operands
            .iter()
            .map(|&(a, b)| (client.submit(and_program(&config, a, b)).unwrap(), a & b))
            .collect();
        let stats = server.shutdown().unwrap();
        prop_assert!(stats.balanced(), "{stats:?}");
        prop_assert_eq!(stats.accepted, operands.len() as u64);
        prop_assert_eq!(stats.completed, operands.len() as u64);
        prop_assert_eq!(stats.rejected(), 0);
        for (handle, want) in handles {
            let done = handle.wait().expect("job resolves Ok");
            prop_assert!(done.outputs[0].1.iter().all(|&w| w == want));
        }
    }
}
