//! Closed-loop load smoke test: several client threads drive the server
//! concurrently, each submitting and waiting in a loop. Asserts zero
//! lost completions, balanced accounting, and a sane p99 — the same
//! check CI runs as its server smoke job.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant_server::{Server, ServerOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn and_program(config: &MemoryConfig, a: u64, b: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    let width = config.nanowires_per_dbc;
    let lanes = width.div_ceil(64);
    let bs = BlockSize::new(64.min(width)).unwrap();
    let row = |r| RowAddress::new(loc, r);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: row(4),
                values: vec![a; lanes],
                lane: 64,
            },
            Step::Load {
                addr: row(5),
                values: vec![b; lanes],
                lane: 64,
            },
            Step::Exec(CpimInstr::new(CpimOpcode::And, row(4), 2, bs, Some(row(20))).unwrap()),
            Step::Readout {
                label: "and".into(),
                addr: row(20),
                lane: 64,
            },
        ],
    }
}

#[test]
fn closed_loop_load_loses_nothing() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;

    let config = MemoryConfig::tiny();
    let server = Server::start(config.clone(), ServerOptions::default()).unwrap();
    let config = Arc::new(config);

    let joins: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = server.client();
            let config = Arc::clone(&config);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(PER_CLIENT);
                for i in 0..PER_CLIENT {
                    let a = (t * PER_CLIENT + i) as u64;
                    let b = a.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let started = Instant::now();
                    let done = client
                        .submit(and_program(&config, a, b))
                        .expect("closed-loop submission admitted")
                        .wait()
                        .expect("closed-loop job completes");
                    latencies.push(started.elapsed());
                    assert!(done.outputs[0].1.iter().all(|&w| w == a & b));
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = joins
        .into_iter()
        .flat_map(|j| j.join().expect("client thread"))
        .collect();
    latencies.sort();
    let total = CLIENTS * PER_CLIENT;
    assert_eq!(latencies.len(), total);
    let p99 = latencies[(total * 99).div_ceil(100) - 1];
    // Generous bound — this guards against pathological stalls (a wedged
    // router or scheduler), not normal jitter.
    assert!(p99 < Duration::from_secs(5), "p99 {p99:?}");

    let stats = server.shutdown().unwrap();
    assert_eq!(stats.lost, 0, "zero lost completions");
    assert_eq!(stats.submitted, total as u64);
    assert_eq!(stats.completed, total as u64);
    assert!(stats.balanced(), "{stats:?}");
}
