//! Terminal races on job handles: expiry vs completion, late cancels,
//! waker registration vs pre-resolution, and submissions racing drain.
//! Every race must end with the handle resolved exactly once and the
//! server's accounting balanced.

use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::program::{PimProgram, Step};
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant_runtime::RuntimeOptions;
use coruscant_server::{Rejected, ServeError, Server, ServerOptions, SubmitOptions};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

fn add_job(a: u64) -> PimProgram {
    let loc = DbcLocation::new(0, 0, 0, 0);
    PimProgram {
        steps: vec![
            Step::Load {
                addr: RowAddress::new(loc, 4),
                values: vec![a; 8],
                lane: 8,
            },
            Step::Load {
                addr: RowAddress::new(loc, 5),
                values: vec![7; 8],
                lane: 8,
            },
            Step::Exec(
                CpimInstr::new(
                    CpimOpcode::Add,
                    RowAddress::new(loc, 4),
                    2,
                    BlockSize::new(8).unwrap(),
                    Some(RowAddress::new(loc, 20)),
                )
                .unwrap(),
            ),
            Step::Readout {
                label: "sum".into(),
                addr: RowAddress::new(loc, 20),
                lane: 8,
            },
        ],
    }
}

struct FlagWaker(AtomicBool);

impl Wake for FlagWaker {
    fn wake(self: Arc<Self>) {
        self.0.store(true, Ordering::Release);
    }
}

/// Completion beats the deadline sweep: a job that finishes well inside
/// its deadline resolves `Ok` exactly once, and the sweeper's later
/// firing for the already-resolved id is moot.
#[test]
fn completion_beats_expiry_sweep() {
    let server = Server::start(MemoryConfig::tiny(), ServerOptions::default()).unwrap();
    let client = server.client();
    let handle = client
        .submit_with(
            add_job(1),
            SubmitOptions::default().with_deadline(Duration::from_millis(300)),
        )
        .unwrap();
    let done = handle.wait().expect("completes well inside the deadline");
    assert_eq!(done.outputs[0].1[0], 8);
    // Let the sweeper fire on the stale heap entry before draining.
    std::thread::sleep(Duration::from_millis(400));
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.expired, 0, "a resolved job cannot expire");
    assert!(stats.balanced(), "{stats:?}");
}

/// A cancel issued after the job completed is a no-op: the resolution
/// stands and nothing double-counts.
#[test]
fn late_cancel_after_completion_is_moot() {
    let server = Server::start(MemoryConfig::tiny(), ServerOptions::default()).unwrap();
    let client = server.client();
    let mut handle = client.submit(add_job(2)).unwrap();
    let id = handle.id();
    // Wait for the resolution without consuming it.
    while !handle.is_done() {
        std::thread::sleep(Duration::from_millis(2));
    }
    client.cancel(id);
    std::thread::sleep(Duration::from_millis(30));
    assert!(handle.try_take().unwrap().is_ok(), "the completion stands");
    let stats = server.shutdown().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 0);
    assert!(stats.balanced(), "{stats:?}");
}

/// A waker registered while the job is pending is woken by the
/// resolution, and the follow-up poll is `Ready`.
#[test]
fn registered_waker_is_woken_by_resolution() {
    let server = Server::start(
        MemoryConfig::tiny(),
        ServerOptions {
            runtime: RuntimeOptions::default().paused(),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let client = server.client();
    let mut handle = client.submit(add_job(3)).unwrap();

    let flag = Arc::new(FlagWaker(AtomicBool::new(false)));
    let waker = Waker::from(Arc::clone(&flag));
    let mut cx = Context::from_waker(&waker);
    assert!(
        Pin::new(&mut handle).poll(&mut cx).is_pending(),
        "gated scheduler: nothing resolved yet"
    );
    server.resume();
    // The router's resolution must call our waker.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !flag.0.load(Ordering::Acquire) {
        assert!(std::time::Instant::now() < deadline, "waker never woken");
        std::thread::sleep(Duration::from_millis(2));
    }
    match Pin::new(&mut handle).poll(&mut cx) {
        Poll::Ready(Ok(done)) => assert_eq!(done.outputs[0].1[0], 10),
        other => panic!("woken poll must be ready-ok: {other:?}"),
    }
    let stats = server.shutdown().unwrap();
    assert!(stats.balanced(), "{stats:?}");
}

/// Polling a handle whose completion raced ahead of the first poll is
/// immediately `Ready` — no waker registration, no wake needed.
#[test]
fn poll_after_pre_resolution_is_ready() {
    let server = Server::start(MemoryConfig::tiny(), ServerOptions::default()).unwrap();
    let client = server.client();
    let mut handle = client.submit(add_job(4)).unwrap();
    while !handle.is_done() {
        std::thread::sleep(Duration::from_millis(2));
    }
    let flag = Arc::new(FlagWaker(AtomicBool::new(false)));
    let waker = Waker::from(Arc::clone(&flag));
    let mut cx = Context::from_waker(&waker);
    match Pin::new(&mut handle).poll(&mut cx) {
        Poll::Ready(Ok(done)) => assert_eq!(done.outputs[0].1[0], 11),
        other => panic!("pre-resolved poll must be ready: {other:?}"),
    }
    assert!(
        !flag.0.load(Ordering::Acquire),
        "no wake was needed or issued"
    );
    server.shutdown().unwrap();
}

/// Submissions racing `shutdown` never strand a handle: each submit
/// either rejects `Closed` or yields a handle that resolves (drain
/// flushes accepted work), and the final accounting balances with
/// nothing lost.
#[test]
fn submissions_racing_shutdown_never_strand_handles() {
    let server = Server::start(MemoryConfig::tiny(), ServerOptions::default()).unwrap();
    let client = server.client();
    let submitter = std::thread::spawn(move || {
        let mut handles = Vec::new();
        let mut rejected = 0u64;
        for tag in 0..200u64 {
            match client.submit(add_job(tag)) {
                Ok(h) => handles.push(h),
                Err(Rejected::Closed) => {
                    // Draining: every further submit is Closed too. Stop
                    // so no increment races the final counter snapshot.
                    rejected += 1;
                    break;
                }
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        (handles, rejected)
    });
    std::thread::sleep(Duration::from_millis(5));
    let stats = server.shutdown().unwrap();
    let (handles, rejected) = submitter.join().unwrap();
    assert!(handles.len() as u64 + rejected <= 200);
    for h in handles {
        match h.wait() {
            Ok(_) | Err(ServeError::Lost) => {}
            Err(e) => panic!("unexpected fate at drain: {e}"),
        }
    }
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(stats.accepted + stats.rejected(), stats.submitted);
}
