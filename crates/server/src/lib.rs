//! The CORUSCANT serving frontend: an async request API over the
//! batch-shaped execution runtime.
//!
//! The runtime (`coruscant-runtime`) is session-shaped: submissions go
//! into a bounded queue and every result materializes at
//! [`Runtime::finish`]. That fits batch campaigns, not serving. This
//! crate wraps a runtime in a [`Server`] that keeps the session live and
//! gives clients a per-job completion surface:
//!
//! * **Submission** — [`Client::submit`] returns a [`JobHandle`] that
//!   resolves when the job's bank retires it (the runtime's live
//!   [`JobNotice`] feed), not at session end. Handles are
//!   [`std::future::Future`]s *and* blocking-waitable — no executor
//!   required. [`Client::submit_stream`] submits a whole workload and
//!   yields per-job results in submission order as they arrive.
//! * **Admission control** — optional per-[`Priority`] token buckets and
//!   queue-depth load shedding driven by the runtime's live queue-depth
//!   signal, with typed [`Rejected`] errors. Disabled (the default) the
//!   server blocks on the bounded queue instead — backpressure — and the
//!   whole pipeline stays bit-deterministic versus direct runtime use.
//! * **Per-client QoS** — an optional weighted-fair (virtual-time WFQ)
//!   stage after admission: submissions naming a client via
//!   [`SubmitOptions::for_client`] draw on that client's weight and
//!   optional rate quota; a client past its quota — or past its fair
//!   share while the queue is congested — is shed with
//!   [`Rejected::Throttled`]. Anonymous submissions bypass the stage.
//!   Per-client accounting surfaces as [`coruscant_qos::QosStats`] in
//!   the final [`ServerStats`].
//! * **Deadlines** — a per-job *queueing* deadline: if it expires before
//!   the scheduler issues the job, the job is cancelled (never touches a
//!   bank) and the handle resolves [`ServeError::Expired`]; a job whose
//!   execution already began completes normally.
//! * **Drain** — [`Server::shutdown`] stops accepting, flushes all
//!   in-flight work through [`Runtime::finish`], resolves every
//!   outstanding handle (from the final report if its live notice was
//!   not final), and returns [`ServerStats`] whose accounting always
//!   balances: `submitted == accepted + rejected` and every accepted job
//!   resolves exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod handle;
pub mod stats;
mod sync;

pub use admission::{AdmissionOptions, BucketConfig, Priority, Rejected};
pub use handle::{Completion, JobDone, JobHandle, ResultStream, ServeError};
pub use stats::ServerStats;

use coruscant_core::program::PimProgram;
use coruscant_mem::MemoryConfig;
use coruscant_runtime::{
    ChainJob, ChaosAction, ChaosPlan, CrossingPoint, JobNotice, Placement, PushError, ResidentPin,
    Runtime, RuntimeError, RuntimeOptions,
};

use admission::AdmissionController;
use coruscant_qos::{FairQueue, QosOptions};
use handle::Resolver;
use stats::Counters;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration: the wrapped runtime's options plus admission
/// control.
#[derive(Debug, Default)]
pub struct ServerOptions {
    /// Options for the wrapped [`Runtime`]. The server installs its own
    /// completion-notice channel; a `notify` sender set here is replaced.
    pub runtime: RuntimeOptions,
    /// Admission-control configuration (disabled by default, which keeps
    /// the pipeline deterministic).
    pub admission: AdmissionOptions,
    /// Weighted-fair per-client QoS configuration (disabled by default).
    pub qos: QosOptions,
}

/// Errors surfaced by server lifecycle operations.
#[derive(Debug)]
pub enum ServerError {
    /// The server was already shut down.
    Closed,
    /// Starting or draining the wrapped runtime failed.
    Runtime(RuntimeError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Closed => write!(f, "server already shut down"),
            ServerError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Runtime(e) => Some(e),
            ServerError::Closed => None,
        }
    }
}

/// Per-submission options.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Scheduling class for admission control.
    pub priority: Priority,
    /// Client identity for the weighted-fair QoS stage. `None` (the
    /// default) bypasses per-client queuing entirely; with QoS enabled a
    /// named client is weighted, optionally rate-limited, and accounted
    /// in [`ServerStats::qos`](stats::ServerStats).
    pub client: Option<String>,
    /// Relative queueing deadline: if the job is still queued when it
    /// elapses, the job is cancelled and its handle resolves
    /// [`ServeError::Expired`]. `None` (default) never expires. A zero
    /// deadline is rejected at submission with [`Rejected::Deadline`].
    pub deadline: Option<Duration>,
    /// Placement passed through to the runtime.
    pub placement: Placement,
}

impl SubmitOptions {
    /// Options with a priority and defaults otherwise.
    pub fn priority(priority: Priority) -> SubmitOptions {
        SubmitOptions {
            priority,
            ..SubmitOptions::default()
        }
    }

    /// Sets the queueing deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Names the submitting client for the weighted-fair QoS stage.
    pub fn for_client(mut self, client: &str) -> SubmitOptions {
        self.client = Some(client.to_string());
        self
    }
}

/// A pending job's QoS identity, consumed when its handle resolves.
struct QosTag {
    /// Dense client index inside the server's [`FairQueue`].
    client: usize,
    /// Absolute queueing deadline, for deadline-hit accounting.
    deadline: Option<Instant>,
}

/// Pending-handle bookkeeping shared between submitters, the router
/// thread, and the deadline sweeper.
#[derive(Default)]
struct Registry {
    /// Unresolved handles by job id.
    pending: HashMap<u64, Resolver>,
    /// Final completions that arrived before the submitter could
    /// register its handle (the job id is assigned *inside* the
    /// runtime's submit, so the worker can race the registration).
    early: HashMap<u64, Completion>,
    /// Jobs the deadline sweeper cancelled: the scheduler's `Cancelled`
    /// notice for these resolves [`ServeError::Expired`] instead of
    /// [`ServeError::Cancelled`].
    expire_intent: HashSet<u64>,
    /// Jobs already routed to a resolution. Under supervision one job can
    /// emit two final signals — e.g. an `Abandoned` notice when the
    /// watchdog gives it up, then a late `Attempt` notice when the
    /// detached worker finally completes — and only the first may count.
    resolved: HashSet<u64>,
    /// QoS identities of pending jobs, inserted with the handle
    /// registration and consumed (to release the client's backlog in the
    /// fair queue) when the job resolves.
    qos_tags: HashMap<u64, QosTag>,
}

/// The deadline sweeper's work queue.
#[derive(Default)]
struct SweeperState {
    heap: Mutex<BinaryHeap<Reverse<(Instant, u64)>>>,
    cv: Condvar,
    stop: AtomicBool,
}

struct Shared {
    /// `None` once [`Server::shutdown`] has taken the runtime. Behind an
    /// `RwLock` so submitters share read access while drain is exclusive.
    runtime: RwLock<Option<Runtime>>,
    registry: Mutex<Registry>,
    admission: Mutex<AdmissionController>,
    qos: Mutex<FairQueue>,
    counters: Counters,
    accepting: AtomicBool,
    sweeper: SweeperState,
}

impl Shared {
    /// Routes one final completion: resolves the pending handle, or
    /// stashes it for a registration that has not happened yet. Counts
    /// the resolution exactly once.
    fn route(&self, job_id: u64, completion: Completion) {
        let mut reg = sync::lock(&self.registry);
        if !reg.resolved.insert(job_id) {
            // A duplicate final signal; the first resolution won.
            return;
        }
        self.count(&completion);
        reg.expire_intent.remove(&job_id);
        let tag = reg.qos_tags.remove(&job_id);
        match reg.pending.remove(&job_id) {
            Some(resolver) => {
                drop(reg);
                if let Some(tag) = &tag {
                    self.qos_record(tag, &completion);
                }
                resolver.resolve(completion);
            }
            None => {
                // The completion raced the registration: no tag can exist
                // yet (tags are inserted with the registration), so the
                // register path settles the QoS accounting synchronously.
                reg.early.insert(job_id, completion);
            }
        }
    }

    /// Releases one resolved job's backlog in the fair queue and folds
    /// its outcome into the client's deadline/served accounting.
    fn qos_record(&self, tag: &QosTag, completion: &Completion) {
        let mut fair = sync::lock(&self.qos);
        match completion {
            Err(ServeError::Expired) => fair.record_expired(tag.client),
            Ok(_) => {
                let met = tag.deadline.map(|d| Instant::now() <= d);
                fair.record_served(tag.client, met);
            }
            // Any other terminal error still releases the backlog; a job
            // with a deadline that never produced outputs is a miss.
            Err(_) => fair.record_served(tag.client, tag.deadline.map(|_| false)),
        }
    }

    /// Releases a fair-queue admission whose submission then failed at
    /// the runtime boundary (queue full, closed, poisoned): the client
    /// must not stay backlogged for a job that never existed.
    fn qos_unwind(&self, client: Option<usize>) {
        if let Some(id) = client {
            sync::lock(&self.qos).record_expired(id);
        }
    }

    fn count(&self, completion: &Completion) {
        let c = &self.counters;
        match completion {
            Ok(_) => c.completed.fetch_add(1, Ordering::Relaxed),
            Err(ServeError::Exec(_)) => c.failed.fetch_add(1, Ordering::Relaxed),
            Err(ServeError::Expired) => c.expired.fetch_add(1, Ordering::Relaxed),
            Err(ServeError::Cancelled) => c.cancelled.fetch_add(1, Ordering::Relaxed),
            Err(ServeError::Hung) => c.hung.fetch_add(1, Ordering::Relaxed),
            Err(ServeError::Crashed) => c.crashed.fetch_add(1, Ordering::Relaxed),
            Err(ServeError::Lost) => c.lost.fetch_add(1, Ordering::Relaxed),
            // Rejections are counted at the submission site.
            Err(ServeError::Rejected(_)) => 0,
        };
    }

    /// Registers a handle for a freshly accepted job, claiming any
    /// completion that raced ahead of the registration.
    fn register(&self, job_id: u64) -> JobHandle {
        self.register_tagged(job_id, None)
    }

    /// Registers a handle together with the job's QoS identity. If the
    /// completion raced ahead of the registration, the QoS accounting is
    /// settled here, synchronously — the router never saw a tag.
    fn register_tagged(&self, job_id: u64, tag: Option<QosTag>) -> JobHandle {
        let mut reg = sync::lock(&self.registry);
        if let Some(completion) = reg.early.remove(&job_id) {
            drop(reg);
            if let Some(tag) = &tag {
                self.qos_record(tag, &completion);
            }
            return handle::resolved(job_id, completion);
        }
        let (h, resolver) = handle::oneshot(job_id);
        reg.pending.insert(job_id, resolver);
        if let Some(tag) = tag {
            reg.qos_tags.insert(job_id, tag);
        }
        h
    }

    /// Fires one queueing deadline: if the job is still unresolved, mark
    /// the expiry intent and ask the runtime to cancel it.
    fn expire(&self, job_id: u64) {
        {
            let mut reg = sync::lock(&self.registry);
            if !reg.pending.contains_key(&job_id) {
                return; // already resolved — the deadline is moot
            }
            reg.expire_intent.insert(job_id);
        }
        if let Some(rt) = sync::read(&self.runtime).as_ref() {
            rt.cancel(job_id);
        }
    }

    fn sweeper_push(&self, at: Instant, job_id: u64) {
        sync::lock(&self.sweeper.heap).push(Reverse((at, job_id)));
        self.sweeper.cv.notify_all();
    }
}

/// The router: turns the runtime's live notice feed into handle
/// resolutions. Exits on the [`JobNotice::Drained`] sentinel the server
/// sends after [`Runtime::finish`] returns, or when every notice sender
/// (workers + scheduler) hangs up — the sentinel matters under
/// supervision, where a permanently stalled worker may never drop its
/// sender.
fn router_loop(shared: &Shared, rx: &mpsc::Receiver<JobNotice>, chaos: Option<ChaosPlan>) {
    'recv: for notice in rx.iter() {
        // Flatten batched notices (the parallel scheduling engine
        // coalesces every member of a dispatch into one channel send);
        // each inner notice is handled exactly as if it arrived alone.
        let flattened = match notice {
            JobNotice::Batch(inner) => inner,
            single => vec![single],
        };
        for notice in flattened {
            if let Some(plan) = chaos {
                let key = (notice.job_id(), 0);
                if let ChaosAction::Delay = plan.decide(CrossingPoint::RouterNotice, key.0, key.1) {
                    std::thread::sleep(Duration::from_micros(plan.delay_us));
                }
            }
            if !notice.is_final() {
                // A superseded attempt under an active protection policy;
                // the re-dispatched attempt (or the drain fallback) resolves
                // the handle.
                continue;
            }
            match notice {
                JobNotice::Attempt {
                    job_id,
                    attempt,
                    bank,
                    batch,
                    outputs,
                    error,
                    verified,
                    ..
                } => {
                    let completion = match error {
                        Some(e) => Err(ServeError::Exec(e)),
                        None => Ok(JobDone {
                            job_id,
                            outputs,
                            bank,
                            attempt,
                            batch,
                            verified,
                        }),
                    };
                    shared.route(job_id, completion);
                }
                JobNotice::Expired { job_id } => {
                    // The scheduler found the job past its deadline at
                    // issue time and dropped it before any bank saw it.
                    shared.route(job_id, Err(ServeError::Expired));
                }
                JobNotice::Cancelled { job_id } => {
                    let expired = {
                        let mut reg = sync::lock(&shared.registry);
                        // Claim the intent only if this notice will win the
                        // route (a resolved job's late cancel is moot).
                        !reg.resolved.contains(&job_id) && reg.expire_intent.remove(&job_id)
                    };
                    let completion = if expired {
                        Err(ServeError::Expired)
                    } else {
                        Err(ServeError::Cancelled)
                    };
                    shared.route(job_id, completion);
                }
                JobNotice::Abandoned { job_id, hung } => {
                    let completion = Err(if hung {
                        ServeError::Hung
                    } else {
                        ServeError::Crashed
                    });
                    shared.route(job_id, completion);
                }
                JobNotice::Drained => break 'recv,
                // Batches never nest; the outer flattening consumed them.
                JobNotice::Batch(_) => {}
            }
        }
    }
}

/// The deadline sweeper: sleeps until the earliest pending deadline and
/// fires expiries in order.
fn sweeper_loop(shared: &Shared) {
    let mut heap = sync::lock(&shared.sweeper.heap);
    loop {
        if shared.sweeper.stop.load(Ordering::Acquire) {
            return;
        }
        let next = heap.peek().map(|Reverse((at, id))| (*at, *id));
        match next {
            None => {
                heap = sync::wait(&shared.sweeper.cv, heap);
            }
            Some((at, id)) => {
                let now = Instant::now();
                if at <= now {
                    heap.pop();
                    drop(heap);
                    shared.expire(id);
                    heap = sync::lock(&shared.sweeper.heap);
                } else {
                    heap = sync::wait_timeout(&shared.sweeper.cv, heap, at - now);
                }
            }
        }
    }
}

/// A serving frontend over one [`Runtime`] session. Create with
/// [`Server::start`], submit through [`Server::client`] handles, and
/// call [`Server::shutdown`] to drain.
pub struct Server {
    shared: Arc<Shared>,
    /// Our own clone of the notice sender, used to push the
    /// [`JobNotice::Drained`] sentinel that unblocks the router at
    /// shutdown even if a stalled worker still holds a sender.
    notify: mpsc::Sender<JobNotice>,
    router: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a server: spawns the wrapped runtime plus the router and
    /// deadline-sweeper threads.
    ///
    /// # Errors
    ///
    /// Propagates [`Runtime::new`] failures.
    pub fn start(config: MemoryConfig, options: ServerOptions) -> Result<Server, ServerError> {
        let (notify_tx, notify_rx) = mpsc::channel::<JobNotice>();
        let notify = notify_tx.clone();
        let chaos = options.runtime.chaos.filter(ChaosPlan::is_active);
        let runtime_options = options.runtime.with_notify(notify_tx);
        // The channel's original sender was moved into the runtime (and
        // cloned to its workers/scheduler); once `finish` joins them the
        // receiver disconnects and the router exits.
        let runtime = Runtime::new(config, runtime_options).map_err(ServerError::Runtime)?;
        let shared = Arc::new(Shared {
            runtime: RwLock::new(Some(runtime)),
            registry: Mutex::new(Registry::default()),
            admission: Mutex::new(AdmissionController::new(options.admission, Instant::now())),
            qos: Mutex::new(FairQueue::new(options.qos)),
            counters: Counters::default(),
            accepting: AtomicBool::new(true),
            sweeper: SweeperState::default(),
        });
        let router = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || router_loop(&shared, &notify_rx, chaos))
        };
        let sweeper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || sweeper_loop(&shared))
        };
        Ok(Server {
            shared,
            notify,
            router: Some(router),
            sweeper: Some(sweeper),
        })
    }

    /// A cloneable submission client for this server.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Live depth of the runtime's submission queue (the admission
    /// signal).
    pub fn queue_len(&self) -> usize {
        sync::read(&self.shared.runtime)
            .as_ref()
            .map_or(0, Runtime::queue_len)
    }

    /// Opens the scheduler gate of a server whose runtime was created
    /// with [`RuntimeOptions::paused`] — used by tests that need to
    /// stage submissions/cancellations deterministically before any
    /// scheduling happens.
    pub fn resume(&self) {
        if let Some(rt) = sync::read(&self.shared.runtime).as_ref() {
            rt.resume();
        }
    }

    /// Graceful drain: stops accepting, flushes every queued and
    /// in-flight job through the runtime, resolves all outstanding
    /// handles, and returns the final balanced [`ServerStats`].
    ///
    /// # Errors
    ///
    /// [`ServerError::Runtime`] if the drain failed (a worker died or a
    /// job error surfaced at session level); outstanding handles resolve
    /// [`ServeError::Lost`] in that case.
    pub fn shutdown(mut self) -> Result<ServerStats, ServerError> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<ServerStats, ServerError> {
        self.shared.accepting.store(false, Ordering::Release);
        let runtime = sync::write(&self.shared.runtime)
            .take()
            .ok_or(ServerError::Closed)?;
        let result = runtime.finish();
        // Every real notice is already buffered (finish joined the
        // scheduler, and completed workers dropped their senders); the
        // sentinel tells the router to exit once it has drained them,
        // without waiting on a permanently stalled worker's sender.
        let _ = self.notify.send(JobNotice::Drained);
        self.shared.sweeper.stop.store(true, Ordering::Release);
        self.shared.sweeper.cv.notify_all();
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
        match result {
            Ok(report) => {
                let mut reg = sync::lock(&self.shared.registry);
                // Jobs that completed without a *final* live notice (for
                // example a Fixed-placement job whose last attempt stayed
                // unverified) resolve from the final report — the
                // report's winner is exactly the winning attempt.
                for outcome in &report.outcomes {
                    if let Some(resolver) = reg.pending.remove(&outcome.job_id) {
                        reg.resolved.insert(outcome.job_id);
                        let completion = Ok(JobDone {
                            job_id: outcome.job_id,
                            outputs: outcome.outputs.clone(),
                            bank: outcome.bank,
                            attempt: outcome.attempt,
                            batch: outcome.batch,
                            verified: outcome.verified,
                        });
                        self.shared.count(&completion);
                        if let Some(tag) = reg.qos_tags.remove(&outcome.job_id) {
                            self.shared.qos_record(&tag, &completion);
                        }
                        resolver.resolve(completion);
                    }
                }
                let leftover_tags: Vec<(u64, QosTag)> = reg.qos_tags.drain().collect();
                for (_, resolver) in reg.pending.drain() {
                    let completion = Err(ServeError::Lost);
                    self.shared.count(&completion);
                    resolver.resolve(completion);
                }
                drop(reg);
                // Jobs drained without a final signal still release their
                // client's backlog (as misses if they carried a deadline).
                for (_, tag) in leftover_tags {
                    self.shared.qos_record(&tag, &Err(ServeError::Lost));
                }
                let qos = sync::lock(&self.shared.qos).stats();
                Ok(self.shared.counters.snapshot(report.stats, qos))
            }
            Err(e) => {
                let mut reg = sync::lock(&self.shared.registry);
                for (_, resolver) in reg.pending.drain() {
                    let completion = Err(ServeError::Lost);
                    self.shared.count(&completion);
                    resolver.resolve(completion);
                }
                drop(reg);
                Err(ServerError::Runtime(e))
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server still drains — otherwise the runtime's
        // scheduler would block on its never-closed queue forever.
        let _ = self.shutdown_inner();
    }
}

/// A cheap, cloneable submission handle to a [`Server`]; safe to share
/// across threads.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Submits a job with default options ([`Priority::Normal`], no
    /// deadline, automatic placement).
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] when the submission is refused.
    pub fn submit(&self, program: PimProgram) -> Result<JobHandle, Rejected> {
        self.submit_with(program, SubmitOptions::default())
    }

    /// Submits a job.
    ///
    /// With admission control enabled the call never blocks: it either
    /// accepts (returning a [`JobHandle`]) or sheds with a typed
    /// [`Rejected`]. With admission disabled it blocks while the
    /// runtime's bounded queue is full (backpressure), preserving the
    /// runtime's deterministic pipeline.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] when the submission is refused.
    pub fn submit_with(
        &self,
        program: PimProgram,
        options: SubmitOptions,
    ) -> Result<JobHandle, Rejected> {
        let c = &self.shared.counters;
        c.submitted.fetch_add(1, Ordering::Relaxed);
        if !self.shared.accepting.load(Ordering::Acquire) {
            c.rejected_closed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Closed);
        }
        let guard = sync::read(&self.shared.runtime);
        let Some(rt) = guard.as_ref() else {
            c.rejected_closed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Closed);
        };
        if options.deadline.is_some_and(|d| d.is_zero()) {
            c.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Deadline);
        }
        let now = Instant::now();
        let admission_on = {
            let mut adm = sync::lock(&self.shared.admission);
            if let Err(r) = adm.admit(options.priority, rt.queue_len(), rt.queue_capacity(), now) {
                c.rejected_overload.fetch_add(1, Ordering::Relaxed);
                return Err(r);
            }
            adm.enabled()
        };
        // The weighted-fair QoS stage runs after admission so priority
        // shedding still applies first; anonymous submissions (no client
        // name) bypass it, as do all submissions when QoS is off.
        let deadline_at = options.deadline.map(|d| now + d);
        let qos_client = match &options.client {
            Some(name) => {
                let mut fair = sync::lock(&self.shared.qos);
                if fair.is_enabled() {
                    match fair.admit(name, 1.0, rt.queue_len(), rt.queue_capacity(), now) {
                        Ok(idx) => Some(idx),
                        Err(_) => {
                            c.rejected_throttled.fetch_add(1, Ordering::Relaxed);
                            return Err(Rejected::Throttled);
                        }
                    }
                } else {
                    None
                }
            }
            None => None,
        };
        let id = if admission_on {
            match rt.try_submit_due(program, options.placement, deadline_at) {
                Ok(id) => id,
                Err(PushError::Full) => {
                    c.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                    self.shared.qos_unwind(qos_client);
                    return Err(Rejected::QueueFull);
                }
                Err(PushError::Closed) => {
                    c.rejected_closed.fetch_add(1, Ordering::Relaxed);
                    self.shared.qos_unwind(qos_client);
                    return Err(Rejected::Closed);
                }
                Err(PushError::Poisoned { fingerprint }) => {
                    c.rejected_poison.fetch_add(1, Ordering::Relaxed);
                    self.shared.qos_unwind(qos_client);
                    return Err(Rejected::Poison { fingerprint });
                }
            }
        } else {
            match rt.submit_due(program, options.placement, deadline_at) {
                Ok(id) => id,
                Err(RuntimeError::Poisoned { fingerprint }) => {
                    c.rejected_poison.fetch_add(1, Ordering::Relaxed);
                    self.shared.qos_unwind(qos_client);
                    return Err(Rejected::Poison { fingerprint });
                }
                Err(_) => {
                    // Blocking submit otherwise fails only on a closed
                    // queue or a compiler rejection (differential-verify
                    // divergence); either way the job was not accepted.
                    c.rejected_closed.fetch_add(1, Ordering::Relaxed);
                    self.shared.qos_unwind(qos_client);
                    return Err(Rejected::Closed);
                }
            }
        };
        c.accepted.fetch_add(1, Ordering::Relaxed);
        let tag = qos_client.map(|client| QosTag {
            client,
            deadline: deadline_at,
        });
        let handle = self.shared.register_tagged(id, tag);
        if let Some(at) = deadline_at {
            self.shared.sweeper_push(at, id);
        }
        Ok(handle)
    }

    /// Submits a whole workload and returns its ordered [`ResultStream`].
    /// Rejected members become pre-resolved
    /// [`ServeError::Rejected`] entries, so the stream always yields one
    /// completion per input, in input order.
    pub fn submit_stream<I>(&self, programs: I, options: SubmitOptions) -> ResultStream
    where
        I: IntoIterator<Item = PimProgram>,
    {
        let handles = programs
            .into_iter()
            .map(|p| match self.submit_with(p, options.clone()) {
                Ok(h) => h,
                Err(r) => handle::resolved(u64::MAX, Err(ServeError::Rejected(r))),
            })
            .collect();
        ResultStream::new(handles)
    }

    /// Submits a dependency-gated pipeline chain (see
    /// [`Runtime::submit_chain`]) and returns one [`JobHandle`] per
    /// member, in chain order. Members held in the dependency tracker
    /// resolve when their final attempt retires; members dropped because
    /// a predecessor failed (or a binder refused to build) resolve
    /// [`ServeError::Cancelled`].
    ///
    /// One admission decision covers the whole chain — a pipeline is
    /// all-or-nothing, because shedding individual members would leave
    /// dangling dependencies. The chain enters the runtime through the
    /// blocking queue (backpressure) in both admission modes.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] when the chain is refused —
    /// [`Rejected::Invalid`] marks a structurally bad chain (a member
    /// depending on itself or a later member).
    pub fn submit_pipeline(
        &self,
        chain: Vec<ChainJob>,
        priority: Priority,
    ) -> Result<Vec<JobHandle>, Rejected> {
        let n = chain.len() as u64;
        let c = &self.shared.counters;
        c.submitted.fetch_add(n, Ordering::Relaxed);
        if !self.shared.accepting.load(Ordering::Acquire) {
            c.rejected_closed.fetch_add(n, Ordering::Relaxed);
            return Err(Rejected::Closed);
        }
        let guard = sync::read(&self.shared.runtime);
        let Some(rt) = guard.as_ref() else {
            c.rejected_closed.fetch_add(n, Ordering::Relaxed);
            return Err(Rejected::Closed);
        };
        {
            let mut adm = sync::lock(&self.shared.admission);
            if let Err(r) = adm.admit(
                priority,
                rt.queue_len(),
                rt.queue_capacity(),
                Instant::now(),
            ) {
                c.rejected_overload.fetch_add(n, Ordering::Relaxed);
                return Err(r);
            }
        }
        let ids = match rt.submit_chain(chain) {
            Ok(ids) => ids,
            Err(RuntimeError::Config(_)) => {
                c.rejected_invalid.fetch_add(n, Ordering::Relaxed);
                return Err(Rejected::Invalid);
            }
            Err(_) => {
                c.rejected_closed.fetch_add(n, Ordering::Relaxed);
                return Err(Rejected::Closed);
            }
        };
        c.accepted.fetch_add(n, Ordering::Relaxed);
        Ok(ids.into_iter().map(|id| self.shared.register(id)).collect())
    }

    /// Pins weights resident on a PIM unit (see
    /// [`Runtime::pin_resident`]): runs `program` once on unit
    /// `unit_idx` and registers a residency there, which
    /// [`Placement::Resident`] jobs — standalone or pipeline members —
    /// follow even across quarantine re-materialization. Returns the
    /// [`ResidentPin`] receipt plus the pin job's completion handle.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] when the pin is refused.
    pub fn pin_resident(
        &self,
        program: PimProgram,
        unit_idx: usize,
    ) -> Result<(ResidentPin, JobHandle), Rejected> {
        let c = &self.shared.counters;
        c.submitted.fetch_add(1, Ordering::Relaxed);
        if !self.shared.accepting.load(Ordering::Acquire) {
            c.rejected_closed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Closed);
        }
        let guard = sync::read(&self.shared.runtime);
        let Some(rt) = guard.as_ref() else {
            c.rejected_closed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Closed);
        };
        let pin = match rt.pin_resident(program, unit_idx) {
            Ok(pin) => pin,
            Err(_) => {
                c.rejected_closed.fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::Closed);
            }
        };
        c.accepted.fetch_add(1, Ordering::Relaxed);
        let handle = self.shared.register(pin.job);
        Ok((pin, handle))
    }

    /// Requests cancellation of a still-queued job. Best-effort, like
    /// [`Runtime::cancel`]: if the scheduler drops the job before issue
    /// its handle resolves [`ServeError::Cancelled`]; a job that already
    /// reached a bank completes normally.
    pub fn cancel(&self, job_id: u64) {
        if let Some(rt) = sync::read(&self.shared.runtime).as_ref() {
            rt.cancel(job_id);
        }
    }

    /// Live depth of the runtime's submission queue.
    pub fn queue_len(&self) -> usize {
        sync::read(&self.shared.runtime)
            .as_ref()
            .map_or(0, Runtime::queue_len)
    }
}
