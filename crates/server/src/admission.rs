//! Admission control: per-priority token buckets plus queue-depth load
//! shedding.
//!
//! The runtime's bounded submission queue already applies *backpressure*
//! (blocking `submit`) — correct for cooperating batch producers, wrong
//! for a serving frontend, where a slow consumer must shed excess load
//! with a typed error the client can act on instead of stalling every
//! caller. The controller here decides, per submission, whether to admit:
//!
//! 1. **Queue-depth shedding** — each [`Priority`] has a high-water
//!    fraction of the runtime queue's capacity; submissions above it are
//!    rejected with [`Rejected::Overload`]. Lower priorities shed first
//!    (their fraction is lower), which keeps headroom for high-priority
//!    traffic — the queue-depth signal is [`coruscant_runtime::Runtime::
//!    queue_len`], the live counterpart of the depth histograms in
//!    [`coruscant_runtime::RuntimeStats`].
//! 2. **Token-bucket rate limiting** — an optional per-priority bucket
//!    (sustained rate + burst); an empty bucket is also
//!    [`Rejected::Overload`].
//!
//! Admission control is **off by default**: a disabled controller admits
//! everything and the server falls back to blocking backpressure, which
//! preserves the runtime's bit-exact determinism (no timing-dependent
//! accept/reject decisions).

use std::time::Instant;

/// A submission's scheduling class, used to pick its token bucket and
/// shed threshold. Lower priorities are shed earlier under load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Latency-sensitive traffic; shed last.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Best-effort traffic; shed first.
    Low,
}

impl Priority {
    /// Dense index for per-priority tables.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// All priorities, highest first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];
}

/// Why a submission was refused. Typed so clients can distinguish
/// retry-later conditions from permanent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// Shed by admission control: the queue is above the priority's
    /// high-water mark, or its token bucket is empty. Retry after
    /// backing off.
    Overload,
    /// Shed by the weighted-fair QoS stage: the client is over its rate
    /// quota, or it is past its fair share while the queue is congested.
    /// Retry after backing off.
    Throttled,
    /// The runtime's bounded submission queue is at capacity.
    QueueFull,
    /// The submission carried a deadline that had already expired.
    Deadline,
    /// The server is draining or shut down; no further work is accepted.
    Closed,
    /// A pipeline submission was structurally invalid (a member depended
    /// on itself or on a later member). Not retryable.
    Invalid,
    /// The program's structural fingerprint is quarantined: earlier
    /// submissions of it repeatedly hung worker shards past the
    /// execution watchdog's budget. Not retryable.
    Poison {
        /// The quarantined, placement-normalized program hash.
        fingerprint: u64,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overload => write!(f, "shed by admission control (overload)"),
            Rejected::Throttled => write!(f, "throttled by per-client QoS (quota or fair share)"),
            Rejected::QueueFull => write!(f, "submission queue full"),
            Rejected::Deadline => write!(f, "deadline already expired at submission"),
            Rejected::Closed => write!(f, "server closed to new submissions"),
            Rejected::Invalid => write!(f, "pipeline structurally invalid"),
            Rejected::Poison { fingerprint } => {
                write!(f, "program {fingerprint:#018x} quarantined as poison")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// One priority's token-bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketConfig {
    /// Sustained admissions per second.
    pub rate_per_sec: f64,
    /// Burst capacity (the bucket's fill ceiling, in tokens).
    pub burst: f64,
}

/// Admission-controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionOptions {
    /// Master switch. Disabled (the default) admits every submission and
    /// makes the server use blocking backpressure — the deterministic
    /// mode. Enabled switches to non-blocking submission with shedding.
    pub enabled: bool,
    /// Per-priority token buckets, indexed by [`Priority::index`];
    /// `None` means unlimited rate for that priority.
    pub buckets: [Option<BucketConfig>; 3],
    /// Per-priority queue high-water marks as fractions of the runtime
    /// queue's capacity, indexed by [`Priority::index`]. A submission is
    /// shed when the live queue depth is at or above
    /// `ceil(fraction * capacity)`. Values ≥ 1.0 disable depth shedding
    /// for that priority (the bounded queue itself still rejects with
    /// [`Rejected::QueueFull`]).
    pub shed_at: [f64; 3],
}

impl Default for AdmissionOptions {
    fn default() -> AdmissionOptions {
        AdmissionOptions {
            enabled: false,
            buckets: [None; 3],
            // High sheds only when the queue is truly full; Normal keeps
            // a little headroom; Low keeps half the queue free.
            shed_at: [1.0, 0.75, 0.5],
        }
    }
}

impl AdmissionOptions {
    /// Options with the controller on at the default thresholds and no
    /// rate limits.
    pub fn enabled() -> AdmissionOptions {
        AdmissionOptions {
            enabled: true,
            ..AdmissionOptions::default()
        }
    }

    /// Sets one priority's token bucket.
    pub fn with_bucket(mut self, priority: Priority, bucket: BucketConfig) -> AdmissionOptions {
        self.buckets[priority.index()] = Some(bucket);
        self
    }

    /// Sets one priority's queue high-water fraction.
    pub fn with_shed_at(mut self, priority: Priority, fraction: f64) -> AdmissionOptions {
        self.shed_at[priority.index()] = fraction;
        self
    }
}

/// A classic token bucket, refilled lazily on each take.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    tokens: f64,
    last: Instant,
    rate: f64,
    burst: f64,
}

impl TokenBucket {
    pub fn new(config: BucketConfig, now: Instant) -> TokenBucket {
        TokenBucket {
            tokens: config.burst,
            last: now,
            rate: config.rate_per_sec.max(0.0),
            burst: config.burst.max(1.0),
        }
    }

    /// Takes one token if available at `now`.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The live admission controller (one per server, behind a mutex).
#[derive(Debug)]
pub(crate) struct AdmissionController {
    options: AdmissionOptions,
    buckets: [Option<TokenBucket>; 3],
}

impl AdmissionController {
    pub fn new(options: AdmissionOptions, now: Instant) -> AdmissionController {
        let buckets = options.buckets.map(|b| b.map(|c| TokenBucket::new(c, now)));
        AdmissionController { options, buckets }
    }

    /// Whether the controller is active (inactive admits everything and
    /// the server uses blocking backpressure instead).
    pub fn enabled(&self) -> bool {
        self.options.enabled
    }

    /// Decides one submission given the live queue depth.
    pub fn admit(
        &mut self,
        priority: Priority,
        queue_len: usize,
        queue_capacity: usize,
        now: Instant,
    ) -> Result<(), Rejected> {
        if !self.options.enabled {
            return Ok(());
        }
        let idx = priority.index();
        let fraction = self.options.shed_at[idx];
        if fraction < 1.0 {
            let high_water = (fraction * queue_capacity as f64).ceil() as usize;
            if queue_len >= high_water.max(1) {
                return Err(Rejected::Overload);
            }
        }
        if let Some(bucket) = &mut self.buckets[idx] {
            if !bucket.try_take(now) {
                return Err(Rejected::Overload);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_burst_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(
            BucketConfig {
                rate_per_sec: 10.0,
                burst: 2.0,
            },
            t0,
        );
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        // 100ms at 10/s refills exactly one token.
        assert!(b.try_take(t0 + Duration::from_millis(100)));
        assert!(!b.try_take(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(
            BucketConfig {
                rate_per_sec: 1000.0,
                burst: 1.0,
            },
            t0,
        );
        // A long idle period still caps at `burst` tokens.
        let later = t0 + Duration::from_secs(60);
        assert!(b.try_take(later));
        assert!(!b.try_take(later));
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let now = Instant::now();
        let mut c = AdmissionController::new(AdmissionOptions::default(), now);
        for _ in 0..1000 {
            assert!(c.admit(Priority::Low, 999, 16, now).is_ok());
        }
    }

    #[test]
    fn depth_shedding_is_priority_ordered() {
        let now = Instant::now();
        let mut c = AdmissionController::new(AdmissionOptions::enabled(), now);
        // Depth 8 of 16: Low (high-water 8) sheds, Normal (12) and High
        // (disabled at 1.0) admit.
        assert_eq!(c.admit(Priority::Low, 8, 16, now), Err(Rejected::Overload));
        assert!(c.admit(Priority::Normal, 8, 16, now).is_ok());
        assert!(c.admit(Priority::High, 8, 16, now).is_ok());
        // Depth 12: Normal sheds too; High still admits.
        assert_eq!(
            c.admit(Priority::Normal, 12, 16, now),
            Err(Rejected::Overload)
        );
        assert!(c.admit(Priority::High, 12, 16, now).is_ok());
    }

    #[test]
    fn rate_limit_rejects_when_bucket_empty() {
        let now = Instant::now();
        let options = AdmissionOptions::enabled().with_bucket(
            Priority::Normal,
            BucketConfig {
                rate_per_sec: 0.0,
                burst: 2.0,
            },
        );
        let mut c = AdmissionController::new(options, now);
        assert!(c.admit(Priority::Normal, 0, 16, now).is_ok());
        assert!(c.admit(Priority::Normal, 0, 16, now).is_ok());
        assert_eq!(
            c.admit(Priority::Normal, 0, 16, now),
            Err(Rejected::Overload)
        );
        // Other priorities are unaffected.
        assert!(c.admit(Priority::High, 0, 16, now).is_ok());
    }
}
