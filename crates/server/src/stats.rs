//! Server-level accounting: submission/rejection/completion counters
//! plus the wrapped runtime's final [`RuntimeStats`].

use coruscant_qos::QosStats;
use coruscant_runtime::{RuntimeStats, SchedStats};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Final statistics a drained server hands back from
/// [`crate::Server::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServerStats {
    /// All submission attempts (accepted + rejected).
    pub submitted: u64,
    /// Submissions that passed admission and entered the runtime queue.
    pub accepted: u64,
    /// Accepted jobs that executed and produced outputs.
    pub completed: u64,
    /// Accepted jobs that executed and hit a PIM error.
    pub failed: u64,
    /// Submissions shed by admission control (depth or rate).
    pub rejected_overload: u64,
    /// Submissions shed by the weighted-fair QoS stage (per-client rate
    /// quota or fair-share lag under congestion).
    pub rejected_throttled: u64,
    /// Submissions refused because the runtime queue was at capacity.
    pub rejected_queue_full: u64,
    /// Submissions refused because their deadline had already expired.
    pub rejected_deadline: u64,
    /// Submissions refused because the server was draining.
    pub rejected_closed: u64,
    /// Pipeline members refused because the chain was structurally
    /// invalid (forward or self dependency).
    pub rejected_invalid: u64,
    /// Submissions refused because their program fingerprint is
    /// quarantined as poison (it kept hanging workers).
    pub rejected_poison: u64,
    /// Accepted jobs cancelled by deadline expiry while still queued.
    pub expired: u64,
    /// Accepted jobs cancelled by an explicit client cancel while queued.
    pub cancelled: u64,
    /// Accepted jobs supervision gave up after their attempts exceeded
    /// the watchdog budget (abandoned as hung).
    pub hung: u64,
    /// Accepted jobs supervision gave up after their attempts kept
    /// crashing workers (crash-retry budget exhausted).
    pub crashed: u64,
    /// Accepted jobs whose fate the server never learned (worker lost or
    /// session failure).
    pub lost: u64,
    /// Per-client weighted-fair QoS accounting (empty when QoS is off).
    pub qos: QosStats,
    /// The wrapped runtime session's aggregate statistics.
    pub runtime: RuntimeStats,
}

impl ServerStats {
    /// All rejections, across reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_overload
            + self.rejected_throttled
            + self.rejected_queue_full
            + self.rejected_deadline
            + self.rejected_closed
            + self.rejected_invalid
            + self.rejected_poison
    }

    /// The wrapped session's scheduler-occupancy profile: engine mode,
    /// per-stage micros, work-steal counts, and per-domain breakdowns
    /// (ring depths included). Serialized with the rest of the stats, so
    /// an operator dashboard reads it straight off the shutdown JSON.
    pub fn sched(&self) -> &SchedStats {
        &self.runtime.sched
    }

    /// The accounting invariant every drained server satisfies: every
    /// submission is either accepted or rejected, and every accepted job
    /// resolves exactly one way.
    pub fn balanced(&self) -> bool {
        self.submitted == self.accepted + self.rejected()
            && self.accepted
                == self.completed
                    + self.failed
                    + self.expired
                    + self.cancelled
                    + self.hung
                    + self.crashed
                    + self.lost
    }
}

/// Live atomic counters behind the final [`ServerStats`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub accepted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected_overload: AtomicU64,
    pub rejected_throttled: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub rejected_closed: AtomicU64,
    pub rejected_invalid: AtomicU64,
    pub rejected_poison: AtomicU64,
    pub expired: AtomicU64,
    pub cancelled: AtomicU64,
    pub hung: AtomicU64,
    pub crashed: AtomicU64,
    pub lost: AtomicU64,
}

impl Counters {
    pub fn snapshot(&self, runtime: RuntimeStats, qos: QosStats) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_throttled: self.rejected_throttled.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_closed: self.rejected_closed.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            rejected_poison: self.rejected_poison.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            hung: self.hung.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
            lost: self.lost.load(Ordering::Relaxed),
            qos,
            runtime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_checks_both_levels() {
        let stats = ServerStats {
            submitted: 10,
            accepted: 7,
            completed: 5,
            failed: 1,
            expired: 1,
            rejected_overload: 2,
            rejected_queue_full: 1,
            ..ServerStats::default()
        };
        assert!(stats.balanced());
        let unbalanced = ServerStats {
            completed: 6,
            ..stats
        };
        assert!(!unbalanced.balanced());
    }

    #[test]
    fn stats_serialize_to_json() {
        let json = serde::json::to_string(&ServerStats::default());
        assert!(json.contains("\"rejected_overload\""));
        assert!(json.contains("\"runtime\""));
        // The scheduler-occupancy profile rides along.
        assert!(json.contains("\"sched\""));
        assert!(json.contains("\"per_domain\""));
    }

    #[test]
    fn sched_profile_round_trips_through_json() {
        use coruscant_runtime::DomainStats;
        let sched = SchedStats {
            mode: "parallel".into(),
            domains: 2,
            pop_micros: 11,
            admit_micros: 22,
            place_micros: 33,
            dispatch_micros: 44,
            ack_micros: 55,
            busy_micros: 120,
            wall_micros: 300,
            occupancy_pct: 40.0,
            steals: 7,
            per_domain: vec![
                DomainStats {
                    domain: 0,
                    issued: 10,
                    jobs: 12,
                    steals: 7,
                    busy_micros: 120,
                    ring_peak: 3,
                },
                DomainStats {
                    domain: 1,
                    issued: 8,
                    jobs: 8,
                    steals: 0,
                    busy_micros: 90,
                    ring_peak: 2,
                },
            ],
        };
        let json = serde::json::to_string(&sched);
        let back: SchedStats = serde::json::from_str(&json).unwrap();
        assert_eq!(back, sched);
        // The fields an occupancy dashboard keys on survive the trip.
        assert!(json.contains("\"occupancy_pct\""));
        assert!(json.contains("\"ring_peak\""));
        assert!(json.contains("\"steals\""));
    }

    #[test]
    fn drained_parallel_server_surfaces_its_sched_profile() {
        use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
        use coruscant_core::program::{PimProgram, Step};
        use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
        use coruscant_runtime::{RuntimeOptions, SchedMode};

        let loc = DbcLocation::new(0, 0, 0, 0);
        let program = PimProgram {
            steps: vec![
                Step::Load {
                    addr: RowAddress::new(loc, 4),
                    values: vec![3; 8],
                    lane: 8,
                },
                Step::Load {
                    addr: RowAddress::new(loc, 5),
                    values: vec![4; 8],
                    lane: 8,
                },
                Step::Exec(
                    CpimInstr::new(
                        CpimOpcode::Add,
                        RowAddress::new(loc, 4),
                        2,
                        BlockSize::new(8).unwrap(),
                        Some(RowAddress::new(loc, 20)),
                    )
                    .unwrap(),
                ),
                Step::Readout {
                    label: "sum".into(),
                    addr: RowAddress::new(loc, 20),
                    lane: 8,
                },
            ],
        };
        let server = crate::Server::start(
            MemoryConfig::tiny(),
            crate::ServerOptions {
                runtime: RuntimeOptions::default()
                    .with_shards(2)
                    .with_sched_mode(SchedMode::Parallel),
                ..crate::ServerOptions::default()
            },
        )
        .expect("parallel server starts");
        let client = server.client();
        let handles: Vec<_> = (0..16)
            .map(|_| client.submit(program.clone()).expect("accepted"))
            .collect();
        for h in handles {
            h.wait().expect("completes");
        }
        let stats = server.shutdown().expect("drains");
        assert!(stats.balanced(), "{stats:?}");
        let sched = stats.sched();
        assert_eq!(sched.mode, "parallel");
        assert_eq!(sched.domains, 2);
        assert_eq!(
            sched.per_domain.iter().map(|d| d.jobs).sum::<u64>(),
            stats.completed
        );
    }
}
