//! Poison-tolerant lock helpers (the server-side mirror of the runtime's
//! internal `sync` module).
//!
//! Every mutex in this crate guards plain data whose invariants hold
//! between lock acquisitions — a panicking holder cannot leave it
//! half-updated in a way later readers would misinterpret. Std's poison
//! flag would instead *cascade* one panic into every thread that touches
//! the lock afterwards (`lock().unwrap()`), which is exactly what a
//! supervised server must not do: one crashed worker or one panicking
//! client thread must not take down submission, routing, or drain.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Read-locks `rwlock`, recovering the guard from poisoning.
pub(crate) fn read<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-locks `rwlock`, recovering the guard from poisoning.
pub(crate) fn write<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Waits on `cv`, recovering the guard from poisoning.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Waits on `cv` with a timeout, recovering the guard from poisoning.
/// The timed-out flag is dropped — callers here re-check their predicate
/// anyway.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, timeout) {
        Ok((guard, _)) => guard,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(41u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 42);
    }
}
