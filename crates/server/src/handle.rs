//! Channel-backed job completion handles.
//!
//! A [`JobHandle`] is the client's side of one job's completion: a
//! lightweight oneshot slot the server's router thread resolves when the
//! job's *final* [`coruscant_runtime::JobNotice`] arrives (or at drain,
//! from the runtime report). The handle is both a [`std::future::Future`]
//! — pollable from any executor, no runtime of its own required — and
//! blocking-waitable for synchronous callers via [`JobHandle::wait`].

use coruscant_core::PimError;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};

use crate::sync;
use std::task::{Context, Poll, Waker};

use crate::admission::Rejected;

/// What a successfully served job hands back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDone {
    /// The runtime job id.
    pub job_id: u64,
    /// The job's labeled readouts, in program order — bit-identical to
    /// what [`coruscant_runtime::JobOutcome::outputs`] records.
    pub outputs: Vec<(String, Vec<u64>)>,
    /// Bank the winning attempt ran on.
    pub bank: usize,
    /// Dispatch attempt of the winning execution (0 = first placement).
    pub attempt: u32,
    /// Jobs sharing the winning attempt's batched dispatch.
    pub batch: u32,
    /// Whether a protection policy verified the outputs.
    pub verified: bool,
}

/// Why a job produced no [`JobDone`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The submission was refused by admission control (streams surface
    /// per-member rejections this way; `submit` returns them directly).
    Rejected(Rejected),
    /// The job's deadline expired while it was still queued; it was
    /// cancelled before reaching a bank.
    Expired,
    /// The job was cancelled by an explicit [`crate::Client::cancel`]
    /// before reaching a bank.
    Cancelled,
    /// The job executed and hit a PIM error.
    Exec(PimError),
    /// The job's last attempt exceeded the execution watchdog's budget;
    /// supervision declared it hung and gave the job up.
    Hung,
    /// The job's attempts kept crashing worker shards until supervision
    /// exhausted its crash-retry budget.
    Crashed,
    /// The server shut down without learning the job's fate (a worker
    /// was lost, or the session failed wholesale).
    Lost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected: {r}"),
            ServeError::Expired => write!(f, "deadline expired while queued"),
            ServeError::Cancelled => write!(f, "cancelled while queued"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
            ServeError::Hung => write!(f, "abandoned: attempt exceeded the watchdog budget"),
            ServeError::Crashed => {
                write!(f, "abandoned: attempts exhausted the crash-retry budget")
            }
            ServeError::Lost => write!(f, "server shut down without a result"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One job's resolution.
pub type Completion = Result<JobDone, ServeError>;

struct SlotState {
    value: Option<Completion>,
    waker: Option<Waker>,
}

/// The shared oneshot slot between a [`JobHandle`] and its resolver.
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(SlotState {
                value: None,
                waker: None,
            }),
            cv: Condvar::new(),
        })
    }
}

/// The server's side of a handle: resolves the slot exactly once
/// (first write wins, later writes are dropped).
pub(crate) struct Resolver {
    slot: Arc<Slot>,
}

impl Resolver {
    /// Resolves the handle; returns `false` if it was already resolved.
    pub fn resolve(&self, completion: Completion) -> bool {
        let mut state = sync::lock(&self.slot.state);
        if state.value.is_some() {
            return false;
        }
        state.value = Some(completion);
        let waker = state.waker.take();
        drop(state);
        self.slot.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
        true
    }
}

/// A pending job's completion handle. Await it (`JobHandle` implements
/// [`Future`]) or block on [`JobHandle::wait`]; either yields the job's
/// [`Completion`] exactly once.
pub struct JobHandle {
    id: u64,
    slot: Arc<Slot>,
}

/// Creates a connected handle/resolver pair for job `id`.
pub(crate) fn oneshot(id: u64) -> (JobHandle, Resolver) {
    let slot = Slot::new();
    (
        JobHandle {
            id,
            slot: Arc::clone(&slot),
        },
        Resolver { slot },
    )
}

/// Creates a handle already resolved with `completion` (used when the
/// result arrived before the handle could be registered, and for
/// synchronous rejections inside a stream).
pub(crate) fn resolved(id: u64, completion: Completion) -> JobHandle {
    let (handle, resolver) = oneshot(id);
    resolver.resolve(completion);
    handle
}

impl JobHandle {
    /// The runtime job id this handle tracks (`u64::MAX` for a handle
    /// representing a rejected stream member that never got an id).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the completion has already arrived.
    pub fn is_done(&self) -> bool {
        sync::lock(&self.slot.state).value.is_some()
    }

    /// Takes the completion if it has arrived, without blocking.
    pub fn try_take(&mut self) -> Option<Completion> {
        sync::lock(&self.slot.state).value.take()
    }

    /// Blocks until the job resolves and returns its completion.
    pub fn wait(self) -> Completion {
        let mut state = sync::lock(&self.slot.state);
        loop {
            if let Some(v) = state.value.take() {
                return v;
            }
            state = sync::wait(&self.slot.cv, state);
        }
    }
}

impl Future for JobHandle {
    type Output = Completion;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = sync::lock(&self.slot.state);
        if let Some(v) = state.value.take() {
            return Poll::Ready(v);
        }
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("done", &self.is_done())
            .finish()
    }
}

/// Ordered streaming results of a [`crate::Client::submit_stream`] call:
/// yields each member's completion *in submission order*, blocking only
/// until the member at the front resolves — later members resolving
/// early are buffered in their handles.
pub struct ResultStream {
    handles: VecDeque<JobHandle>,
}

impl ResultStream {
    /// Builds a stream over arbitrary handles, yielding in the given
    /// order. Pipeline frontends use this to stream batched inference
    /// results from each request chain's final member.
    pub fn new(handles: Vec<JobHandle>) -> ResultStream {
        ResultStream {
            handles: handles.into(),
        }
    }

    /// Members not yet yielded.
    pub fn remaining(&self) -> usize {
        self.handles.len()
    }

    /// Blocks until the next member (in submission order) resolves;
    /// `None` once every member has been yielded.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Completion> {
        self.handles.pop_front().map(JobHandle::wait)
    }

    /// The next member's completion if it is already resolved; `None`
    /// when the stream is exhausted *or* the front member is pending.
    pub fn try_next(&mut self) -> Option<Completion> {
        if self.handles.front().is_some_and(JobHandle::is_done) {
            return self.next();
        }
        None
    }
}

impl Iterator for ResultStream {
    type Item = Completion;

    fn next(&mut self) -> Option<Completion> {
        ResultStream::next(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(id: u64) -> JobDone {
        JobDone {
            job_id: id,
            outputs: vec![("x".into(), vec![id])],
            bank: 0,
            attempt: 0,
            batch: 1,
            verified: false,
        }
    }

    #[test]
    fn wait_blocks_until_resolved() {
        let (handle, resolver) = oneshot(7);
        let t = std::thread::spawn(move || handle.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(resolver.resolve(Ok(done(7))));
        let got = t.join().unwrap().unwrap();
        assert_eq!(got.job_id, 7);
    }

    #[test]
    fn first_resolution_wins() {
        let (handle, resolver) = oneshot(1);
        assert!(resolver.resolve(Ok(done(1))));
        assert!(!resolver.resolve(Err(ServeError::Lost)));
        assert!(matches!(handle.wait(), Ok(d) if d.job_id == 1));
    }

    #[test]
    fn future_poll_pending_then_ready() {
        let (mut handle, resolver) = oneshot(3);
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(Pin::new(&mut handle).poll(&mut cx).is_pending());
        resolver.resolve(Ok(done(3)));
        match Pin::new(&mut handle).poll(&mut cx) {
            Poll::Ready(Ok(d)) => assert_eq!(d.job_id, 3),
            other => panic!("expected ready: {other:?}"),
        }
    }

    #[test]
    fn stream_yields_in_submission_order() {
        let (h0, r0) = oneshot(0);
        let (h1, r1) = oneshot(1);
        // Resolve out of order; the stream still yields 0 then 1.
        r1.resolve(Ok(done(1)));
        r0.resolve(Ok(done(0)));
        let mut stream = ResultStream::new(vec![h0, h1]);
        assert_eq!(stream.remaining(), 2);
        assert_eq!(stream.next().unwrap().unwrap().job_id, 0);
        assert_eq!(stream.next().unwrap().unwrap().job_id, 1);
        assert!(stream.next().is_none());
    }

    #[test]
    fn try_next_does_not_block_on_pending_front() {
        let (h0, _r0) = oneshot(0);
        let (h1, r1) = oneshot(1);
        r1.resolve(Ok(done(1)));
        let mut stream = ResultStream::new(vec![h0, h1]);
        assert!(stream.try_next().is_none(), "front is pending");
        assert_eq!(stream.remaining(), 2);
    }
}
