//! Bitmap-index database queries (paper §V-D, Fig. 12).
//!
//! The workload follows the prior DRAM PIM evaluation: 16 million users,
//! one bitmap row per attribute, and the query "how many male users were
//! active in each of the last `w` weeks" — a `(w + 1)`-operand bulk AND
//! over the `male` bitmap and `w` weekly-activity bitmaps, followed by a
//! population count.
//!
//! CORUSCANT resolves the whole conjunction in a single transverse read
//! per 512-bit chunk (its multi-operand primitive), while Ambit and
//! ELP²IM must chain `w` two-operand ANDs — which is why the paper's
//! speedup *grows* with the number of criteria.

use crate::datagen::{popcount_words, BitGen};
use coruscant_baselines::ambit::Ambit;
use coruscant_baselines::elp2im::Elp2im;
use coruscant_baselines::BaselineCost;
use coruscant_core::bulk::{BulkExecutor, BulkOp};
use coruscant_mem::{Dbc, MemoryConfig, Row};
use coruscant_racetrack::CostMeter;
use serde::{Deserialize, Serialize};

/// A synthetic user-attribute dataset.
#[derive(Debug, Clone)]
pub struct BitmapDataset {
    users: usize,
    male: Vec<u64>,
    weekly_active: Vec<Vec<u64>>,
}

impl BitmapDataset {
    /// Generates a dataset of `users` users with `weeks` weekly activity
    /// bitmaps (deterministic for a given seed). Selectivities: 50% male,
    /// 60% active in any given week.
    pub fn generate(users: usize, weeks: usize, seed: u64) -> BitmapDataset {
        let mut gen = BitGen::new(seed);
        let male = gen.bernoulli_words(users, 0.5);
        let weekly_active = (0..weeks)
            .map(|_| gen.bernoulli_words(users, 0.6))
            .collect();
        BitmapDataset {
            users,
            male,
            weekly_active,
        }
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of weekly bitmaps available.
    pub fn weeks(&self) -> usize {
        self.weekly_active.len()
    }

    /// Reference answer: `popcount(male ∧ active[0] ∧ … ∧ active[w−1])`.
    pub fn reference_count(&self, w: usize) -> u64 {
        assert!(w <= self.weeks(), "not enough weekly bitmaps");
        let mut acc = self.male.clone();
        for week in &self.weekly_active[..w] {
            for (a, &b) in acc.iter_mut().zip(week) {
                *a &= b;
            }
        }
        popcount_words(&acc, self.users)
    }

    /// The operand bitmaps of a `w`-week query (`male` first).
    pub fn operands(&self, w: usize) -> Vec<&[u64]> {
        let mut v: Vec<&[u64]> = vec![&self.male];
        for week in &self.weekly_active[..w] {
            v.push(week);
        }
        v
    }
}

/// The outcome of running a query on a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Matching-user count (only for functional runs; cost-model runs
    /// carry the reference count).
    pub count: u64,
    /// Latency in memory cycles.
    pub cycles: u64,
    /// Energy in pJ.
    pub energy_pj: f64,
}

/// Runs the query functionally on CORUSCANT PIM DBCs: every 512-bit (or
/// DBC-width) chunk of the bitmaps becomes one multi-operand AND resolved
/// by a single transverse read. Returns the exact count plus the
/// device-level cost of one chunk and the dispatch-level total.
///
/// # Errors
///
/// Propagates PIM errors (e.g. more criteria than the TRD supports).
pub fn run_coruscant(
    dataset: &BitmapDataset,
    w: usize,
    config: &MemoryConfig,
) -> coruscant_core::Result<QueryOutcome> {
    let operands = dataset.operands(w);

    let width = config.nanowires_per_dbc;
    let chunks = dataset.users().div_ceil(width);
    let exec = BulkExecutor::new(config);

    let mut count = 0u64;
    let mut chunk_cost = coruscant_racetrack::Cost::ZERO;
    for c in 0..chunks {
        let mut dbc = Dbc::pim_enabled(config);
        let rows: Vec<Row> = operands
            .iter()
            .map(|words| chunk_row(words, c, width, dataset.users()))
            .collect();
        let mut meter = CostMeter::new();
        let result = exec.execute(&mut dbc, BulkOp::And, &rows, &mut meter)?;
        count += result.popcount() as u64;
        chunk_cost = meter.total();
    }

    // Dispatch model: chunks spread over every PIM-enabled DBC; the
    // command bus issues one cpim per memory cycle, and rounds of
    // parallel chunk operations overlap with issue.
    let units = config.total_pim_dbcs().max(1);
    let rounds = (chunks as u64).div_ceil(units);
    let op_cycles = chunk_cost.cycles.max(1);
    // One cpim command plus one result-readout command per chunk.
    let issue_cycles = chunks as u64 * 2;
    let cycles = issue_cycles.max(rounds * op_cycles) + op_cycles;
    let energy_pj = chunk_cost.energy_pj * chunks as f64;
    Ok(QueryOutcome {
        count,
        cycles,
        energy_pj,
    })
}

fn chunk_row(words: &[u64], chunk: usize, width: usize, total_bits: usize) -> Row {
    let mut bits = vec![false; width];
    for (i, bit) in bits.iter_mut().enumerate() {
        let global = chunk * width + i;
        if global < total_bits {
            *bit = words[global / 64] >> (global % 64) & 1 == 1;
        }
    }
    Row::from_bits(bits)
}

/// Cost of the query on Ambit: `k − 1` chained two-operand ANDs per
/// chunk (row pair), all rows issued over the shared command bus.
pub fn cost_ambit(users: usize, w: usize, row_bits: usize) -> BaselineCost {
    let ambit = Ambit::paper();
    let chunks = users.div_ceil(row_bits) as u64;
    let per_chunk = ambit.bitwise_k(w + 1);
    // Subarray-parallel: rounds overlap, but each operation's commands
    // serialize on the bus (2 slots per chained AND) and every chunk pays
    // one result-readout command for the population count.
    let issue = chunks * ((w as u64) * 2 + 1);
    BaselineCost::new(
        issue.max(per_chunk.cycles) + per_chunk.cycles,
        per_chunk.energy_pj * chunks as f64,
    )
}

/// Cost of the query on ELP²IM: `k − 1` in-place two-operand ANDs per
/// chunk, 2 command slots each.
pub fn cost_elp2im(users: usize, w: usize, row_bits: usize) -> BaselineCost {
    let e = Elp2im::paper();
    let chunks = users.div_ceil(row_bits) as u64;
    let per_chunk = e.bitwise_k(w + 1);
    // In-place ops take a single command slot each, plus the readout.
    let issue = chunks * (w as u64 + 1);
    BaselineCost::new(
        issue.max(per_chunk.cycles) + per_chunk.cycles,
        per_chunk.energy_pj * chunks as f64,
    )
}

/// Cost of the query on a conventional DRAM + CPU system: every bitmap
/// row crosses the bus and the CPU ANDs word by word.
pub fn cost_dram_cpu(users: usize, w: usize) -> BaselineCost {
    let cpu = coruscant_baselines::cpu::CpuBaseline::dram();
    let bytes = ((w + 1) * users / 8) as u64;
    let accesses = bytes / 64; // 64-byte lines
    let words = ((w + 1) * users / 64) as u64;
    // Bitwise AND has negligible compute energy next to movement; model
    // it at one add-equivalent per 2 words.
    cpu.kernel(words / 2, 0, bytes, accesses, 0.8)
}

/// The CORUSCANT cost at dispatch level without a functional run (for
/// full-scale 16M-user estimates): one multi-operand AND per chunk.
pub fn cost_coruscant(users: usize, w: usize, config: &MemoryConfig) -> BaselineCost {
    let width = config.nanowires_per_dbc;
    let chunks = users.div_ceil(width) as u64;
    // Per-chunk device cost: k writes + (k-1) shifts + 1 TR (see
    // BulkExecutor), in device cycles ~ memory cycles x 0.8.
    let k = (w + 1) as u64;
    let device_cycles = k + (k - 1) + 1;
    let op_cycles = (device_cycles as f64 * 0.8).ceil() as u64;
    let units = config.total_pim_dbcs().max(1);
    let rounds = chunks.div_ceil(units);
    // One cpim command plus one result-readout command per chunk.
    let issue = chunks * 2;
    let e = coruscant_racetrack::params::EnergyParams::PAPER;
    let per_chunk_energy = width as f64
        * (k as f64 * e.write + (k - 1) as f64 * e.shift_per_step + e.transverse_read(config.trd));
    BaselineCost::new(
        issue.max(rounds * op_cycles) + op_cycles,
        per_chunk_energy * chunks as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_run_matches_reference() {
        let config = MemoryConfig::tiny();
        let ds = BitmapDataset::generate(1000, 4, 42);
        for w in 1..=4 {
            let out = run_coruscant(&ds, w, &config).unwrap();
            assert_eq!(out.count, ds.reference_count(w), "w={w}");
            assert!(out.cycles > 0);
        }
    }

    #[test]
    fn more_criteria_fewer_matches() {
        let ds = BitmapDataset::generate(10_000, 4, 1);
        let c1 = ds.reference_count(1);
        let c4 = ds.reference_count(4);
        assert!(c4 < c1);
        assert!(c1 < 10_000 * 6 / 10);
    }

    #[test]
    fn coruscant_flat_in_criteria_baselines_grow() {
        // Fig. 12: CORUSCANT maintains the same performance for 3..5
        // criteria while DRAM PIM latency increases.
        let users = 16_000_000;
        let config = MemoryConfig::paper();
        let cor: Vec<u64> = (2..=4)
            .map(|w| cost_coruscant(users, w, &config).cycles)
            .collect();
        let elp: Vec<u64> = (2..=4).map(|w| cost_elp2im(users, w, 512).cycles).collect();
        let amb: Vec<u64> = (2..=4).map(|w| cost_ambit(users, w, 512).cycles).collect();
        // CORUSCANT nearly flat (issue-bound at one command per chunk).
        assert!(cor[2] as f64 / cor[0] as f64 <= 1.05, "{cor:?}");
        // Baselines grow with w.
        assert!(elp[2] > elp[1] && elp[1] > elp[0], "{elp:?}");
        assert!(amb[2] > amb[1] && amb[1] > amb[0], "{amb:?}");
    }

    #[test]
    fn speedup_over_elp2im_grows_with_criteria() {
        // Paper: 1.6x, 2.2x, 3.4x for 3, 4, 5 criteria (w = 2, 3, 4).
        let users = 16_000_000;
        let config = MemoryConfig::paper();
        let mut speedups = Vec::new();
        for w in 2..=4 {
            let cor = cost_coruscant(users, w, &config).cycles as f64;
            let elp = cost_elp2im(users, w, 512).cycles as f64;
            speedups.push(elp / cor);
        }
        // Paper values are 1.6x / 2.2x / 3.4x; require the same growth
        // pattern within a factor-of-~1.3 band.
        assert!(speedups[0] > 1.2 && speedups[0] < 2.1, "{speedups:?}");
        assert!(speedups[1] > speedups[0]);
        assert!(speedups[2] > speedups[1]);
        assert!(speedups[2] > 2.4 && speedups[2] < 4.5, "{speedups:?}");
    }

    #[test]
    fn everything_beats_dram_cpu() {
        let users = 16_000_000;
        let config = MemoryConfig::paper();
        for w in 2..=4 {
            let cpu = cost_dram_cpu(users, w).cycles;
            assert!(cost_coruscant(users, w, &config).cycles < cpu);
            assert!(cost_elp2im(users, w, 512).cycles < cpu);
            assert!(cost_ambit(users, w, 512).cycles < cpu);
        }
    }

    #[test]
    fn operands_include_male_first() {
        let ds = BitmapDataset::generate(128, 3, 9);
        let ops = ds.operands(2);
        assert_eq!(ops.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not enough weekly bitmaps")]
    fn too_many_weeks_panics() {
        BitmapDataset::generate(64, 2, 0).reference_count(3);
    }
}
