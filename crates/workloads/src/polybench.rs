//! Polybench-style kernel models (paper §V-C, Figs. 10–11).
//!
//! The paper extracts memory traces of polybench kernels with a pintool
//! and maps the additions and multiplications to PIM. The pintool and the
//! Xeon testbed are not available here, so this module derives each
//! kernel's operation mix directly from its loop nest — which determines
//! the add/multiply counts exactly — and models the cache-filtered bus
//! traffic with a per-kernel locality factor. Reference implementations
//! of representative kernels are instrumented to validate the op-count
//! formulas.

use crate::datagen::BitGen;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation and traffic profile of one kernel instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name (polybench identifier).
    pub name: String,
    /// Problem dimension `N` the counts were computed for.
    pub n: usize,
    /// Scalar additions (including accumulations).
    pub adds: u64,
    /// Scalar multiplications.
    pub mults: u64,
    /// Bytes crossing the memory bus (cache-filtered).
    pub bytes_moved: u64,
    /// Memory requests issued (cache-filtered).
    pub accesses: u64,
    /// Fraction of accesses hitting the open row buffer.
    pub row_hit_rate: f64,
}

impl fmt::Display for KernelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (N={}): {} adds, {} mults, {} B moved",
            self.name, self.n, self.adds, self.mults, self.bytes_moved
        )
    }
}

/// Element size of the polybench data type (32-bit).
const ELEM_BYTES: u64 = 4;

fn profile(
    name: &str,
    n: usize,
    adds: u64,
    mults: u64,
    words_per_op: f64,
    row_hit_rate: f64,
) -> KernelProfile {
    // Bus traffic per arithmetic operation, in 32-bit words. The paper's
    // pintool traces large-footprint kernels whose working sets exceed
    // the caches; its Table II energies imply roughly one word crossing
    // the bus per operation ("data movement energy is 30x the compute
    // energy", §V-C). Kernels with genuine register/tile reuse sit
    // below one.
    let ops = adds + mults;
    let bytes = (ops as f64 * words_per_op * ELEM_BYTES as f64).ceil() as u64;
    KernelProfile {
        name: name.to_string(),
        n,
        adds,
        mults,
        bytes_moved: bytes,
        // One memory request per 64-byte line.
        accesses: bytes.div_ceil(64).max(1),
        row_hit_rate,
    }
}

/// The add/multiply-heavy polybench kernels the paper selects, "from 2mm
/// … to gemm" (§V-C), with op counts derived from the loop nests.
pub fn suite(n: usize) -> Vec<KernelProfile> {
    let nn = n as u64;
    let n2 = nn * nn;
    let n3 = n2 * nn;
    vec![
        // Two chained matrix multiplications: D = A·B, E = C·D.
        profile("2mm", n, 2 * n3, 2 * n3 + 2 * n2, 0.8, 0.6),
        // Three chained matrix multiplications.
        profile("3mm", n, 3 * n3, 3 * n3, 0.8, 0.6),
        // C = alpha*A*B + beta*C.
        profile("gemm", n, n3 + n2, n3 + 2 * n2, 0.8, 0.6),
        // Vector-multiply and matrix additions: 8 n^2-ish updates.
        profile("gemver", n, 4 * n2, 4 * n2, 1.2, 0.5),
        // Scalar, vector and matrix multiplication: y = alpha*A*x + beta*B*x.
        profile("gesummv", n, 2 * n2, 2 * n2 + nn, 1.2, 0.5),
        // A^T * (A * x).
        profile("atax", n, 2 * n2, 2 * n2, 1.0, 0.5),
        // BiCG sub-kernel: q = A*p, s = A^T*r.
        profile("bicg", n, 2 * n2, 2 * n2, 1.0, 0.5),
        // Matrix-vector product and transpose.
        profile("mvt", n, 2 * n2, 2 * n2, 1.0, 0.5),
        // Symmetric rank-k update: C = alpha*A*A^T + beta*C.
        profile("syrk", n, n3 + n2, n3 + 2 * n2, 0.8, 0.6),
        // Symmetric rank-2k update.
        profile("syr2k", n, 2 * n3 + n2, 2 * n3 + 2 * n2, 0.8, 0.6),
        // Multi-resolution analysis kernel: sum over third dimension.
        profile("doitgen", n, n3 * nn, n3 * nn, 0.6, 0.6),
        // Two-dimensional convolution-like stencil weighting.
        profile("fdtd-2d", n, 6 * n2, 3 * n2, 1.2, 0.7),
    ]
}

/// Instrumented reference kernels: run the actual loop nest over small
/// matrices, counting operations, to validate the formulas in [`suite`].
pub mod reference {
    use super::BitGen;

    /// Operation counts observed by an instrumented run.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct OpCount {
        /// Additions performed.
        pub adds: u64,
        /// Multiplications performed.
        pub mults: u64,
    }

    fn matmul(a: &[Vec<i64>], b: &[Vec<i64>], ops: &mut OpCount) -> Vec<Vec<i64>> {
        let n = a.len();
        let mut c = vec![vec![0i64; n]; n];
        for (i, ci) in c.iter_mut().enumerate() {
            for j in 0..n {
                for (k, ak) in a[i].iter().enumerate() {
                    ci[j] += ak * b[k][j];
                    ops.adds += 1;
                    ops.mults += 1;
                }
            }
        }
        c
    }

    /// Runs 2mm (`E = (A·B)·C`) and returns the observed op counts.
    pub fn run_2mm(n: usize, seed: u64) -> OpCount {
        let mut gen = BitGen::new(seed);
        let a = gen.matrix(n, 10);
        let b = gen.matrix(n, 10);
        let c = gen.matrix(n, 10);
        let mut ops = OpCount::default();
        let d = matmul(&a, &b, &mut ops);
        let _ = matmul(&d, &c, &mut ops);
        ops
    }

    /// Runs gemm (`C = alpha·A·B + beta·C`) and returns the op counts.
    pub fn run_gemm(n: usize, seed: u64) -> OpCount {
        let mut gen = BitGen::new(seed);
        let a = gen.matrix(n, 10);
        let b = gen.matrix(n, 10);
        let mut c = gen.matrix(n, 10);
        let mut ops = OpCount::default();
        for (i, ci) in c.iter_mut().enumerate() {
            for j in 0..n {
                ci[j] *= 3; // beta * C
                ops.mults += 1;
                let mut acc = 0i64;
                for (k, ak) in a[i].iter().enumerate() {
                    acc += ak * b[k][j];
                    ops.adds += 1;
                    ops.mults += 1;
                }
                ci[j] += 2 * acc; // + alpha * (A·B)
                ops.adds += 1;
                ops.mults += 1;
            }
        }
        ops
    }

    /// Runs atax (`y = Aᵀ(A·x)`) and returns the op counts.
    pub fn run_atax(n: usize, seed: u64) -> OpCount {
        let mut gen = BitGen::new(seed);
        let a = gen.matrix(n, 10);
        let x: Vec<i64> = (0..n as i64).collect();
        let mut ops = OpCount::default();
        let mut tmp = vec![0i64; n];
        for (i, t) in tmp.iter_mut().enumerate() {
            for (j, xj) in x.iter().enumerate() {
                *t += a[i][j] * xj;
                ops.adds += 1;
                ops.mults += 1;
            }
        }
        let mut y = vec![0i64; n];
        for (j, yj) in y.iter_mut().enumerate() {
            for (i, t) in tmp.iter().enumerate() {
                *yj += a[i][j] * t;
                ops.adds += 1;
                ops.mults += 1;
            }
        }
        ops
    }

    /// Runs 3mm (`G = (A·B)·(C·D)`) and returns the op counts.
    pub fn run_3mm(n: usize, seed: u64) -> OpCount {
        let mut gen = BitGen::new(seed);
        let a = gen.matrix(n, 10);
        let b = gen.matrix(n, 10);
        let c = gen.matrix(n, 10);
        let d = gen.matrix(n, 10);
        let mut ops = OpCount::default();
        let e = matmul(&a, &b, &mut ops);
        let f = matmul(&c, &d, &mut ops);
        let _ = matmul(&e, &f, &mut ops);
        ops
    }

    /// Runs mvt (`x1 += A·y1; x2 += Aᵀ·y2`) and returns the op counts.
    pub fn run_mvt(n: usize, seed: u64) -> OpCount {
        let mut gen = BitGen::new(seed);
        let a = gen.matrix(n, 10);
        let y1: Vec<i64> = (0..n as i64).collect();
        let y2: Vec<i64> = (0..n as i64).rev().collect();
        let mut x1 = vec![1i64; n];
        let mut x2 = vec![2i64; n];
        let mut ops = OpCount::default();
        for (i, xi) in x1.iter_mut().enumerate() {
            for (j, yj) in y1.iter().enumerate() {
                *xi += a[i][j] * yj;
                ops.adds += 1;
                ops.mults += 1;
            }
        }
        for (i, xi) in x2.iter_mut().enumerate() {
            for (j, yj) in y2.iter().enumerate() {
                *xi += a[j][i] * yj;
                ops.adds += 1;
                ops.mults += 1;
            }
        }
        ops
    }

    /// Runs bicg (`q = A·p; s = Aᵀ·r`) and returns the op counts.
    pub fn run_bicg(n: usize, seed: u64) -> OpCount {
        let mut gen = BitGen::new(seed);
        let a = gen.matrix(n, 10);
        let p: Vec<i64> = (0..n as i64).collect();
        let r: Vec<i64> = (0..n as i64).map(|v| v * 2 + 1).collect();
        let mut ops = OpCount::default();
        let mut q = vec![0i64; n];
        let mut s = vec![0i64; n];
        for i in 0..n {
            for j in 0..n {
                q[i] += a[i][j] * p[j];
                ops.adds += 1;
                ops.mults += 1;
            }
        }
        for j in 0..n {
            for (i, ri) in r.iter().enumerate() {
                s[j] += a[i][j] * ri;
                ops.adds += 1;
                ops.mults += 1;
            }
        }
        ops
    }

    /// Runs gesummv (`y = alpha·A·x + beta·B·x`) and returns the op
    /// counts.
    pub fn run_gesummv(n: usize, seed: u64) -> OpCount {
        let mut gen = BitGen::new(seed);
        let a = gen.matrix(n, 10);
        let b = gen.matrix(n, 10);
        let x: Vec<i64> = (0..n as i64).collect();
        let mut ops = OpCount::default();
        let mut y = vec![0i64; n];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut ta = 0i64;
            let mut tb = 0i64;
            for (j, xj) in x.iter().enumerate() {
                ta += a[i][j] * xj;
                tb += b[i][j] * xj;
                ops.adds += 2;
                ops.mults += 2;
            }
            *yi = 3 * ta + 2 * tb; // alpha = 3, beta = 2
            ops.adds += 1;
            ops.mults += 2;
        }
        ops
    }

    /// Runs syr2k (`C += alpha·A·Bᵀ + alpha·B·Aᵀ + beta·C`, lower-
    /// triangular variant simplified to the full matrix the profile
    /// models) and returns the op counts.
    pub fn run_syr2k(n: usize, seed: u64) -> OpCount {
        let mut gen = BitGen::new(seed);
        let a = gen.matrix(n, 10);
        let b = gen.matrix(n, 10);
        let mut c = gen.matrix(n, 10);
        let mut ops = OpCount::default();
        for i in 0..n {
            for j in 0..n {
                c[i][j] *= 2; // beta
                ops.mults += 1;
                let mut acc = 0i64;
                for k in 0..n {
                    acc += a[i][k] * b[j][k] + b[i][k] * a[j][k];
                    ops.adds += 2;
                    ops.mults += 2;
                }
                c[i][j] += 3 * acc; // alpha
                ops.adds += 1;
                ops.mults += 1;
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_selected_kernels() {
        let s = suite(32);
        assert!(s.len() >= 10, "the paper uses a broad selection");
        assert!(s.iter().any(|k| k.name == "2mm"));
        assert!(s.iter().any(|k| k.name == "gemm"));
        for k in &s {
            assert!(k.adds > 0 && k.mults > 0, "{}", k.name);
            assert!(k.bytes_moved > 0);
            assert!((0.0..=1.0).contains(&k.row_hit_rate));
        }
    }

    #[test]
    fn formula_matches_instrumented_2mm() {
        let n = 12;
        let observed = reference::run_2mm(n, 1);
        let model = &suite(n)[0];
        assert_eq!(model.name, "2mm");
        assert_eq!(observed.adds, 2 * (n as u64).pow(3));
        assert_eq!(observed.mults, 2 * (n as u64).pow(3));
        // The model additionally counts the alpha/beta scalings of the
        // full polybench 2mm; the dominant cubic term must agree.
        assert!(model.adds >= observed.adds);
        assert!(model.mults - observed.mults <= 2 * (n as u64).pow(2));
    }

    #[test]
    fn formula_matches_instrumented_gemm() {
        let n = 10;
        let observed = reference::run_gemm(n, 2);
        let model = suite(n).into_iter().find(|k| k.name == "gemm").unwrap();
        assert_eq!(observed.adds, model.adds);
        assert_eq!(observed.mults, model.mults);
    }

    #[test]
    fn formula_matches_instrumented_atax() {
        let n = 16;
        let observed = reference::run_atax(n, 3);
        let model = suite(n).into_iter().find(|k| k.name == "atax").unwrap();
        assert_eq!(observed.adds, model.adds);
        assert_eq!(observed.mults, model.mults);
    }

    #[test]
    fn formula_matches_instrumented_3mm() {
        let n = 10;
        let observed = reference::run_3mm(n, 4);
        let model = suite(n).into_iter().find(|k| k.name == "3mm").unwrap();
        assert_eq!(observed.adds, model.adds);
        assert_eq!(observed.mults, model.mults);
    }

    #[test]
    fn formula_matches_instrumented_mvt() {
        let n = 14;
        let observed = reference::run_mvt(n, 5);
        let model = suite(n).into_iter().find(|k| k.name == "mvt").unwrap();
        assert_eq!(observed.adds, model.adds);
        assert_eq!(observed.mults, model.mults);
    }

    #[test]
    fn formula_matches_instrumented_bicg() {
        let n = 12;
        let observed = reference::run_bicg(n, 6);
        let model = suite(n).into_iter().find(|k| k.name == "bicg").unwrap();
        assert_eq!(observed.adds, model.adds);
        assert_eq!(observed.mults, model.mults);
    }

    #[test]
    fn formula_matches_instrumented_gesummv() {
        let n = 11;
        let observed = reference::run_gesummv(n, 7);
        let model = suite(n).into_iter().find(|k| k.name == "gesummv").unwrap();
        // Model counts the dominant 2n^2 terms; the instrumented kernel
        // adds the n-element alpha/beta combination on top.
        assert_eq!(observed.adds, model.adds + n as u64);
        assert!(observed.mults >= model.mults);
        assert!(observed.mults - model.mults <= 2 * n as u64);
    }

    #[test]
    fn formula_matches_instrumented_syr2k() {
        let n = 9;
        let observed = reference::run_syr2k(n, 8);
        let model = suite(n).into_iter().find(|k| k.name == "syr2k").unwrap();
        assert_eq!(observed.adds, model.adds);
        assert!(observed.mults >= model.mults);
        assert!(observed.mults - model.mults <= 2 * (n as u64).pow(2));
    }

    #[test]
    fn cubic_kernels_dominate_quadratic_ones() {
        let s = suite(64);
        let gemm = s.iter().find(|k| k.name == "gemm").unwrap();
        let atax = s.iter().find(|k| k.name == "atax").unwrap();
        assert!(gemm.adds > 10 * atax.adds);
    }

    #[test]
    fn traffic_below_total_touches() {
        // Cache filtering must reduce traffic below one access per op.
        for k in suite(32) {
            assert!(
                k.accesses < k.adds + k.mults + 1,
                "{}: accesses {} vs ops {}",
                k.name,
                k.accesses,
                k.adds + k.mults
            );
        }
    }
}
