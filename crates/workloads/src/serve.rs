//! Serving the workloads through the execution runtime: the bitmap query
//! and the matmul kernel expressed as [`PimProgram`] jobs submitted to
//! [`coruscant_runtime::Runtime`].
//!
//! The bitmap query (§V-D) decomposes naturally into one job per
//! DBC-width chunk of the bitmaps — a `(w + 1)`-operand bulk AND plus a
//! result readout — and those chunks are exactly the independent
//! bank-parallel work the paper's high-throughput dispatch overlaps
//! (§V-C). The matmul front end submits one compiled program per matrix
//! pair.

use crate::bitmap::BitmapDataset;
use crate::compile::{compile_matmul, fold_products, PimProgram, ProgramOutcome, Step};
use coruscant_core::isa::{BlockSize, CpimInstr, CpimOpcode};
use coruscant_core::Result;
use coruscant_mem::{DbcLocation, MemoryConfig, RowAddress};
use coruscant_runtime::{run_batch, RuntimeError, RuntimeOptions, RuntimeReport};
use coruscant_server::{
    JobDone, ServeError, Server, ServerError, ServerOptions, ServerStats, SubmitOptions,
};

/// First operand row of a query-chunk program (clear of controller
/// scratch conventions; retargeting preserves row offsets).
const OPERAND_BASE: usize = 4;
/// Result row of a query-chunk program.
const RESULT_ROW: usize = 20;

/// A dense row-major matrix of 64-bit words.
pub type Matrix = Vec<Vec<u64>>;
/// One multiplicand pair for [`serve_matmul_batch`].
pub type MatrixPair = (Matrix, Matrix);

/// How the bitmap-query conjunction is emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryPlan {
    /// One multi-operand AND resolves the whole conjunction in a single
    /// transverse read (CORUSCANT-native emission, §III-B).
    #[default]
    Fused,
    /// A pairwise accumulator chain, one 2-operand AND per week — the
    /// instruction stream a conventional bulk-bitwise PIM (Ambit-style)
    /// code generator produces. The chain folds *downward* (each step
    /// accumulates in place, consuming operand rows top to bottom) so the
    /// placement residue each bulk op leaves lands only on rows already
    /// consumed. The `coruscant-compiler` TR-fusion pass collapses this
    /// back to the fused form.
    PairwiseChain,
}

/// Compiles the `w`-week bitmap query into one program per DBC-width
/// chunk: load `w + 1` operand rows, resolve the conjunction per `plan`,
/// read the result row back for the population count.
///
/// # Errors
///
/// Returns an ISA error if `w + 1` operands exceed what one instruction
/// encodes.
pub fn compile_bitmap_query_with(
    dataset: &BitmapDataset,
    w: usize,
    config: &MemoryConfig,
    plan: QueryPlan,
) -> Result<Vec<PimProgram>> {
    let operands = dataset.operands(w);
    let width = config.nanowires_per_dbc;
    let chunks = dataset.users().div_ceil(width);
    let loc = DbcLocation::new(0, 0, 0, 0); // nominal; the scheduler retargets
    let bs = BlockSize::new(64.min(width))?;

    let mut programs = Vec::with_capacity(chunks);
    for c in 0..chunks {
        let mut steps = Vec::with_capacity(operands.len() + 2);
        for (k, words) in operands.iter().enumerate() {
            steps.push(Step::Load {
                addr: RowAddress::new(loc, OPERAND_BASE + k),
                values: chunk_words(words, c, width, dataset.users()),
                lane: 64,
            });
        }
        match plan {
            QueryPlan::Fused => {
                steps.push(Step::Exec(CpimInstr::new(
                    CpimOpcode::And,
                    RowAddress::new(loc, OPERAND_BASE),
                    operands.len() as u8,
                    bs,
                    Some(RowAddress::new(loc, RESULT_ROW)),
                )?));
            }
            QueryPlan::PairwiseChain => {
                // Fold rows pairwise from the top down, accumulating in
                // place so each op's placement residue only hits rows
                // already consumed; the last pair lands on the result row.
                let n = operands.len();
                for j in 0..n - 1 {
                    let src = OPERAND_BASE + n - 2 - j;
                    let dst = if j == n - 2 { RESULT_ROW } else { src };
                    steps.push(Step::Exec(CpimInstr::new(
                        CpimOpcode::And,
                        RowAddress::new(loc, src),
                        2,
                        bs,
                        Some(RowAddress::new(loc, dst)),
                    )?));
                }
            }
        }
        steps.push(Step::Readout {
            label: format!("chunk{c}"),
            addr: RowAddress::new(loc, RESULT_ROW),
            lane: 64,
        });
        programs.push(PimProgram { steps });
    }
    Ok(programs)
}

/// [`compile_bitmap_query_with`] using the native fused plan.
///
/// # Errors
///
/// Returns an ISA error if `w + 1` operands exceed what one instruction
/// encodes.
pub fn compile_bitmap_query(
    dataset: &BitmapDataset,
    w: usize,
    config: &MemoryConfig,
) -> Result<Vec<PimProgram>> {
    compile_bitmap_query_with(dataset, w, config, QueryPlan::Fused)
}

/// The 64-bit words of one DBC-width chunk of a bitmap, with bits past
/// `total_bits` masked off.
fn chunk_words(words: &[u64], chunk: usize, width: usize, total_bits: usize) -> Vec<u64> {
    let lanes = width.div_ceil(64);
    (0..lanes)
        .map(|lane| {
            let mut out = 0u64;
            for bit in 0..64 {
                let global = chunk * width + lane * 64 + bit;
                if global < total_bits && (words[global / 64] >> (global % 64)) & 1 == 1 {
                    out |= 1 << bit;
                }
            }
            out
        })
        .collect()
}

/// Runs the `w`-week query through the runtime — one job per chunk,
/// placed by the runtime's dispatch mode — and returns the matching-user
/// count with the runtime report (modeled makespan, per-bank occupancy).
///
/// # Errors
///
/// Propagates compilation and runtime errors.
pub fn serve_bitmap_query(
    dataset: &BitmapDataset,
    w: usize,
    config: &MemoryConfig,
    options: RuntimeOptions,
) -> std::result::Result<(u64, RuntimeReport), RuntimeError> {
    serve_bitmap_query_with(dataset, w, config, options, QueryPlan::Fused)
}

/// [`serve_bitmap_query`] with an explicit emission plan. A
/// [`QueryPlan::PairwiseChain`] submission exercises the runtime's
/// on-enqueue compiler: with compilation enabled the chains are fused
/// back to multi-operand TRs before they reach the scheduler.
///
/// # Errors
///
/// Propagates compilation and runtime errors.
pub fn serve_bitmap_query_with(
    dataset: &BitmapDataset,
    w: usize,
    config: &MemoryConfig,
    options: RuntimeOptions,
    plan: QueryPlan,
) -> std::result::Result<(u64, RuntimeReport), RuntimeError> {
    let programs =
        compile_bitmap_query_with(dataset, w, config, plan).map_err(RuntimeError::Pim)?;
    let report = run_batch(config, programs, options)?;
    let count = report
        .outcomes
        .iter()
        .flat_map(|o| &o.outputs)
        .flat_map(|(_, words)| words)
        .map(|w| w.count_ones() as u64)
        .sum();
    Ok((count, report))
}

/// Runs a batch of `n × n` matrix multiplies through the runtime — one
/// job per pair — and returns the result matrices (in input order) with
/// the report.
///
/// # Errors
///
/// Propagates compilation and runtime errors.
pub fn serve_matmul_batch(
    pairs: &[MatrixPair],
    config: &MemoryConfig,
    options: RuntimeOptions,
) -> std::result::Result<(Vec<Matrix>, RuntimeReport), RuntimeError> {
    let programs = pairs
        .iter()
        .map(|(a, b)| compile_matmul(a, b, config))
        .collect::<Result<Vec<_>>>()
        .map_err(RuntimeError::Pim)?;
    let report = run_batch(config, programs, options)?;
    let results = report
        .outcomes
        .iter()
        .zip(pairs)
        .map(|(out, (a, _))| {
            let outcome = ProgramOutcome {
                outputs: out.outputs.clone(),
                device_cycles: out.device_cycles,
                completion: out.completion,
            };
            fold_products(&outcome, a.len())
        })
        .collect();
    Ok((results, report))
}

/// A streamed serving run that could not deliver every member's result.
#[derive(Debug)]
pub enum ServeStreamError {
    /// Starting or draining the serving frontend failed.
    Server(ServerError),
    /// One stream member resolved without outputs (shed, expired,
    /// cancelled, or failed in execution). Only possible when the caller
    /// enabled admission control or deadlines; the default deterministic
    /// configuration completes every member.
    Member {
        /// The member's position in the submitted workload.
        index: usize,
        /// Why it produced no result.
        error: ServeError,
    },
}

impl std::fmt::Display for ServeStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeStreamError::Server(e) => write!(f, "serving frontend: {e}"),
            ServeStreamError::Member { index, error } => {
                write!(f, "stream member {index}: {error}")
            }
        }
    }
}

impl std::error::Error for ServeStreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeStreamError::Server(e) => Some(e),
            ServeStreamError::Member { error, .. } => Some(error),
        }
    }
}

impl From<ServerError> for ServeStreamError {
    fn from(e: ServerError) -> ServeStreamError {
        ServeStreamError::Server(e)
    }
}

/// Serves a workload through the async frontend: starts a [`Server`],
/// submits every program as one ordered stream, collects the per-job
/// results as the banks retire them, and drains. Returns the results in
/// submission order with the final balanced [`ServerStats`].
///
/// With admission control disabled (the [`ServerOptions`] default) this
/// is the deterministic serving path: its outputs are bit-identical to a
/// direct [`run_batch`] over the same programs. Note the submission is
/// blocking in that mode — a paused runtime whose queue is smaller than
/// the workload will deadlock, so pair `start_paused` only with
/// admission control.
///
/// # Errors
///
/// [`ServeStreamError::Server`] on start/drain failure,
/// [`ServeStreamError::Member`] on the first member without a result.
pub fn serve_programs_streamed(
    config: &MemoryConfig,
    programs: Vec<PimProgram>,
    options: ServerOptions,
) -> std::result::Result<(Vec<JobDone>, ServerStats), ServeStreamError> {
    let server = Server::start(config.clone(), options)?;
    let client = server.client();
    let stream = client.submit_stream(programs, SubmitOptions::default());
    let mut results = Vec::with_capacity(stream.remaining());
    for (index, completion) in stream.enumerate() {
        match completion {
            Ok(done) => results.push(done),
            // The dropped server drains the runtime before the error
            // propagates, so no threads are left behind.
            Err(error) => return Err(ServeStreamError::Member { index, error }),
        }
    }
    let stats = server.shutdown()?;
    Ok((results, stats))
}

/// [`serve_bitmap_query`] routed through the async serving frontend:
/// chunk results stream back as banks retire them and the count
/// accumulates in submission order.
///
/// # Errors
///
/// Propagates compilation failures and [`serve_programs_streamed`]
/// errors.
pub fn serve_bitmap_query_streamed(
    dataset: &BitmapDataset,
    w: usize,
    config: &MemoryConfig,
    options: ServerOptions,
    plan: QueryPlan,
) -> std::result::Result<(u64, ServerStats), ServeStreamError> {
    let programs = compile_bitmap_query_with(dataset, w, config, plan)
        .map_err(|e| ServeStreamError::Server(ServerError::Runtime(RuntimeError::Pim(e))))?;
    let (results, stats) = serve_programs_streamed(config, programs, options)?;
    let count = results
        .iter()
        .flat_map(|d| &d.outputs)
        .flat_map(|(_, words)| words)
        .map(|w| w.count_ones() as u64)
        .sum();
    Ok((count, stats))
}

/// [`serve_matmul_batch`] routed through the async serving frontend.
///
/// # Errors
///
/// Propagates compilation failures and [`serve_programs_streamed`]
/// errors.
pub fn serve_matmul_batch_streamed(
    pairs: &[MatrixPair],
    config: &MemoryConfig,
    options: ServerOptions,
) -> std::result::Result<(Vec<Matrix>, ServerStats), ServeStreamError> {
    let programs = pairs
        .iter()
        .map(|(a, b)| compile_matmul(a, b, config))
        .collect::<Result<Vec<_>>>()
        .map_err(|e| ServeStreamError::Server(ServerError::Runtime(RuntimeError::Pim(e))))?;
    let (results, stats) = serve_programs_streamed(config, programs, options)?;
    let matrices = results
        .iter()
        .zip(pairs)
        .map(|(done, (a, _))| {
            let outcome = ProgramOutcome {
                outputs: done.outputs.clone(),
                device_cycles: 0,
                completion: 0,
            };
            fold_products(&outcome, a.len())
        })
        .collect();
    Ok((matrices, stats))
}

/// Every program the workload front ends emit, for the given config:
/// each bitmap query width under both emission plans, plus a small
/// matmul. Used to differentially verify the compiler pipeline (and the
/// runtime's same-bank batch fusion) over the full program corpus.
///
/// # Panics
///
/// Panics if the fixed corpus fails to compile under `config` — only
/// possible with a geometry too small for the built-in shapes.
#[must_use]
pub fn all_workload_programs(config: &MemoryConfig) -> Vec<PimProgram> {
    let ds = BitmapDataset::generate(300, 4, 11);
    let mut programs = Vec::new();
    for w in 1..=4 {
        programs.extend(compile_bitmap_query_with(&ds, w, config, QueryPlan::Fused).unwrap());
        programs
            .extend(compile_bitmap_query_with(&ds, w, config, QueryPlan::PairwiseChain).unwrap());
    }
    let n = 3;
    let a: Matrix = (0..n)
        .map(|i| (0..n).map(|j| ((i * 5 + j * 3) % 100) as u64).collect())
        .collect();
    let b: Matrix = (0..n)
        .map(|i| (0..n).map(|j| ((i * 7 + j * 11) % 100) as u64).collect())
        .collect();
    programs.push(compile_matmul(&a, &b, config).unwrap());
    programs
}

#[cfg(test)]
mod tests {
    use super::*;
    use coruscant_compiler::{CompileOptions, Compiler, VerifyOutcome};
    use coruscant_runtime::DispatchMode;

    #[test]
    fn every_workload_program_passes_differential_verification() {
        let config = MemoryConfig::tiny();
        let compiler = Compiler::new(config.clone(), &CompileOptions::default());
        for (i, program) in all_workload_programs(&config).iter().enumerate() {
            let (optimized, _) = compiler
                .optimize(program)
                .unwrap_or_else(|e| panic!("program {i}: {e}"));
            assert_eq!(
                coruscant_compiler::differential_verify(program, &optimized, &config)
                    .unwrap_or_else(|e| panic!("program {i}: {e}")),
                VerifyOutcome::Match,
                "program {i}"
            );
        }
    }

    #[test]
    fn chain_queries_fuse_on_enqueue() {
        let config = MemoryConfig::tiny();
        let ds = BitmapDataset::generate(1000, 4, 42);
        let w = 4;
        // Verification on — every optimized chunk is proven
        // output-equivalent as it is submitted.
        let options =
            RuntimeOptions::default().with_compile(CompileOptions::default().with_verify(true));
        let (count, report) =
            serve_bitmap_query_with(&ds, w, &config, options, QueryPlan::PairwiseChain).unwrap();
        assert_eq!(count, ds.reference_count(w));
        let chunks = 1000usize.div_ceil(64) as u64;
        // w+1 = 5 operands: the 4-instruction chain fuses to 1 TR.
        assert_eq!(report.stats.instructions, chunks);
        assert_eq!(report.stats.optimized_jobs, chunks);
        assert_eq!(report.stats.instructions_eliminated, 3 * chunks);
        assert!(report.stats.est_device_cycles_saved > 0);

        // Same chains submitted verbatim: correct too, but 4 TRs each.
        let raw = RuntimeOptions::default().with_compile(CompileOptions::disabled());
        let (raw_count, raw_report) =
            serve_bitmap_query_with(&ds, w, &config, raw, QueryPlan::PairwiseChain).unwrap();
        assert_eq!(raw_count, ds.reference_count(w));
        assert_eq!(raw_report.stats.instructions, 4 * chunks);
        assert_eq!(raw_report.stats.optimized_jobs, 0);
        assert!(
            report.stats.device_cycles < raw_report.stats.device_cycles,
            "fusion saves measured device cycles: {} < {}",
            report.stats.device_cycles,
            raw_report.stats.device_cycles
        );
    }

    #[test]
    fn served_bitmap_query_matches_reference() {
        let config = MemoryConfig::tiny();
        let ds = BitmapDataset::generate(1000, 4, 42);
        for w in 1..=4 {
            let (count, report) =
                serve_bitmap_query(&ds, w, &config, RuntimeOptions::default()).unwrap();
            assert_eq!(count, ds.reference_count(w), "w={w}");
            assert_eq!(report.stats.jobs as usize, 1000usize.div_ceil(64));
        }
    }

    #[test]
    fn circular_chunks_overlap_single_bank_serializes() {
        let config = MemoryConfig::tiny(); // 2 banks
        let ds = BitmapDataset::generate(1000, 3, 7);
        let circular = serve_bitmap_query(
            &ds,
            3,
            &config,
            RuntimeOptions::default().with_dispatch(DispatchMode::Circular),
        )
        .unwrap()
        .1;
        let serial = serve_bitmap_query(
            &ds,
            3,
            &config,
            RuntimeOptions::default().with_dispatch(DispatchMode::SingleBank),
        )
        .unwrap()
        .1;
        assert!(
            circular.stats.makespan_cycles < serial.stats.makespan_cycles,
            "circular {} vs single-bank {}",
            circular.stats.makespan_cycles,
            serial.stats.makespan_cycles
        );
        let busy_banks = circular
            .stats
            .per_bank
            .iter()
            .filter(|b| b.jobs > 0)
            .count();
        assert_eq!(busy_banks, config.banks, "chunks spread over both banks");
    }

    #[test]
    fn served_matmul_batch_matches_reference() {
        let config = MemoryConfig::tiny();
        let pairs: Vec<MatrixPair> = (0..4)
            .map(|t| {
                let n = 3;
                let a = (0..n)
                    .map(|i| {
                        (0..n)
                            .map(|j| ((t * 13 + i * 5 + j * 3) % 100) as u64)
                            .collect()
                    })
                    .collect();
                let b = (0..n)
                    .map(|i| {
                        (0..n)
                            .map(|j| ((t * 11 + i * 7 + j * 2) % 100) as u64)
                            .collect()
                    })
                    .collect();
                (a, b)
            })
            .collect();
        let (results, report) =
            serve_matmul_batch(&pairs, &config, RuntimeOptions::default()).unwrap();
        assert_eq!(report.stats.jobs, 4);
        for (t, (a, b)) in pairs.iter().enumerate() {
            let n = a.len();
            for i in 0..n {
                for j in 0..n {
                    let want: u64 = (0..n).map(|k| a[i][k] * b[k][j]).sum();
                    assert_eq!(results[t][i][j], want, "pair {t} C[{i}][{j}]");
                }
            }
        }
    }

    #[test]
    fn streamed_bitmap_query_matches_reference_and_balances() {
        let config = MemoryConfig::tiny();
        let ds = BitmapDataset::generate(1000, 4, 42);
        let (count, stats) = serve_bitmap_query_streamed(
            &ds,
            3,
            &config,
            ServerOptions::default(),
            QueryPlan::Fused,
        )
        .unwrap();
        assert_eq!(count, ds.reference_count(3));
        let chunks = 1000u64.div_ceil(64);
        assert_eq!(stats.submitted, chunks);
        assert_eq!(stats.completed, chunks);
        assert!(stats.balanced(), "{stats:?}");
    }

    #[test]
    fn streamed_matmul_matches_reference() {
        let config = MemoryConfig::tiny();
        let n = 3;
        let a: Matrix = (0..n)
            .map(|i| (0..n).map(|j| ((i * 5 + j * 3) % 100) as u64).collect())
            .collect();
        let b: Matrix = (0..n)
            .map(|i| (0..n).map(|j| ((i * 7 + j * 11) % 100) as u64).collect())
            .collect();
        let pairs = vec![(a.clone(), b.clone()); 3];
        let (results, stats) =
            serve_matmul_batch_streamed(&pairs, &config, ServerOptions::default()).unwrap();
        assert_eq!(stats.completed, 3);
        for (t, result) in results.iter().enumerate() {
            for i in 0..n {
                for j in 0..n {
                    let want: u64 = (0..n).map(|k| a[i][k] * b[k][j]).sum();
                    assert_eq!(result[i][j], want, "pair {t} C[{i}][{j}]");
                }
            }
        }
    }

    #[test]
    fn served_query_stays_correct_under_faults_with_protection() {
        use coruscant_mem::FaultPlan;
        use coruscant_racetrack::FaultConfig;
        use coruscant_runtime::{HealthPolicy, ProtectionPolicy};

        let config = MemoryConfig::tiny();
        let ds = BitmapDataset::generate(1000, 3, 11);
        // Uniform accelerated TR faults on every bank: don't quarantine,
        // just detect and retry until each chunk verifies.
        let plan = FaultPlan::uniform(FaultConfig::NONE.with_tr_fault_rate(2e-3), 0xFA117).unwrap();
        let health = HealthPolicy {
            suspect_after: 10_000,
            quarantine_after: 100_000,
            scrub_on_suspect: false,
            ..HealthPolicy::default()
        };
        let options = RuntimeOptions::default()
            .with_faults(plan)
            .with_health(health)
            .with_protection(ProtectionPolicy::Reexecute { max_retries: 6 });
        let (count, report) = serve_bitmap_query(&ds, 3, &config, options).unwrap();
        assert_eq!(count, ds.reference_count(3), "protected count is exact");
        assert_eq!(report.stats.faults.unverified_jobs, 0);
        assert_eq!(
            report.stats.faults.protected_jobs,
            1000u64.div_ceil(64),
            "every chunk ran protected"
        );
    }
}
