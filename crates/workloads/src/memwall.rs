//! The memory-wall study: polybench kernels on CPU+DRAM, CPU+DWM, and
//! CORUSCANT PIM (paper §V-C, Figs. 10–11).
//!
//! The CPU configurations replay each kernel's cache-filtered access
//! stream through the command-level controller timing, paying array
//! timing plus external-bus bursts. The PIM configuration keeps the data
//! in memory: operands are staged into PIM DBCs over the internal
//! row-buffer hierarchy (no external bus), and each packed row operation
//! is one `cpim` command whose latency comes from the measured CORUSCANT
//! operation costs. Queuing falls out of the per-bank occupancy model —
//! the paper attributes ~80% of the PIM runtime to queuing delay, which
//! is what the command-issue serialization reproduces.

use crate::polybench::KernelProfile;
use coruscant_core::cost_model::{add_cycles, MeasuredCosts};
use coruscant_mem::timing::DeviceTiming;
use coruscant_mem::MemoryConfig;
use coruscant_racetrack::energy::CpuEnergyModel;
use serde::{Deserialize, Serialize};

/// One kernel's comparison across the three systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemWallResult {
    /// Kernel name.
    pub kernel: String,
    /// CPU + DRAM latency (memory cycles).
    pub cpu_dram_cycles: u64,
    /// CPU + DWM latency (memory cycles).
    pub cpu_dwm_cycles: u64,
    /// CORUSCANT PIM latency (memory cycles).
    pub pim_cycles: u64,
    /// CPU-side energy (pJ): compute + bus movement.
    pub cpu_energy_pj: f64,
    /// PIM-side energy (pJ): in-memory ops + staging.
    pub pim_energy_pj: f64,
}

impl MemWallResult {
    /// Fig. 10 ratio: CPU+DWM latency over PIM latency.
    pub fn speedup_vs_dwm(&self) -> f64 {
        self.cpu_dwm_cycles as f64 / self.pim_cycles as f64
    }

    /// Fig. 10 ratio: CPU+DRAM latency over PIM latency.
    pub fn speedup_vs_dram(&self) -> f64 {
        self.cpu_dram_cycles as f64 / self.pim_cycles as f64
    }

    /// Fig. 11 ratio: CPU energy over PIM energy.
    pub fn energy_reduction(&self) -> f64 {
        self.cpu_energy_pj / self.pim_energy_pj
    }
}

/// External-bus burst occupancy per 64-byte access (memory cycles).
const BUS_BURST: u64 = 4;
/// Effective bank-level overlap of the CPU access stream: how many array
/// accesses proceed concurrently on average.
const BANK_OVERLAP: f64 = 4.0;

/// Latency of the kernel's cache-filtered access stream on a CPU system:
/// every access pays its bus burst (the shared-bus bottleneck) plus the
/// bank-parallel share of the array service time derived from the Table
/// II timing. DWM replaces the precharge term with a short shift under
/// ShiftsReduce-style data placement.
fn simulate_cpu(profile: &KernelProfile, timing: DeviceTiming) -> u64 {
    let avg_shift = 4; // DWM shift distance per miss (placement-optimized)
    let hit = profile.row_hit_rate;
    let service = hit * timing.row_hit() as f64 + (1.0 - hit) * timing.row_miss(avg_shift) as f64;
    let per_access = BUS_BURST as f64 + service / BANK_OVERLAP;
    let memory_time = (profile.accesses as f64 * per_access).round() as u64;
    // Compute floor for arithmetic-dense kernels: a 4-wide core at 3.2
    // GHz retires ~10 ops per 1.25 ns memory cycle.
    let compute_time = (profile.adds + profile.mults) / 10;
    memory_time.max(compute_time)
}

/// Dispatches the kernel's packed row operations (with their staging) to
/// the PIM units and returns (memory cycles, energy in pJ).
fn simulate_pim(profile: &KernelProfile, config: &MemoryConfig) -> (u64, f64) {
    let mc = MeasuredCosts::measure(config.trd).expect("measurable TRD");
    // 32-bit operands in 32-bit lanes; products keep C's mod-2^32
    // truncation semantics, so multiplies use 32-bit lanes too.
    let lanes = (config.nanowires_per_dbc / 32) as u64;
    let add_ops = profile.adds.div_ceil(lanes);
    let mul_ops = profile.mults.div_ceil(lanes);
    let ops: u64 = add_ops + mul_ops;

    // Per row-op device cycles: operand staging through the row-buffer
    // hierarchy (two operand rows + one result row, ~8 device cycles per
    // in-memory row move) plus the operation itself. The 8-bit measured
    // multiply scales by the 4x partial-product count at 32 bits.
    let stage = 3 * 8u64;
    let add_op = add_cycles(config.trd, 32);
    let mul_op = mc.mult.cycles * 4;
    let total_device: u64 = add_ops * (add_op + stage) + mul_ops * (mul_op + stage);

    // Dispatch: a cpim command plus a staging command per row op on the
    // shared command bus (the queuing the paper attributes ~80% of PIM
    // runtime to); execution overlaps across the PIM units. Operand rows
    // arriving from non-PIM DBCs add RowClone-style copy commands.
    let units = config.total_pim_dbcs();
    let ratio = coruscant_racetrack::params::DEVICE_CYCLE_NS / config.memory_cycle_ns;
    let exec_cycles = ((total_device as f64 * ratio) / units as f64).ceil() as u64;
    // Every 64-byte line the CPU would have fetched must instead be
    // staged into a PIM tile: one RowClone copy (read + write command)
    // per line. cpim commands broadcast to subarrays running the same
    // operation, so they amortize to one slot per row op.
    let copy_rows = profile.accesses;
    let issue_cycles = ops + copy_rows * 2;
    let cycles = issue_cycles.max(exec_cycles) + ((mul_op + stage) as f64 * ratio) as u64;

    // Energy: measured per-unit op energies scaled to the row width,
    // plus staging writes.
    let e = coruscant_racetrack::params::EnergyParams::PAPER;
    let stage_energy = 3.0 * config.nanowires_per_dbc as f64 * (e.read + e.write);
    let add_energy = coruscant_core::cost_model::add_energy_pj(config.trd, 32) * lanes as f64;
    let mul_energy = mc.mult.energy_pj * 4.0 * lanes as f64;
    let energy =
        add_ops as f64 * (add_energy + stage_energy) + mul_ops as f64 * (mul_energy + stage_energy);
    (cycles, energy)
}

/// Runs the full comparison for one kernel.
pub fn compare(profile: &KernelProfile, config: &MemoryConfig) -> MemWallResult {
    let cpu_dram_cycles = simulate_cpu(profile, DeviceTiming::DRAM_PAPER);
    let cpu_dwm_cycles = simulate_cpu(profile, DeviceTiming::DWM_PAPER);
    let (pim_cycles, pim_energy_pj) = simulate_pim(profile, config);
    let cpu_energy_pj =
        CpuEnergyModel::paper().kernel_energy_pj(profile.adds, profile.mults, profile.bytes_moved);
    MemWallResult {
        kernel: profile.name.clone(),
        cpu_dram_cycles,
        cpu_dwm_cycles,
        pim_cycles,
        cpu_energy_pj,
        pim_energy_pj,
    }
}

/// Geometric mean over a set of ratios.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polybench::suite;

    fn results() -> Vec<MemWallResult> {
        let config = MemoryConfig::paper();
        suite(48).iter().map(|k| compare(k, &config)).collect()
    }

    #[test]
    fn pim_beats_both_cpu_systems_on_every_kernel() {
        for r in results() {
            assert!(
                r.speedup_vs_dwm() > 1.0,
                "{}: PIM {} vs CPU+DWM {}",
                r.kernel,
                r.pim_cycles,
                r.cpu_dwm_cycles
            );
            assert!(r.speedup_vs_dram() > 1.0, "{}", r.kernel);
        }
    }

    #[test]
    fn fig10_average_speedups_in_paper_band() {
        // Paper: 2.07x vs CPU+DWM and 2.20x vs CPU+DRAM on average.
        let rs = results();
        let vs_dwm = geomean(rs.iter().map(MemWallResult::speedup_vs_dwm));
        let vs_dram = geomean(rs.iter().map(MemWallResult::speedup_vs_dram));
        assert!(
            vs_dwm > 1.3 && vs_dwm < 4.0,
            "avg speedup vs DWM = {vs_dwm:.2}"
        );
        assert!(vs_dram > vs_dwm, "DRAM baseline is slower than DWM");
    }

    #[test]
    fn dram_slower_than_dwm_as_cpu_memory() {
        // Paper §V-C: DRAM is slower than the DWM memory.
        for r in results() {
            assert!(r.cpu_dram_cycles > r.cpu_dwm_cycles, "{}", r.kernel);
        }
    }

    #[test]
    fn fig11_energy_reduction_order_of_magnitude() {
        // Paper: more than 25x on average, driven by avoided movement.
        let rs = results();
        let avg = geomean(rs.iter().map(MemWallResult::energy_reduction));
        assert!(avg > 8.0, "avg energy reduction {avg:.1}");
        assert!(avg < 200.0, "avg energy reduction {avg:.1}");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(Vec::<f64>::new()), 0.0);
    }
}
