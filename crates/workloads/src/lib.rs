//! Workload generators for the CORUSCANT evaluation (paper §V-C, §V-D).
//!
//! * [`polybench`] — models of the polyhedral-benchmark kernels the paper
//!   selects for its memory-wall study (Figs. 10–11): per-kernel
//!   addition/multiplication counts and cache-filtered traffic, validated
//!   against instrumented reference implementations of the kernels.
//! * [`bitmap`] — the bitmap-index database query of Fig. 12: how many
//!   male users were active in each of the last `w` weeks, over
//!   synthetically generated user bitmaps, runnable functionally on the
//!   CORUSCANT PIM DBCs and analytically on the DRAM PIM baselines.
//! * [`datagen`] — deterministic synthetic-data helpers shared by the
//!   workloads.
//! * [`serve`] — the workloads expressed as jobs for the
//!   `coruscant-runtime` request-serving engine: bitmap-query chunks and
//!   compiled matmul programs dispatched bank-parallel (§V-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod compile;
pub mod datagen;
pub mod memwall;
pub mod polybench;
pub mod serve;
