//! Deterministic synthetic-data helpers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of Bernoulli bit vectors packed into `u64` words.
///
/// Used to synthesize user attribute bitmaps (paper §V-D: the production
/// trace is replaced by Bernoulli bits, which preserves the query cost —
/// the PIM operation count depends only on row counts, not bit values).
#[derive(Debug, Clone)]
pub struct BitGen {
    rng: SmallRng,
}

impl BitGen {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> BitGen {
        BitGen {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Generates `bits` Bernoulli(`p`) bits packed little-endian into
    /// `u64` words (unused top bits zero).
    pub fn bernoulli_words(&mut self, bits: usize, p: f64) -> Vec<u64> {
        let words = bits.div_ceil(64);
        let mut out = vec![0u64; words];
        for i in 0..bits {
            if self.rng.random::<f64>() < p {
                out[i / 64] |= 1 << (i % 64);
            }
        }
        out
    }

    /// Generates `n` uniform values in `0..bound`.
    pub fn uniform_values(&mut self, n: usize, bound: u64) -> Vec<u64> {
        (0..n).map(|_| self.rng.random_range(0..bound)).collect()
    }

    /// Generates an `n × n` matrix of small integers (for reference kernel
    /// runs).
    pub fn matrix(&mut self, n: usize, bound: i64) -> Vec<Vec<i64>> {
        (0..n)
            .map(|_| (0..n).map(|_| self.rng.random_range(0..bound)).collect())
            .collect()
    }
}

/// Counts the ones in a packed bit vector, honoring a bit-length limit.
pub fn popcount_words(words: &[u64], bits: usize) -> u64 {
    let mut total = 0u64;
    for (i, w) in words.iter().enumerate() {
        let remaining = bits.saturating_sub(i * 64);
        if remaining == 0 {
            break;
        }
        let mask = if remaining >= 64 {
            u64::MAX
        } else {
            (1u64 << remaining) - 1
        };
        total += (w & mask).count_ones() as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = BitGen::new(7).bernoulli_words(256, 0.5);
        let b = BitGen::new(7).bernoulli_words(256, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn density_approximates_p() {
        let words = BitGen::new(1).bernoulli_words(100_000, 0.3);
        let ones = popcount_words(&words, 100_000) as f64;
        assert!((ones / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn popcount_respects_bit_limit() {
        let words = vec![u64::MAX, u64::MAX];
        assert_eq!(popcount_words(&words, 70), 70);
        assert_eq!(popcount_words(&words, 128), 128);
        assert_eq!(popcount_words(&words, 0), 0);
    }

    #[test]
    fn matrix_shape() {
        let m = BitGen::new(3).matrix(4, 10);
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|r| r.len() == 4));
        assert!(m.iter().flatten().all(|&v| (0..10).contains(&v)));
    }
}
